#!/usr/bin/env bash
# One-stop verification: the quick test tier plus the perf-regression gate.
#
#   scripts/verify.sh
#
# Runs the tier-1 suite without the wall-clock perf-smoke / process-pool
# tests (the `slow` marker — run `PYTHONPATH=src python -m pytest -x -q`
# for the full tier), then checks every committed BENCH_*.json headline
# against its predecessor (benchmarks/check_regressions.py: >20% loss
# fails).  Exits nonzero on the first failure.

set -euo pipefail

cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q -m "not slow"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/check_regressions.py
