#!/usr/bin/env bash
# One-stop verification: the quick test tier plus the perf-regression gate.
#
#   scripts/verify.sh
#
# Runs the tier-1 suite without the wall-clock perf-smoke / process-pool
# tests (the `slow` marker — run `PYTHONPATH=src python -m pytest -x -q`
# for the full tier), re-runs the robustness benchmark (cheap, and its
# internal assertions gate budget overhead and fault-recovery
# bit-identity), runs the data-eval, serving, distributed, and fleet
# benchmarks in --smoke mode (data-eval asserts the columnar engine
# beats the tuple oracle and the approximation stays sound; serving
# replays a scaled-down Zipfian log through a live daemon and runs the
# worker-kill / cache-corruption / SIGTERM-drain fault drills;
# distributed spins up 2 local TCP shard workers, kills one mid-run, and
# asserts recovery plus the per-worker stream-scaling row; fleet
# SIGKILLs a supervised worker mid-replay and asserts zero failed client
# requests, healed capacity, and post-restart warm ≡ cold — all without
# rewriting the committed JSON), runs the 20-scenario deterministic
# chaos sweep (every scenario reproducible from the seed it prints,
# upholding the four serving invariants), then checks every committed
# BENCH_*.json headline against its predecessor
# (benchmarks/check_regressions.py: >20% loss exits 1; an unusable
# committed baseline exits 2).

set -euo pipefail

cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q -m "not slow"
(cd benchmarks && PYTHONPATH=../src${PYTHONPATH:+:$PYTHONPATH} python bench_robustness.py)
(cd benchmarks && PYTHONPATH=../src${PYTHONPATH:+:$PYTHONPATH} python bench_data_eval.py --smoke)
(cd benchmarks && PYTHONPATH=../src${PYTHONPATH:+:$PYTHONPATH} python bench_serving.py --smoke)
(cd benchmarks && PYTHONPATH=../src${PYTHONPATH:+:$PYTHONPATH} python bench_distributed.py --smoke)
(cd benchmarks && PYTHONPATH=../src${PYTHONPATH:+:$PYTHONPATH} python bench_fleet.py --smoke)
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.testing.chaos --count 20
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/check_regressions.py
