"""Perf-regression gate over the ``BENCH_*.json`` trackers.

Each tracker's ``headline.speedup`` in the working tree is compared
against its **committed predecessor** (``git show HEAD:<file>``): a
headline that lost more than :data:`TOLERANCE` of its committed value
fails the gate with a nonzero exit.  The comparison only ever fires after
a benchmark was *re-run* — an untouched tracker equals its predecessor
and passes trivially — so the gate catches perf losses at the point they
would be committed, not on every checkout.

Trackers without a committed predecessor (a benchmark introduced by the
current change) pass as ``new``.  A tracker missing or unreadable in the
working tree is an error: the perf-tracking surface is load-bearing
(see :func:`paperfmt.bench_summary`).

Baseline-side problems are *distinct* from regressions: a committed
predecessor that exists but cannot be parsed (or carries no numeric
headline), or a ``git`` invocation that fails outright, means the gate
cannot render a verdict at all.  Those exit with code
:data:`EXIT_BASELINE_ERROR` (2) and a diagnostic naming the offending
baseline — regressions exit 1 — so CI can tell "perf got worse" from
"the gate itself is broken".  Only a predecessor genuinely absent at
``HEAD`` passes as ``new``.

Run directly (``python benchmarks/check_regressions.py``) or through
``python benchmarks/paperfmt.py`` / ``scripts/verify.sh``, which both
include the gate.
"""

from __future__ import annotations

import json
import subprocess
import sys

from paperfmt import BENCH_FILES, REPO_ROOT, table

#: Allowed fractional headline loss vs. the committed predecessor.
TOLERANCE = 0.20

#: Exit code for "the committed baseline is unusable" (vs. 1 = regression).
EXIT_BASELINE_ERROR = 2


class BaselineError(RuntimeError):
    """The committed predecessor exists but cannot anchor a comparison."""


def _committed_payload(filename: str, repo_root=REPO_ROOT) -> dict | None:
    """The tracker as committed at HEAD (``None``: no predecessor).

    Raises :class:`BaselineError` when the predecessor *should* be
    readable but is not: ``git`` itself missing or failing for a reason
    other than "path not in HEAD", or a committed payload that is not
    valid JSON.  Silently coercing those to ``None`` would let a
    corrupted baseline pass the gate as ``new`` forever.
    """
    try:
        proc = subprocess.run(
            ["git", "show", f"HEAD:{filename}"],
            cwd=repo_root,
            capture_output=True,
            text=True,
        )
    except (FileNotFoundError, OSError) as error:
        raise BaselineError(f"{filename}: cannot run git ({error})") from None
    if proc.returncode != 0:
        stderr = proc.stderr.strip()
        if "does not exist" in stderr or "exists on disk, but not in" in stderr:
            return None  # genuinely new tracker: no predecessor at HEAD
        raise BaselineError(
            f"{filename}: git show failed "
            f"({stderr or f'exit code {proc.returncode}'})"
        )
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as error:
        raise BaselineError(
            f"{filename}: committed baseline is not valid JSON ({error})"
        ) from None


def _headline_speedup(payload: dict | None) -> float | None:
    if not isinstance(payload, dict):
        return None
    headline = payload.get("headline")
    if not isinstance(headline, dict):
        return None
    speedup = headline.get("speedup")
    return float(speedup) if isinstance(speedup, (int, float)) else None


def check_regressions(bench_files=BENCH_FILES, repo_root=REPO_ROOT) -> int:
    """Print the gate's verdict table; return a process exit code.

    ``0`` — every tracker passes; ``1`` — at least one regression (or a
    working-tree tracker missing/unreadable); :data:`EXIT_BASELINE_ERROR`
    — a committed baseline is unusable, so no verdict was possible.  The
    parameters exist for tests; production callers use the defaults.
    """
    rows: list[list[object]] = []
    failures: list[str] = []
    baseline_errors: list[str] = []
    for filename in bench_files:
        path = repo_root / filename
        if not path.exists():
            failures.append(f"{filename}: missing from the working tree")
            continue
        try:
            current = _headline_speedup(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as error:
            failures.append(f"{filename}: unreadable ({error})")
            continue
        if current is None:
            failures.append(f"{filename}: no headline speedup")
            continue
        try:
            committed_payload = _committed_payload(filename, repo_root)
        except BaselineError as error:
            baseline_errors.append(str(error))
            rows.append([filename, f"{current}x", "?", "BASELINE ERROR"])
            continue
        committed = _headline_speedup(committed_payload)
        if committed_payload is None:
            rows.append([filename, f"{current}x", "—", "new"])
            continue
        if committed is None:
            # The predecessor parsed but carries no numeric headline:
            # still unusable as an anchor, still a baseline-side fault.
            baseline_errors.append(
                f"{filename}: committed baseline has no numeric "
                "headline.speedup"
            )
            rows.append([filename, f"{current}x", "?", "BASELINE ERROR"])
            continue
        floor = (1.0 - TOLERANCE) * committed
        if current < floor:
            status = f"REGRESSED (> {TOLERANCE:.0%} below committed)"
            failures.append(
                f"{filename}: headline {current}x fell below "
                f"{floor:.2f}x (committed {committed}x, "
                f"tolerance {TOLERANCE:.0%})"
            )
        else:
            status = "ok"
        rows.append([filename, f"{current}x", f"{committed}x", status])
    print(table(["tracker", "headline", "committed", "status"], rows))
    if baseline_errors:
        print(
            "check_regressions: committed baselines unusable — "
            + "; ".join(baseline_errors)
            + " (repair or recommit the named BENCH_*.json)",
            file=sys.stderr,
        )
        return EXIT_BASELINE_ERROR
    if failures:
        print(
            "check_regressions: " + "; ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(check_regressions())
