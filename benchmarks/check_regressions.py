"""Perf-regression gate over the ``BENCH_*.json`` trackers.

Each tracker's ``headline.speedup`` in the working tree is compared
against its **committed predecessor** (``git show HEAD:<file>``): a
headline that lost more than :data:`TOLERANCE` of its committed value
fails the gate with a nonzero exit.  The comparison only ever fires after
a benchmark was *re-run* — an untouched tracker equals its predecessor
and passes trivially — so the gate catches perf losses at the point they
would be committed, not on every checkout.

Trackers without a committed predecessor (a benchmark introduced by the
current change) pass as ``new``.  A tracker missing or unreadable in the
working tree is an error: the perf-tracking surface is load-bearing
(see :func:`paperfmt.bench_summary`).

Run directly (``python benchmarks/check_regressions.py``) or through
``python benchmarks/paperfmt.py`` / ``scripts/verify.sh``, which both
include the gate.
"""

from __future__ import annotations

import json
import subprocess
import sys

from paperfmt import BENCH_FILES, REPO_ROOT, table

#: Allowed fractional headline loss vs. the committed predecessor.
TOLERANCE = 0.20


def _committed_payload(filename: str) -> dict | None:
    """The tracker as committed at HEAD (``None``: no predecessor)."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{filename}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def _headline_speedup(payload: dict | None) -> float | None:
    if not isinstance(payload, dict):
        return None
    headline = payload.get("headline")
    if not isinstance(headline, dict):
        return None
    speedup = headline.get("speedup")
    return float(speedup) if isinstance(speedup, (int, float)) else None


def check_regressions() -> int:
    """Print the gate's verdict table; return a process exit code."""
    rows: list[list[object]] = []
    failures: list[str] = []
    for filename in BENCH_FILES:
        path = REPO_ROOT / filename
        if not path.exists():
            failures.append(f"{filename}: missing from the working tree")
            continue
        try:
            current = _headline_speedup(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as error:
            failures.append(f"{filename}: unreadable ({error})")
            continue
        if current is None:
            failures.append(f"{filename}: no headline speedup")
            continue
        committed = _headline_speedup(_committed_payload(filename))
        if committed is None:
            rows.append([filename, f"{current}x", "—", "new"])
            continue
        floor = (1.0 - TOLERANCE) * committed
        if current < floor:
            status = f"REGRESSED (> {TOLERANCE:.0%} below committed)"
            failures.append(
                f"{filename}: headline {current}x fell below "
                f"{floor:.2f}x (committed {committed}x, "
                f"tolerance {TOLERANCE:.0%})"
            )
        else:
            status = "ok"
        rows.append([filename, f"{current}x", f"{committed}x", status])
    print(table(["tracker", "headline", "committed", "status"], rows))
    if failures:
        print(
            "check_regressions: " + "; ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(check_regressions())
