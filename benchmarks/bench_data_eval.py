"""EXP DATA-EVAL — the columnar hash-kernel engine vs the tuple-at-a-time
baseline, plus the approximate-then-evaluate quality trade.

Two measurements, both on generated multi-hundred-thousand-tuple instances
(streamed, Zipf-skewed — ``repro.workloads.random_data``):

* **Columnar speedup** (the headline): Yannakakis over the columnar engine
  (``engine="columnar"``, numpy fast path when installed) vs the original
  set-of-tuples oracle (``engine="tuple"``) on a 1M-tuple acyclic 4-chain
  join.  Answers are asserted bit-equal; the target is ≥ 10x.
* **Approximate-then-evaluate** (the paper's pitch, end to end): a TW(1)
  approximation of the cyclic C4 pattern query is computed from the query
  alone, then both queries are evaluated on the same skewed digraph;
  reported are recall, the containment gap (missed answers — the only
  legal disagreement for an underapproximation), and the exact/approx
  evaluation wall-time ratio.

Writes machine-readable ``BENCH_data_eval.json`` at the repository root so
the perf trajectory is tracked across PRs (``check_regressions.py`` gates
on ``headline.speedup``).  ``--smoke`` runs scaled-down instances and only
asserts (columnar faster than tuple, approximation sound) without touching
the JSON — the cheap mode ``scripts/verify.sh`` runs on every pass.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core import TW1, approximate_then_evaluate
from repro.cq import parse_query
from repro.evaluation import EvalStats, backend_name, yannakakis_evaluate
from repro.workloads import chain_join_db, chain_join_query, scaled_digraph_db
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_data_eval.json"

#: The headline instance: 4 relations x 250k tuples ≈ 1M, Zipf 0.4.
CHAIN_FULL = dict(relations=4, tuples=250_000, domain=120_000, skew=0.4, seed=7)
CHAIN_SMOKE = dict(relations=4, tuples=30_000, domain=15_000, skew=0.4, seed=7)

#: The quality instance: C4 pattern on a skewed digraph.
QUALITY_QUERY = "Q(x) :- E(x, y), E(y, z), E(z, w), E(w, x)"
QUALITY_FULL = dict(nodes=2_000, edges=40_000, skew=0.5, seed=11)
QUALITY_SMOKE = dict(nodes=300, edges=2_500, skew=0.5, seed=11)

TARGET_SPEEDUP_FULL = 10.0
TARGET_SPEEDUP_SMOKE = 2.0


def chain_row(params: dict, *, target: float) -> dict:
    """Yannakakis columnar vs tuple on one chain instance (bit-equal)."""
    db = chain_join_db(
        params["relations"],
        params["tuples"],
        params["domain"],
        skew=params["skew"],
        seed=params["seed"],
    )
    query = chain_join_query(params["relations"])
    stats = EvalStats()
    started = time.perf_counter()
    columnar = yannakakis_evaluate(query, db, stats, engine="columnar")
    columnar_s = time.perf_counter() - started
    started = time.perf_counter()
    tuple_answers = yannakakis_evaluate(query, db, engine="tuple")
    tuple_s = time.perf_counter() - started
    assert columnar == tuple_answers, "columnar answers diverge from the oracle"
    speedup = tuple_s / columnar_s
    row = {
        "workload": f"chain{params['relations']}x{params['tuples'] // 1000}k",
        "db_tuples": db.total_tuples,
        "domain": params["domain"],
        "skew": params["skew"],
        "answers": len(columnar),
        "backend": backend_name(),
        "tuple_s": round(tuple_s, 4),
        "columnar_s": round(columnar_s, 4),
        "speedup": round(speedup, 2),
        "target_speedup": target,
        "rows_hashed": stats.rows_hashed,
        "rows_emitted": stats.rows_emitted,
    }
    assert speedup >= target, (
        f"columnar speedup {speedup:.1f}x below target {target}x "
        f"on {row['workload']}"
    )
    return row


def quality_row(params: dict) -> dict:
    """Approximate-then-evaluate on one digraph instance (must be sound)."""
    query = parse_query(QUALITY_QUERY)
    db = scaled_digraph_db(
        params["nodes"], params["edges"], skew=params["skew"], seed=params["seed"]
    )
    report = approximate_then_evaluate(query, TW1, db)
    assert report.is_sound, "approximation produced wrong answers"
    return {
        "workload": f"C4/TW1 digraph {params['nodes']}n",
        "db_tuples": report.db_tuples,
        "skew": params["skew"],
        "approximation": report.approximation,
        "exact_answers": report.exact_answers,
        "recall": round(report.recall, 4),
        "containment_gap": report.containment_gap,
        "approximation_s": round(report.approximation_seconds, 4),
        "exact_eval_s": round(report.exact_eval_seconds, 4),
        "approx_eval_s": round(report.approx_eval_seconds, 4),
        "walltime_ratio": round(report.walltime_ratio, 2),
    }


def run_all() -> dict:
    chain = chain_row(CHAIN_FULL, target=TARGET_SPEEDUP_FULL)
    quality = quality_row(QUALITY_FULL)
    return {
        "benchmark": "data_eval",
        "description": (
            "columnar hash-kernel evaluation (numpy fast path when "
            "installed) vs the tuple-at-a-time oracle on a 1M-tuple "
            "acyclic chain join, plus the approximate-then-evaluate "
            "recall / containment-gap / wall-time trade on a skewed "
            "digraph (C4 pattern vs its TW(1) approximation)"
        ),
        "backend": backend_name(),
        "chain": chain,
        "quality": quality,
        "headline": {
            "name": chain["workload"],
            "speedup": chain["speedup"],
            "target_speedup": TARGET_SPEEDUP_FULL,
            "approx_walltime_ratio": quality["walltime_ratio"],
            "approx_recall": quality["recall"],
            "note": (
                "Yannakakis, columnar vs tuple-at-a-time on the 1M-tuple "
                "acyclic 4-chain (bit-equal answers); the approx row is "
                "exact-over-approximate evaluation wall time for C4 vs its "
                "TW(1) approximation on a 40k-edge skewed digraph"
            ),
        },
    }


def smoke() -> None:
    """Cheap assertions for scripts/verify.sh — no JSON rewrite."""
    chain = chain_row(CHAIN_SMOKE, target=TARGET_SPEEDUP_SMOKE)
    quality = quality_row(QUALITY_SMOKE)
    print(
        f"smoke ok: columnar {chain['speedup']}x over tuple "
        f"({chain['backend']} backend, {chain['db_tuples']} tuples); "
        f"approx sound, recall {quality['recall']}, "
        f"ratio {quality['walltime_ratio']}x"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down assertion-only run (no BENCH_data_eval.json write)",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    payload = run_all()
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    chain, quality = payload["chain"], payload["quality"]
    body = table(
        ["workload", "tuples", "tuple(s)", "columnar(s)", "speedup", "backend"],
        [
            [
                chain["workload"],
                chain["db_tuples"],
                chain["tuple_s"],
                chain["columnar_s"],
                f"{chain['speedup']}x",
                chain["backend"],
            ]
        ],
    )
    body += "\n\n" + table(
        ["workload", "tuples", "recall", "gap", "exact(s)", "approx(s)", "ratio"],
        [
            [
                quality["workload"],
                quality["db_tuples"],
                quality["recall"],
                quality["containment_gap"],
                quality["exact_eval_s"],
                quality["approx_eval_s"],
                f"{quality['walltime_ratio']}x",
            ]
        ],
    )
    write_report(
        "bench_data_eval",
        "Columnar evaluation engine + approximate-then-evaluate quality",
        body,
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
