"""EXP INTRO-SPEEDUP — the introduction's complexity comparison.

The paper replaces evaluating Q (combined complexity |D|^O(|Q|)) with
O(f(|Q|) + |D| * s(|Q|)): a one-off approximation step plus Yannakakis
evaluation of the acyclic approximation.  This bench regenerates the shape:
exact evaluation cost grows steeply with |D| while the approximate pipeline
grows roughly linearly, and the one-off f(|Q|) is amortized by repetition.
The approximate answers are sound (never true when the exact answer is
false) and on these workloads usually agree.
"""

from __future__ import annotations

import time

from repro.core import TW1, approximate
from repro.evaluation import EvalStats, evaluate
from repro.graphs.gadgets import intro_q2
from repro.workloads import social_network_db
from paperfmt import table, write_report

SIZES = (100, 200, 400, 800)


def _measure() -> tuple[list[list[object]], float]:
    query = intro_q2()
    start = time.perf_counter()
    approximation = approximate(query, TW1)
    f_q = time.perf_counter() - start

    rows: list[list[object]] = []
    for size in SIZES:
        db = social_network_db(size, avg_degree=5, seed=size)
        exact_stats = EvalStats()
        start = time.perf_counter()
        exact = evaluate(query, db, method="treewidth", stats=exact_stats)
        exact_time = time.perf_counter() - start

        approx_stats = EvalStats()
        start = time.perf_counter()
        approx = evaluate(approximation, db, method="yannakakis", stats=approx_stats)
        approx_time = time.perf_counter() - start

        assert not approx or exact, "approximation returned a wrong answer"
        rows.append(
            [
                size,
                db.total_tuples,
                f"{exact_time * 1e3:.1f}ms",
                exact_stats.tuples_scanned,
                f"{approx_time * 1e3:.1f}ms",
                approx_stats.tuples_scanned,
                f"{exact_time / max(approx_time, 1e-9):.0f}x",
                "sound" + ("+agrees" if bool(approx) == bool(exact) else ""),
            ]
        )
    return rows, f_q


HEADERS = [
    "|dom|", "|D|", "exact eval", "tuples", "approx eval", "tuples",
    "speedup", "answers",
]


def bench_exact_evaluation(benchmark):
    db = social_network_db(150, avg_degree=5, seed=3)
    query = intro_q2()
    benchmark.pedantic(
        lambda: evaluate(query, db, method="treewidth"), rounds=2, iterations=1
    )


def bench_approximate_evaluation(benchmark):
    db = social_network_db(150, avg_degree=5, seed=3)
    approximation = approximate(intro_q2(), TW1)
    benchmark(lambda: evaluate(approximation, db, method="yannakakis"))


def bench_intro_speedup_report(benchmark):
    def report():
        rows, f_q = _measure()
        speedups = [float(row[6][:-1]) for row in rows]
        assert speedups[-1] > 1, "approximation should win on large databases"
        return (
            f"one-off approximation step f(|Q|): {f_q * 1e3:.0f}ms\n\n"
            + table(HEADERS, rows)
            + "\n\nShape: the exact column grows superlinearly in |D|; the"
            " approximate column stays near-linear, so the speedup factor"
            " widens — the introduction's complexity argument."
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("intro_speedup", "Introduction: |D|^O(|Q|) vs O(f+|D|s)", body)


if __name__ == "__main__":
    rows, f_q = _measure()
    print(f"f(|Q|) = {f_q * 1e3:.0f}ms")
    print(table(HEADERS, rows))
