"""EXP THM51-TRI — Theorem 5.1's trichotomy over random Boolean graph CQs.

Classifies random queries into the three regimes (non-bipartite / bipartite
unbalanced / bipartite balanced), reports the distribution, and verifies the
promised approximation shape on a sample by exhaustive search.  The
classifier itself is polynomial (bipartiteness + balancedness), which the
timing column shows.
"""

from __future__ import annotations

import time

from repro.core import (
    TW1,
    TrichotomyCase,
    all_approximations,
    classify_boolean_graph_query,
    is_trivial_approximation,
    promised_acyclic_approximation,
)
from repro.cq import are_equivalent, trivial_bipartite_query
from repro.workloads import random_graph_query
from paperfmt import table, write_report

SAMPLE = 60


def _classify_sample() -> tuple[list[list[object]], dict]:
    counts = {case: 0 for case in TrichotomyCase}
    total_time = 0.0
    queries = []
    for seed in range(SAMPLE):
        query = random_graph_query(6, 8, seed=seed)
        start = time.perf_counter()
        case = classify_boolean_graph_query(query)
        total_time += time.perf_counter() - start
        counts[case] += 1
        queries.append((query, case))

    rows = [
        [case.value, counts[case], f"{100 * counts[case] / SAMPLE:.0f}%"]
        for case in TrichotomyCase
    ]
    rows.append(["avg classify time", f"{total_time / SAMPLE * 1e6:.0f}us", ""])
    return rows, dict(queries=queries)


def _verify_promises(queries) -> int:
    verified = 0
    for query, case in queries[:12]:
        results = all_approximations(query, TW1)
        if case is TrichotomyCase.NOT_BIPARTITE:
            assert all(is_trivial_approximation(r) for r in results)
        elif case is TrichotomyCase.BIPARTITE_UNBALANCED:
            assert all(
                are_equivalent(r, trivial_bipartite_query()) for r in results
            )
        else:
            assert all(not is_trivial_approximation(r) for r in results)
        promised = promised_acyclic_approximation(query)
        if promised is not None:
            assert any(are_equivalent(r, promised) for r in results)
        verified += 1
    return verified


def bench_classifier(benchmark):
    query = random_graph_query(8, 12, seed=99)
    benchmark(lambda: classify_boolean_graph_query(query))


def bench_trichotomy_report(benchmark):
    def report():
        rows, extra = _classify_sample()
        verified = _verify_promises(extra["queries"])
        return (
            table(["case", "count", "share"], rows)
            + f"\n\npromise verified by exhaustive search on {verified} queries"
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("trichotomy", "Theorem 5.1: trichotomy over random queries", body)


if __name__ == "__main__":
    rows, extra = _classify_sample()
    print(table(["case", "count", "share"], rows))
