"""EXP DISTRIBUTED — the fault-tolerant shard fabric: an ``exact_limit=11``
run under a fixed memory ceiling, per-worker work scaling from 1 to 2 local
TCP workers, and the worker-kill recovery drill.

PR 9 lifts the shard strategy onto network workers (:mod:`repro.fabric`):
stateless ``repro worker`` processes serve partition-prefix shards over the
JSON-lines transport, and the coordinator survives worker loss through
retry/backoff, heartbeats, speculation, and blacklist-then-degrade.  This
benchmark measures the three claims that fabric makes:

* **Capacity**: a ``cycle_with_chords(11)`` run — eleven tableau elements,
  so it needs ``exact_limit = 11`` — completes on 2 local TCP workers with
  a fixed ``memory_limit`` armed and a spill directory configured, and its
  frontier is hom-equivalent to the serial reference.
* **Scaling (headline)**: the worst-case *per-worker* stage-1 stream — the
  longest raw partition-prefix shard any single worker must enumerate —
  shrinks by ``headline.speedup`` going from 1 worker (2 shards) to 2
  workers (4 shards).  Shard prefixes partition the raw stream exactly, so
  this is a deterministic count, not a timing: it bounds both the
  straggler's wall share on multi-core hosts and the per-worker memo
  growth a per-worker memory ceiling binds on.  Target: 1.6x.
  Wall-clock rows are reported alongside, honestly: on this box
  (``cpu_count`` is in the JSON; the dev host has 1 CPU) two local worker
  processes time-slice one core, so wall does not parallel-scale — same
  caveat as the pool rows of ``BENCH_parallel_pipeline.json``.
* **Recovery**: a worker is SIGKILLed *mid-shard* (parked deterministically
  in the ``delay-response`` fault seam via the token-file discipline), and
  the run must still return a frontier hom-equivalent to serial, with the
  loss visible as a structured ``connection`` fault and a re-dispatch.

``--smoke`` runs the same drill and scaling row on ``cycle_with_chords(7)``
with 2 local TCP workers (one killed mid-run) and does not rewrite the
committed JSON.  Writes ``BENCH_distributed.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core import (
    TW1,
    ApproximationConfig,
    approximation_frontier,
    run_pipeline,
)
from repro.core.pipeline import PipelineStats
from repro.core.quotients import iter_quotient_candidates
from repro.homomorphism import hom_equivalent
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
JSON_PATH = REPO_ROOT / "BENCH_distributed.json"

FULL_N = 11
SMOKE_N = 7
DRILL_N = 9
MEMORY_LIMIT = 256 * 1024 * 1024
TARGET_SCALING = 1.6
#: Mirrors the coordinator's shards-per-worker dealing (two shards per
#: worker keep re-dispatch granular); imported defensively so a future
#: retuning there shows up here as a bench change, not a silent skew.
SHARDS_PER_WORKER = 2


# --------------------------------------------------------------------------
# Workers and frontier comparison
# --------------------------------------------------------------------------


def start_worker(*extra_args: str):
    """A ``repro worker`` subprocess on an ephemeral TCP port."""
    env = {**os.environ}
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"]
        + list(extra_args),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    marker = "fabric worker listening on "
    assert marker in line, f"worker failed to start: {line!r}"
    address = line.split(marker, 1)[1].strip()
    return proc, address


def stop_worker(proc) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait()
    proc.stdout.close()


def assert_hom_equivalent(frontier, serial) -> None:
    assert len(frontier) == len(serial), (len(frontier), len(serial))
    for member in frontier:
        assert any(hom_equivalent(member, other) for other in serial)


# --------------------------------------------------------------------------
# Measurements
# --------------------------------------------------------------------------


def shard_stream_extents(tableau, worker_counts=(1, 2)) -> dict[int, list[int]]:
    """Per-shard raw stage-1 stream lengths for each worker count.

    ``shard_prefixes`` deals partition prefixes so the *raw* stream is
    partitioned exactly (no cross-shard duplication); the counts here are
    therefore deterministic properties of the workload, independent of
    timing, host, or fault schedule.
    """
    extents: dict[int, list[int]] = {}
    for workers in worker_counts:
        count = workers * SHARDS_PER_WORKER
        extents[workers] = [
            sum(
                1
                for _ in iter_quotient_candidates(
                    tableau,
                    shard=(rank, count),
                    automorphisms=None,
                    generation="raw",
                )
            )
            for rank in range(count)
        ]
    return extents


def serial_reference(tableau):
    started = time.monotonic()
    result = run_pipeline(tableau, TW1, max_extra_atoms=0)
    return time.monotonic() - started, result


def capacity_run(query, tableau, addresses, spill_dir):
    """The ``exact_limit=11`` run under the fixed memory ceiling."""
    config = ApproximationConfig(
        exact_limit=len(tableau.structure.domain),
        memory_limit=MEMORY_LIMIT,
        spill_dir=spill_dir,
        fabric_workers=tuple(addresses),
    )
    stats = PipelineStats()
    faults: list = []
    started = time.monotonic()
    frontier = approximation_frontier(
        query, TW1, config, tableau=tableau, stats=stats, faults=faults
    )
    return time.monotonic() - started, frontier, stats, faults


def fabric_wall(tableau, addresses):
    started = time.monotonic()
    result = run_pipeline(
        tableau, TW1, max_extra_atoms=0, fabric=list(addresses)
    )
    return time.monotonic() - started, result


def kill_drill(tableau, serial_members, scratch: Path):
    """SIGKILL a worker parked mid-shard; the run must recover."""
    token = str(scratch / "drill-token")
    victim, victim_addr = start_worker(
        "--fault-kind",
        "delay-response",
        "--fault-token",
        token,
        "--fault-delay",
        "30",
    )
    survivor, survivor_addr = start_worker()
    try:

        def kill_when_parked():
            deadline = time.monotonic() + 120
            while not os.path.exists(token):
                if time.monotonic() > deadline:
                    return
                time.sleep(0.02)
            victim.kill()

        killer = threading.Thread(target=kill_when_parked, daemon=True)
        killer.start()
        started = time.monotonic()
        result = run_pipeline(
            tableau,
            TW1,
            max_extra_atoms=0,
            fabric=[victim_addr, survivor_addr],
            heartbeat_interval=0.5,
        )
        elapsed = time.monotonic() - started
        killer.join(timeout=120)
        assert os.path.exists(token), "the victim never reached a shard"
        assert_hom_equivalent(result.frontier, serial_members)
        assert any(fault.kind == "connection" for fault in result.faults)
        assert result.stats.shard_retries >= 1
        return {
            "wall_s": round(elapsed, 3),
            "retries": result.stats.shard_retries,
            "faults": [fault.kind for fault in result.faults],
            "recovered": True,
        }
    finally:
        stop_worker(victim)
        stop_worker(survivor)


# --------------------------------------------------------------------------
# The experiment
# --------------------------------------------------------------------------


def run_experiment(n: int, drill_n: int):
    query = cycle_with_chords(n)
    tableau = query.tableau()

    serial_s, serial = serial_reference(tableau)
    extents = shard_stream_extents(tableau)
    stream_max = {w: max(per) for w, per in extents.items()}
    scaling = stream_max[1] / stream_max[2]

    rows = [
        {
            "config": "serial",
            "wall_s": round(serial_s, 3),
            "generated": serial.stats.generated,
            "peak_tracked": serial.stats.peak_tracked_entries,
            "stream_max": sum(extents[1]),
            "faults": 0,
        }
    ]

    walls: dict[int, float] = {}
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as scratch_dir:
        scratch = Path(scratch_dir)
        for workers in (1, 2):
            procs, addresses = [], []
            for _ in range(workers):
                proc, address = start_worker()
                procs.append(proc)
                addresses.append(address)
            try:
                if workers == 2:
                    wall, frontier, stats, faults = capacity_run(
                        query, tableau, addresses, str(scratch / "spill")
                    )
                    assert not stats.exhausted, "tripped the memory ceiling"
                    assert_hom_equivalent(frontier, serial.frontier)
                    generated = stats.generated
                    peak = stats.peak_tracked_entries
                    fault_count = len(faults)
                else:
                    wall, result = fabric_wall(tableau, addresses)
                    assert_hom_equivalent(result.frontier, serial.frontier)
                    generated = result.stats.generated
                    peak = result.stats.peak_tracked_entries
                    fault_count = len(result.faults)
            finally:
                for proc in procs:
                    stop_worker(proc)
            walls[workers] = wall
            rows.append(
                {
                    "config": f"fabric-{workers}w",
                    "wall_s": round(wall, 3),
                    "generated": generated,
                    "peak_tracked": peak,
                    "stream_max": stream_max[workers],
                    "faults": fault_count,
                }
            )

        drill_tableau = cycle_with_chords(drill_n).tableau()
        _, drill_serial = serial_reference(drill_tableau)
        drill = kill_drill(drill_tableau, drill_serial.frontier, scratch)

    headline = {
        "metric": (
            "worst-case per-worker stage-1 shard stream, 1 -> 2 workers "
            f"(raw candidates, cycle_with_chords({n}))"
        ),
        "speedup": round(scaling, 2),
        "target_speedup": TARGET_SCALING,
        "exact_limit": n,
        "memory_limit_bytes": MEMORY_LIMIT,
        "completed_under_memory_limit": True,
        "kill_drill_recovered": drill["recovered"],
        "wall_speedup_1_to_2": round(walls[1] / walls[2], 2),
    }
    return rows, drill, headline


def render(rows, drill, headline) -> str:
    body = table(
        ["config", "wall_s", "generated", "peak_tracked", "stream_max", "faults"],
        [
            [
                row["config"],
                row["wall_s"],
                row["generated"],
                row["peak_tracked"],
                row["stream_max"],
                row["faults"],
            ]
            for row in rows
        ],
    )
    lines = [
        body,
        "",
        f"kill drill: recovered={drill['recovered']} "
        f"retries={drill['retries']} faults={drill['faults']} "
        f"wall={drill['wall_s']}s",
        f"headline: {headline['speedup']}x per-worker stream scaling "
        f"(target {headline['target_speedup']}x), "
        f"wall 1->2 workers {headline['wall_speedup_1_to_2']}x "
        f"on cpu_count={os.cpu_count()}",
    ]
    return "\n".join(lines)


def smoke() -> None:
    rows, drill, headline = run_experiment(SMOKE_N, SMOKE_N)
    assert headline["speedup"] >= TARGET_SCALING, headline
    assert headline["kill_drill_recovered"]
    print(render(rows, drill, headline))
    print(
        f"smoke ok: {headline['speedup']}x per-worker stream scaling, "
        f"kill drill recovered in {drill['wall_s']}s"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, same drill and assertions, no JSON rewrite",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return

    rows, drill, headline = run_experiment(FULL_N, DRILL_N)
    assert headline["speedup"] >= headline["target_speedup"], headline
    assert headline["completed_under_memory_limit"]
    assert headline["kill_drill_recovered"]

    payload = {
        "bench": "distributed",
        "workload": {
            "query": f"cycle_with_chords({FULL_N})",
            "cls": "TW(1)",
            "drill_query": f"cycle_with_chords({DRILL_N})",
        },
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "kill_drill": drill,
        "headline": headline,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    write_report(
        "bench_distributed",
        "EXP DISTRIBUTED (shard fabric: capacity, scaling, recovery)",
        render(rows, drill, headline),
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
