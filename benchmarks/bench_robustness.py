"""EXP ROBUSTNESS — cost of the budgeted anytime machinery, and fault
recovery latency.

PR 6 threads a :class:`~repro.runtime.budget.RunBudget` through every
pipeline seam (per-candidate deadline/cap checks, amortized memory
probes) and makes the pooled check path fault-tolerant (pool respawn on
worker death, per-batch timeouts).  Robustness must not tax the fault-free
fast path, so this benchmark tracks:

* **Budget overhead** (the headline): the 9-variable member-heavy HTW(2)
  serial frontier with *no* budget vs. with a generous never-tripping
  budget (deadline + memory ceiling + candidate/check caps all armed).
  ``headline.speedup = unbudgeted_s / budgeted_s``; the target 0.95 means
  the armed budget may cost at most ~5%.  Results are asserted
  bit-identical and the budgeted run must not report exhaustion.
* **Checkpoint overhead**: the same run snapshotting frontier + cursor
  every 256 candidates (insertion order, the checkpointable regime).
* **Recovery latency**: a two-worker pooled run whose 5th class check
  SIGKILLs its worker (the deterministic harness in
  :mod:`repro.testing.faults`) vs. the fault-free pooled run — the
  respawn + resubmission cost of one pool death, with the result still
  bit-identical to serial.

Writes machine-readable ``BENCH_robustness.json`` at the repository root
so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.core import HypertreeClass, run_pipeline
from repro.homomorphism.engine import HomEngine
import repro.homomorphism.engine as engine_module
from repro.runtime import CheckpointManager, RunBudget
from repro.testing import FaultPlan, FaultyClass
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_robustness.json"

HEADLINE_QUERY = cycle_with_chords(9, ((0, 3), (1, 4), (2, 5), (6, 8), (7, 1)))
HEADLINE_CLASS = HypertreeClass(2)
REPEATS = 3


def _generous_budget() -> RunBudget:
    """Every dimension armed, none remotely trippable on this workload."""
    return RunBudget(
        deadline=3600.0,
        memory_limit=1 << 40,
        max_candidates=10**9,
        max_checks=10**9,
    )


def _fresh_engine(fn, repeats: int):
    """Median wall time of ``fn`` under a private engine, plus last result."""
    times, result = [], None
    for _ in range(repeats):
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return statistics.median(times), result


def _paired(fn_a, fn_b, repeats: int):
    """Interleaved A/B timing: (median_a, median_b, last_a, last_b).

    Alternating the variants inside each repetition cancels the slow
    drift (page cache, allocator growth, noisy neighbors) that makes
    back-to-back blocks on a small shared host disagree by more than the
    effect under measurement.
    """
    times_a, times_b, result_a, result_b = [], [], None, None
    for _ in range(repeats):
        t, result_a = _fresh_engine(fn_a, 1)
        times_a.append(t)
        t, result_b = _fresh_engine(fn_b, 1)
        times_b.append(t)
    return (
        statistics.median(times_a),
        statistics.median(times_b),
        result_a,
        result_b,
    )


def budget_overhead() -> dict:
    tableau = HEADLINE_QUERY.tableau()
    # One untimed warm-up so process-global caches (imports, decomposition
    # scratch) don't bill their cost to whichever variant runs first.
    _fresh_engine(
        lambda: run_pipeline(tableau, HEADLINE_CLASS, max_extra_atoms=0), 1
    )
    plain_s, budgeted_s, plain, budgeted = _paired(
        lambda: run_pipeline(tableau, HEADLINE_CLASS, max_extra_atoms=0),
        lambda: run_pipeline(
            tableau,
            HEADLINE_CLASS,
            max_extra_atoms=0,
            budget=_generous_budget(),
        ),
        REPEATS,
    )
    assert budgeted.frontier == plain.frontier, "budgeted run not bit-identical"
    assert not budgeted.stats.exhausted, "generous budget reported exhaustion"
    return {
        "workload": "C9+5ch/HTW2 budget overhead",
        "class": HEADLINE_CLASS.name,
        "candidates": plain.stats.generated,
        "frontier_size": len(plain.frontier),
        "plain_s": round(plain_s, 4),
        "budgeted_s": round(budgeted_s, 4),
        "speedup": round(plain_s / budgeted_s, 3) if budgeted_s else None,
        "overhead_pct": (
            round(100.0 * (budgeted_s - plain_s) / plain_s, 1) if plain_s else None
        ),
    }


def checkpoint_overhead() -> dict:
    # Both sides pinned to generation="orbit" — the regime checkpointing
    # forces (a resume cursor needs the exact original stream) — so the
    # delta is the snapshot cost alone, not a regime change.
    tableau = HEADLINE_QUERY.tableau()

    def checkpointed():
        with tempfile.TemporaryDirectory() as tmp:
            return run_pipeline(
                tableau,
                HEADLINE_CLASS,
                max_extra_atoms=0,
                generation="orbit",
                checkpoint=CheckpointManager(
                    os.path.join(tmp, "run.ckpt"),
                    every_candidates=256,
                    every_seconds=1e9,
                ),
            )

    plain_s, ckpt_s, plain, ckpt = _paired(
        lambda: run_pipeline(
            tableau, HEADLINE_CLASS, max_extra_atoms=0, generation="orbit"
        ),
        checkpointed,
        REPEATS,
    )
    assert ckpt.frontier == plain.frontier, "checkpointed run not bit-identical"
    return {
        "workload": "C9+5ch/HTW2 checkpoint overhead",
        "class": HEADLINE_CLASS.name,
        "candidates": plain.stats.generated,
        "checkpoints_written": ckpt.stats.checkpoints_written,
        "plain_s": round(plain_s, 4),
        "budgeted_s": round(ckpt_s, 4),
        "speedup": round(plain_s / ckpt_s, 3) if ckpt_s else None,
        "overhead_pct": (
            round(100.0 * (ckpt_s - plain_s) / plain_s, 1) if plain_s else None
        ),
    }


def recovery_latency() -> dict:
    query = cycle_with_chords(8, ((0, 3), (1, 4), (2, 6)))
    tableau = query.tableau()
    serial = run_pipeline(tableau, HEADLINE_CLASS, max_extra_atoms=0)

    def faulted():
        with tempfile.TemporaryDirectory() as tmp:
            faulty = FaultyClass(
                HEADLINE_CLASS,
                FaultPlan("kill", 5, os.path.join(tmp, "token")),
            )
            return run_pipeline(tableau, faulty, max_extra_atoms=0, workers=2)

    clean_s, faulted_s, clean, recovered = _paired(
        lambda: run_pipeline(
            tableau, HEADLINE_CLASS, max_extra_atoms=0, workers=2
        ),
        faulted,
        REPEATS,
    )
    assert clean.frontier == serial.frontier
    assert recovered.frontier == serial.frontier, "recovery not bit-identical"
    assert recovered.stats.pool_respawns >= 1, "kill fault did not break the pool"
    return {
        "workload": "C8+3ch/HTW2 worker-kill recovery",
        "class": HEADLINE_CLASS.name,
        "candidates": serial.stats.generated,
        "pool_respawns": recovered.stats.pool_respawns,
        "plain_s": round(clean_s, 4),
        "budgeted_s": round(faulted_s, 4),
        "speedup": round(clean_s / faulted_s, 3) if faulted_s else None,
        "recovery_cost_s": round(faulted_s - clean_s, 4),
    }


def run_all() -> dict:
    rows = [budget_overhead(), checkpoint_overhead(), recovery_latency()]
    headline = rows[0]
    return {
        "benchmark": "robustness",
        "description": (
            "cost of the budgeted anytime machinery (armed never-tripping "
            "RunBudget, periodic checkpointing) on the fault-free fast "
            "path, plus pool worker-kill recovery latency; all runs "
            "asserted bit-identical to their unbudgeted/fault-free "
            "counterparts"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["speedup"],
            "target_speedup": 0.95,
            "overhead_pct": headline["overhead_pct"],
            "note": (
                "serial 9-variable member-heavy HTW(2) frontier, no budget "
                "vs a generous fully-armed RunBudget (deadline + memory "
                "ceiling + candidate/check caps); >= 0.95 keeps the "
                "budget tax under ~5%"
            ),
        },
    }


def main() -> None:
    payload = run_all()
    assert (
        payload["headline"]["speedup"] >= payload["headline"]["target_speedup"]
    ), (
        f"budget overhead regressed: speedup {payload['headline']['speedup']}"
        f" < target {payload['headline']['target_speedup']}"
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    body = table(
        ["workload", "plain(s)", "with machinery(s)", "speedup", "extra"],
        [
            [
                row["workload"],
                row["plain_s"],
                row["budgeted_s"],
                f"{row['speedup']}x",
                (
                    f"overhead {row['overhead_pct']}%"
                    if "overhead_pct" in row
                    else f"recovery {row['recovery_cost_s']}s, "
                    f"{row['pool_respawns']} respawn(s)"
                ),
            ]
            for row in payload["workloads"]
        ],
    )
    write_report(
        "bench_robustness",
        "Budgeted anytime machinery: overhead and recovery latency",
        body,
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
