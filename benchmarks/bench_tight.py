"""EXP P56-TIGHT — Proposition 5.6: tight acyclic approximations.

The family (Q_n tableau G_{n+2}, Q'_n tableau P_{n+3}): Q'_n is an acyclic
approximation of Q_n with nothing strictly between.  The bench verifies the
two proof obligations (G_k → P_{k+1}; gap on bounded witnesses) and times
the gap search.
"""

from __future__ import annotations

import time

from repro.core import ApproximationConfig, TW1, has_gap, is_approximation, tight_pair
from repro.cq import is_contained_in
from repro.graphs import digraph_hom_exists
from repro.graphs.gadgets import tight_g_k
from repro.graphs.oriented_paths import directed_path
from paperfmt import table, write_report


def _measure() -> list[list[object]]:
    rows: list[list[object]] = []
    for n in (1, 2):
        query, approx = tight_pair(n)
        k = n + 2
        config = ApproximationConfig(exact_limit=2 * (k + 1))
        maps_in = digraph_hom_exists(
            tight_g_k(k), directed_path(k + 1).structure
        )
        contained = is_contained_in(approx, query)
        start = time.perf_counter()
        gap = has_gap(approx, query, config)
        gap_time = time.perf_counter() - start
        rows.append(
            [
                f"n={n} (G_{k}, P_{k + 1})",
                query.num_variables,
                "yes" if maps_in else "NO",
                "yes" if contained else "NO",
                "yes" if gap else "NO",
                f"{gap_time:.1f}s",
            ]
        )
    return rows


HEADERS = ["pair", "|vars(Q)|", "G_k -> P_{k+1}", "Q' ⊆ Q", "gap", "gap time"]


def bench_gap_check_n1(benchmark):
    query, approx = tight_pair(1)
    config = ApproximationConfig(exact_limit=10)
    result = benchmark.pedantic(
        lambda: has_gap(approx, query, config), rounds=1, iterations=1
    )
    assert result


def bench_tight_identification(benchmark):
    query, approx = tight_pair(1)
    config = ApproximationConfig(exact_limit=10)
    result = benchmark.pedantic(
        lambda: is_approximation(query, approx, TW1, config), rounds=1, iterations=1
    )
    assert result


def bench_nt_construction(benchmark):
    # The paper's "tedious calculations": G_k is the core of F_k x P_{k+1}.
    from repro.cq import Tableau
    from repro.graphs import nt_gap_pair
    from repro.homomorphism import hom_equivalent

    def construct():
        lower, _ = nt_gap_pair(3)
        return lower

    lower = benchmark.pedantic(construct, rounds=1, iterations=1)
    from repro.graphs.gadgets import tight_g_k

    assert hom_equivalent(Tableau(lower), Tableau(tight_g_k(3)))


def bench_tight_report(benchmark):
    def report():
        rows = _measure()
        assert all(row[2] == "yes" and row[3] == "yes" and row[4] == "yes" for row in rows)
        from repro.cq import Tableau
        from repro.graphs import nt_gap_pair
        from repro.homomorphism import hom_equivalent

        nt_rows = []
        for k in (3, 4):
            lower, _ = nt_gap_pair(k)
            nt_rows.append(
                [
                    f"k={k}",
                    f"{len(lower.domain)}n/{lower.total_tuples}e",
                    str(hom_equivalent(Tableau(lower), Tableau(tight_g_k(k)))),
                ]
            )
        assert all(row[2] == "True" for row in nt_rows)
        return (
            table(HEADERS, rows)
            + "\n\ngap checked over quotients of T_Q and substructures of T_Q'"
            " (sound witness families; see core.tight).\n\n"
            "Nešetřil–Tardif cross-check — core(F_k × P_{k+1}) vs the"
            " explicit G_k construction:\n"
            + table(["k", "core size", "hom-equivalent to G_k"], nt_rows)
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("tight", "Proposition 5.6: tight approximations", body)


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
