"""EXP EXTENSION-STREAM — lazy integer-form extension stream vs. the
materialized tableau path.

The hypergraph-class candidate space (Theorem 6.1 / Claim 6.2) pairs every
quotient with bounded sets of extension atoms.  Before the integer-form
extension stream, the pipeline fell back to materialized ``Tableau`` objects
for these runs: every extended candidate paid ``Structure`` construction and
a tableau-level canonization before the class check could reject it.  The
stream now enumerates extension atoms straight over the quotient's integer
form (block ids plus a fresh-id namespace), prunes extension sets that are
equivalent modulo the quotient's automorphism orbits before any key or
structure exists, and keys the survivors with the fact-level canonical form
shared with the plain quotient stream.

This benchmark times HW(k) extension-space frontiers at 7–8 variables:

* the **legacy path** — a faithful replica of the pre-stream pipeline
  (materialized quotients, tableau-level extension enumeration and
  canonical dedup, candidates without integer form) driven through the same
  stage-2/3 reduction, so the comparison isolates the candidate stream;
* the **integer-form stream** — ``run_pipeline`` serial, whose frontier
  must be **bit-identical** to the legacy result (enforced per workload).

Writes machine-readable ``BENCH_extension_stream.json`` at the repository
root so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import itertools
import json
import os
import statistics
import time
from pathlib import Path

from repro.core import HypertreeClass, run_pipeline
from repro.core.pipeline import PipelineStats, _reduce_inline
from repro.core.quotients import (
    _with_extensions,
    iter_extension_atoms,
    iter_quotient_tableaux,
)
from repro.cq import parse_query
from repro.homomorphism.engine import HomEngine
import repro.homomorphism.engine as engine_module
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_extension_stream.json"


# --------------------------------------------------------------------------
# Legacy implementation: a faithful replica of the pre-stream extension path
# (PR 2 state) — quotients materialized, extension atoms enumerated over the
# quotient's structure, extended candidates deduplicated at the tableau
# level (no cross-check against plain quotients), candidates fed to the
# pipeline reduction without an integer form.  Kept here so the benchmark
# keeps measuring the same baseline as the stream evolves; benchmarks are
# standalone scripts, so this replica is a verbatim copy of the one in
# tests/test_pipeline.py (which the differential suite and perf smoke use)
# and the two must stay in sync.
# --------------------------------------------------------------------------


class _LegacyTableauCandidate:
    """The pre-stream stage-1 adapter (the removed ``_TableauCandidate``)."""

    block_count = None
    codes = None

    def __init__(self, tableau):
        self._tableau = tableau

    def facts(self):
        return None

    def materialize(self):
        return self._tableau


def legacy_extended_stream(tableau, max_extra_atoms, allow_fresh):
    engine = engine_module.default_engine()
    seen = set()
    for quotient in iter_quotient_tableaux(tableau, dedup=True):
        yield quotient
        pool = list(
            iter_extension_atoms(quotient.structure, allow_fresh=allow_fresh)
        )
        for count in range(1, max_extra_atoms + 1):
            for extras in itertools.combinations(pool, count):
                extended = _with_extensions(quotient, extras)
                key = engine.canonical_key(extended)
                if key is not None:
                    if key in seen:
                        continue
                    seen.add(key)
                yield extended


def legacy_frontier(tableau, cls, max_extra_atoms, allow_fresh):
    stats = PipelineStats()
    candidates = (
        _LegacyTableauCandidate(t)
        for t in legacy_extended_stream(tableau, max_extra_atoms, allow_fresh)
    )
    frontier = _reduce_inline(candidates, cls, stats, None)
    return frontier.members, stats


# --------------------------------------------------------------------------
# Workloads: HW(k) extension-space frontiers at 7–8 variables.
# --------------------------------------------------------------------------

TERNARY_C4_7V = parse_query(
    "Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x7), R(x7,x1,x2)"
)


def workloads():
    # (name, tableau, class, max_extra_atoms, allow_fresh, repeats, headline?)
    return [
        # The headline: a 7-variable ternary cycle whose HW(2) extension
        # space is dominated by member quotients, so the family-dominance
        # shortcut and the integer-form keys carry almost the whole stream.
        ("ternary-C4(7v)/HW2 +ext", TERNARY_C4_7V.tableau(), HypertreeClass(2), 1, False, 1, True),
        # The same frontier against HW(1): fewer member quotients, so a
        # larger share of the extension space must be keyed and checked.
        ("ternary-C4(7v)/HW1 +ext", TERNARY_C4_7V.tableau(), HypertreeClass(1), 1, False, 1, False),
        # Binary-relation rows: small extension families (the shared
        # quotient stream bounds them), kept as regression rows.
        ("C7/HW1 +fresh-ext", cycle_with_chords(7).tableau(), HypertreeClass(1), 1, True, 3, False),
        ("C7/HW2 +fresh-ext", cycle_with_chords(7).tableau(), HypertreeClass(2), 1, True, 3, False),
        ("C8/HW1 +ext", cycle_with_chords(8).tableau(), HypertreeClass(1), 1, False, 1, False),
    ]


def _fresh_engine_run(fn, repeats: int):
    """Median wall time of ``fn`` under a private engine, plus last result."""
    times, result = [], None
    for _ in range(repeats):
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return statistics.median(times), result


def run_workload(name, tableau, cls, max_extra_atoms, allow_fresh, repeats, headline):
    legacy_s, (legacy_members, legacy_stats) = _fresh_engine_run(
        lambda: legacy_frontier(tableau, cls, max_extra_atoms, allow_fresh),
        repeats,
    )
    stream_s, result = _fresh_engine_run(
        lambda: run_pipeline(
            tableau,
            cls,
            max_extra_atoms=max_extra_atoms,
            allow_fresh=allow_fresh,
        ),
        repeats,
    )
    assert result.frontier == legacy_members, f"{name}: stream not bit-identical"
    return {
        "workload": name,
        "class": cls.name,
        "variables": len(tableau.structure.domain),
        "allow_fresh": allow_fresh,
        "frontier_size": len(legacy_members),
        "legacy_candidates": legacy_stats.generated,
        "stream_candidates": result.stats.generated,
        "legacy_s": round(legacy_s, 4),
        "stream_s": round(stream_s, 4),
        "speedup": round(legacy_s / stream_s, 2) if stream_s else None,
        "stats": {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in result.stats.as_dict().items()
        },
    }


def run_all() -> dict:
    specs = workloads()
    rows = [run_workload(*spec) for spec in specs]
    headline_name = next(spec[0] for spec in specs if spec[6])
    headline = next(row for row in rows if row["workload"] == headline_name)
    return {
        "benchmark": "extension_stream",
        "description": (
            "materialized tableau extension path vs lazy integer-form "
            "extension stream (extension atoms over block + fresh ids, "
            "automorphism-orbit pruning per quotient family, shared "
            "fact-level keyspace)"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["speedup"],
            "target_speedup": 2.0,
            "note": (
                "serial wall-time of the integer-form extension stream over "
                "the pre-stream materialized path on an HW(k) "
                "extension-space frontier; results are bit-identical"
            ),
        },
    }


def emit_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


HEADERS = ["workload", "class", "legacy", "stream", "speedup", "candidates", "frontier"]


def _report_rows(payload: dict) -> list[list[object]]:
    return [
        [
            entry["workload"],
            entry["class"],
            f"{entry['legacy_s']:.2f}s",
            f"{entry['stream_s']:.2f}s",
            f"{entry['speedup']:.2f}x",
            f"{entry['legacy_candidates']}→{entry['stream_candidates']}",
            entry["frontier_size"],
        ]
        for entry in payload["workloads"]
    ]


def bench_extension_stream_report(benchmark):
    def report():
        payload = run_all()
        emit_json(payload)
        assert payload["headline"]["speedup"] >= payload["headline"]["target_speedup"], (
            "integer-form extension stream must be ≥2x over the "
            "materialized path on the HW(k) headline frontier"
        )
        return table(HEADERS, _report_rows(payload))

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "extension_stream",
        "Integer-form extension stream vs materialized tableau path",
        body,
    )


if __name__ == "__main__":
    payload = run_all()
    emit_json(payload)
    print(table(HEADERS, _report_rows(payload)))
    headline = payload["headline"]
    print(
        f"\nheadline: {headline['name']} [{headline['class']}] "
        f"{headline['speedup']}x serial "
        f"(target ≥ {headline['target_speedup']}x, cpu_count={payload['cpu_count']}); "
        f"wrote {JSON_PATH.name}"
    )
