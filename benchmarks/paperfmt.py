"""Shared formatting for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures/examples and
writes a paper-style report to ``benchmarks/out/`` (also echoed to stdout,
visible with ``pytest -s``).  ``EXPERIMENTS.md`` indexes the reports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

OUT_DIR = Path(__file__).resolve().parent / "out"


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width text table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]

    def fmt(cells: Sequence[object]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def write_report(name: str, title: str, body: str) -> None:
    """Persist a report and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n\n{body.rstrip()}\n"
    (OUT_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
