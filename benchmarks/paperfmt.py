"""Shared formatting for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures/examples and
writes a paper-style report to ``benchmarks/out/`` (also echoed to stdout,
visible with ``pytest -s``).  ``EXPERIMENTS.md`` indexes the reports.

The perf-tracking benchmarks additionally write machine-readable
``BENCH_*.json`` files at the repository root; :func:`bench_summary`
renders their headlines as one table (``python paperfmt.py`` prints it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

OUT_DIR = Path(__file__).resolve().parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The machine-readable perf trackers, in the order they were introduced.
BENCH_FILES = (
    "BENCH_hom_engine.json",
    "BENCH_parallel_pipeline.json",
    "BENCH_extension_stream.json",
    "BENCH_frontier_reduction.json",
    "BENCH_raw_stream.json",
    "BENCH_robustness.json",
    "BENCH_data_eval.json",
    "BENCH_serving.json",
    "BENCH_distributed.json",
    "BENCH_fleet.json",
)


class BenchSummaryError(RuntimeError):
    """A perf tracker is missing or malformed (see :func:`bench_summary`)."""


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width text table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]

    def fmt(cells: Sequence[object]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def write_report(name: str, title: str, body: str) -> None:
    """Persist a report and echo it."""
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {title} ==\n\n{body.rstrip()}\n"
    (OUT_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)


def bench_summary() -> str:
    """One table over every ``BENCH_*.json`` headline at the repo root.

    The perf-tracking surface is load-bearing: a missing or malformed
    tracker used to appear as a quiet placeholder row, so a benchmark that
    silently stopped writing its JSON looked "not run" forever.  Now every
    problem — a file missing, unparseable, or without a ``headline`` —
    raises :class:`BenchSummaryError` listing all offenders at once
    (``python paperfmt.py`` exits nonzero on it); rerun the named
    benchmarks to regenerate their trackers.
    """
    rows: list[list[object]] = []
    problems: list[str] = []
    for filename in BENCH_FILES:
        path = REPO_ROOT / filename
        if not path.exists():
            problems.append(f"{filename}: missing (benchmark not run)")
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            problems.append(f"{filename}: unreadable ({error})")
            continue
        headline = payload.get("headline")
        if not isinstance(headline, dict):
            problems.append(f"{filename}: malformed (no headline object)")
            continue
        speedup = headline.get("speedup")
        target = headline.get("target_speedup")
        if speedup is None or target is None:
            status = "no target"
        else:
            status = "ok" if speedup >= target else "below target"
        rows.append(
            [
                payload.get("benchmark", filename),
                headline.get("name", "—"),
                f"{speedup}x" if speedup is not None else "—",
                f"≥{target}x" if target is not None else "—",
                status,
            ]
        )
    if problems:
        raise BenchSummaryError(
            "perf trackers missing or malformed:\n  " + "\n  ".join(problems)
        )
    return table(["benchmark", "headline workload", "speedup", "target", "status"], rows)


if __name__ == "__main__":
    import sys

    try:
        print(bench_summary())
    except BenchSummaryError as error:
        print(f"bench_summary: {error}", file=sys.stderr)
        sys.exit(1)
    # The regression gate rides along: each headline is compared against
    # its committed predecessor so a benchmark re-run that lost more than
    # the tolerance fails the formatter (see check_regressions.py).
    from check_regressions import check_regressions

    sys.exit(check_regressions())
