"""EXP ABLATION — design-choice ablations.

Three choices the reproduction makes are measured against their
alternatives:

1. greedy descent vs exact Bell enumeration (quality and time);
2. the Claim 6.2 extension space vs quotients-only (the third
   approximation of Example 6.6 *requires* extensions);
3. the Lemma 4.5 level filter vs plain search for gadget-sized hom checks.
"""

from __future__ import annotations

import time

from repro.core import (
    AC,
    TW1,
    ApproximationConfig,
    all_approximations,
    greedy_approximate,
)
from repro.cq import are_equivalent, is_contained_in
from repro.graphs.appendix_qstar import qstar, t_gadget
from repro.graphs.balanced import digraph_homomorphism
from repro.workloads import random_graph_query
from repro.workloads.families import example_66_query
from paperfmt import table, write_report


def _greedy_vs_exact(sample: int = 10) -> list[list[object]]:
    rows: list[list[object]] = []
    for seed in range(sample):
        query = random_graph_query(6, 8, seed=500 + seed)
        start = time.perf_counter()
        exact = all_approximations(query, TW1)
        exact_time = time.perf_counter() - start
        start = time.perf_counter()
        greedy = greedy_approximate(
            query, TW1, ApproximationConfig(greedy_rounds=120, seed=seed)
        )
        greedy_time = time.perf_counter() - start
        sound = TW1.contains_query(greedy) and is_contained_in(greedy, query)
        optimal = any(are_equivalent(greedy, e) for e in exact)
        rows.append(
            [
                f"rand#{seed}",
                f"{exact_time * 1e3:.0f}ms",
                f"{greedy_time * 1e3:.0f}ms",
                "yes" if sound else "NO",
                "yes" if optimal else "no",
            ]
        )
    return rows


def _extension_ablation() -> list[list[object]]:
    query = example_66_query()
    rows = []
    for cap, fresh in ((0, False), (1, False)):
        config = ApproximationConfig(max_extra_atoms=cap, allow_fresh=fresh)
        start = time.perf_counter()
        results = all_approximations(query, AC, config)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"max_extra_atoms={cap}",
                len(results),
                max(r.num_atoms for r in results),
                f"{elapsed:.1f}s",
            ]
        )
    return rows


def _level_filter_ablation() -> list[list[object]]:
    source = qstar().structure
    target = t_gadget(1).structure
    rows = []
    start = time.perf_counter()
    with_filter = digraph_homomorphism(source, target, use_level_filter=True)
    with_time = time.perf_counter() - start
    start = time.perf_counter()
    without = digraph_homomorphism(source, target, use_level_filter=False)
    without_time = time.perf_counter() - start
    assert (with_filter is None) == (without is None)
    rows.append(
        [
            "Q* -> T1 (both found)",
            f"{with_time * 1e3:.0f}ms",
            f"{without_time * 1e3:.0f}ms",
            f"{without_time / max(with_time, 1e-9):.1f}x",
        ]
    )
    return rows


def bench_greedy_single(benchmark):
    query = random_graph_query(6, 8, seed=501)
    result = benchmark.pedantic(
        lambda: greedy_approximate(query, TW1, ApproximationConfig(greedy_rounds=120)),
        rounds=1,
        iterations=1,
    )
    assert TW1.contains_query(result)


def bench_ablation_report(benchmark):
    def report():
        g_rows = _greedy_vs_exact()
        assert all(row[3] == "yes" for row in g_rows)
        optimal_rate = sum(1 for r in g_rows if r[4] == "yes") / len(g_rows)
        e_rows = _extension_ablation()
        f_rows = _level_filter_ablation()
        return (
            "1) greedy vs exact (greedy is always sound; optimality is"
            " best-effort):\n"
            + table(["query", "exact", "greedy", "sound", "optimal"], g_rows)
            + f"\n   greedy optimality rate: {optimal_rate:.0%}\n\n"
            "2) Claim 6.2 extension space (Example 6.6):\n"
            + table(["candidate space", "#approx", "max atoms", "time"], e_rows)
            + "\n   the 4-atom approximation exists only with extensions.\n\n"
            "3) Lemma 4.5 level filter (gadget-sized hom check):\n"
            + table(["check", "with filter", "without", "speedup"], f_rows)
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("ablation", "Design-choice ablations", body)


if __name__ == "__main__":
    print(table(["query", "exact", "greedy", "sound", "optimal"], _greedy_vs_exact()))
    print(table(["space", "#approx", "max atoms", "time"], _extension_ablation()))
    print(table(["check", "with", "without", "speedup"], _level_filter_ablation()))
