"""EXP FRONTIER-REDUCTION — dominance-aware fine-to-coarse reduction vs.
the insertion-order baseline, plus the pooled family-cancellation gap.

Stage 3 of the approximation pipeline (the →-minimal ``Frontier``) used to
dominate member-heavy *plain quotient* runs: with nearly every candidate a
class member, insertion (generation) order pays an engine-backed dominance
scan per candidate and a full eviction scan per admission.  The
dominance-aware reduction engine replays the stream **fine-to-coarse**
(candidates bucketed by descending block count), so a quotient meets the
frontier only after every strictly finer quotient; the partition-coarsening
fast path and the refinement index then decide most admissions with zero
``hom_le`` searches, while forward representative repair plus a final
generation-order sort keep the result **bit-identical** to the serial
baseline (enforced per workload below).

Two measurements:

* **Reduction speedup** (the headline): the same pre-generated candidate
  stream fed through ``_reduce_inline`` in insertion order vs.
  fine-to-coarse order, under fresh engines — stage 1 is identical in both,
  so the comparison isolates what this engine rebuilt.  Headline workload:
  a 9-variable chordal cycle outside HTW(2) whose ~8.5k deduplicated
  quotients are ~99% members.  End-to-end ``run_pipeline`` wall times are
  reported alongside.
* **Family-cancellation gap**: on extension-space runs the pooled
  ``"checks"`` batcher gates not-yet-dispatched extension families until
  their parent's verdict streams back, cancelling families of
  member/dominated parents.  We report pooled-vs-serial checked-candidate
  ratios (target: within 1.2x) and the families cancelled in flight.

Writes machine-readable ``BENCH_frontier_reduction.json`` at the repository
root so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.core import AC, HypertreeClass, TreewidthClass, run_pipeline
from repro.core.pipeline import MembershipTester, PipelineStats, _reduce_inline
from repro.core.quotients import iter_quotient_candidates
from repro.cq import parse_query
from repro.homomorphism.engine import HomEngine
import repro.homomorphism.engine as engine_module
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_frontier_reduction.json"


# --------------------------------------------------------------------------
# Workloads: member-heavy plain quotient frontiers (max_extra_atoms=0).
# The 9-variable chordal cycle is the headline — it is outside HTW(2) while
# ~99% of its deduplicated quotients are members, the regime where stage 3
# dominated the run before this engine.
# --------------------------------------------------------------------------


def workloads():
    # (name, query, class, repeats, headline?)
    return [
        (
            "C9+5ch/HTW2 member-heavy",
            cycle_with_chords(9, ((0, 3), (1, 4), (2, 5), (6, 8), (7, 1))),
            HypertreeClass(2),
            1,
            True,
        ),
        (
            "C9+5ch'/HTW2 member-heavy",
            cycle_with_chords(9, ((0, 2), (0, 4), (0, 6), (1, 5), (3, 7))),
            HypertreeClass(2),
            1,
            False,
        ),
        (
            "C8+3ch/HTW2 member-heavy",
            cycle_with_chords(8, ((0, 3), (1, 4), (2, 6))),
            HypertreeClass(2),
            3,
            False,
        ),
        # Member-light: ~35% members, thousands of dominated-but-uncovered
        # partitions — the regime that used to approach the (now retired)
        # _INDEX_CAP backstop.  The sublinear trie index must show no
        # admission slowdown here (fine-to-coarse at least as fast as
        # insertion order) with the index running uncapped.
        (
            "C9+5ch/TW2 member-light",
            cycle_with_chords(9, ((0, 3), (1, 4), (2, 5), (6, 8), (7, 1))),
            TreewidthClass(2),
            1,
            False,
        ),
    ]


def _fresh_engine(fn, repeats: int):
    """Median wall time of ``fn`` under a private engine, plus last result."""
    times, result = [], None
    for _ in range(repeats):
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return statistics.median(times), result


def _reduce(tableau, cls, order):
    """Stage 2+3 only: candidates pre-generated outside the timed region."""
    candidates = list(iter_quotient_candidates(tableau))
    stats = PipelineStats()
    started = time.perf_counter()
    frontier = _reduce_inline(iter(candidates), cls, stats, None, order=order)
    return time.perf_counter() - started, frontier.members, stats


def _member_rate(tableau, cls) -> float:
    """The true member rate of the deduplicated quotient stream.

    Computed with a dedicated pass — the reduction's own ``members``
    counter undercounts whenever the order controller flips to
    dominance-first (dominated candidates skip their checks).
    """
    tester = MembershipTester(cls, PipelineStats(), None)
    candidates = list(iter_quotient_candidates(tableau))
    return sum(1 for c in candidates if tester(c)) / len(candidates)


def run_workload(name, query, cls, repeats, headline):
    tableau = query.tableau()
    assert not cls.contains_tableau(tableau), f"{name}: base must not be in class"
    member_rate = _member_rate(tableau, cls)

    def reduction(order):
        times, members, stats = [], None, None
        for _ in range(repeats):
            saved = engine_module.DEFAULT_ENGINE
            engine_module.DEFAULT_ENGINE = HomEngine()
            try:
                seconds, members, stats = _reduce(tableau, cls, order)
                times.append(seconds)
            finally:
                engine_module.DEFAULT_ENGINE = saved
        return statistics.median(times), members, stats

    base_s, base_members, base_stats = reduction("insertion")
    new_s, new_members, new_stats = reduction("fine_to_coarse")
    assert new_members == base_members, f"{name}: reduction not bit-identical"

    end_base_s, end_base = _fresh_engine(
        lambda: run_pipeline(
            tableau, cls, max_extra_atoms=0, admission_order="insertion"
        ),
        repeats,
    )
    end_new_s, end_new = _fresh_engine(
        lambda: run_pipeline(tableau, cls, max_extra_atoms=0),
        repeats,
    )
    assert end_new.frontier == end_base.frontier, f"{name}: not bit-identical"

    return {
        "workload": name,
        "class": cls.name,
        "variables": len(tableau.structure.domain),
        "candidates": new_stats.generated,
        "member_rate": round(member_rate, 3),
        "frontier_size": len(base_members),
        "reduce_insertion_s": round(base_s, 4),
        "reduce_fine_to_coarse_s": round(new_s, 4),
        "reduce_speedup": round(base_s / new_s, 2) if new_s else None,
        "hom_le_insertion": base_stats.hom_le_calls,
        "hom_le_fine_to_coarse": new_stats.hom_le_calls,
        "resolved_by_order": new_stats.admissions_resolved_by_order,
        "representative_repairs": new_stats.representative_repairs,
        "end_to_end_insertion_s": round(end_base_s, 4),
        "end_to_end_s": round(end_new_s, 4),
        "end_to_end_speedup": (
            round(end_base_s / end_new_s, 2) if end_new_s else None
        ),
    }


# --------------------------------------------------------------------------
# Pooled family cancellation: extension-space runs, serial vs workers=2.
# --------------------------------------------------------------------------

TERNARY_C3_6V = parse_query(
    "Q() :- R(x1, x2, x3), R(x3, x4, x5), R(x5, x6, x1)"
)


def cancellation_workloads():
    return [
        ("ternary-C3(6v)/AC +ext", TERNARY_C3_6V, AC),
        ("ternary-C3(6v)/HW2 +ext", TERNARY_C3_6V, HypertreeClass(2)),
    ]


def run_cancellation(name, query, cls):
    tableau = query.tableau()
    serial_s, serial = _fresh_engine(
        lambda: run_pipeline(tableau, cls, allow_fresh=False), 1
    )
    pooled_s, pooled = _fresh_engine(
        lambda: run_pipeline(tableau, cls, allow_fresh=False, workers=2), 1
    )
    assert pooled.frontier == serial.frontier, f"{name}: pooled not bit-identical"
    checks_ratio = (
        pooled.stats.checks_run / serial.stats.checks_run
        if serial.stats.checks_run
        else None
    )
    return {
        "workload": name,
        "class": cls.name,
        "serial_checked": serial.stats.checks_run,
        "pooled_checked": pooled.stats.checks_run,
        "checked_ratio": round(checks_ratio, 3) if checks_ratio else None,
        "serial_generated": serial.stats.generated,
        "pooled_generated": pooled.stats.generated,
        "families_cancelled_in_flight": pooled.stats.families_cancelled_in_flight,
        "serial_s": round(serial_s, 4),
        "pooled_s": round(pooled_s, 4),
    }


def run_all() -> dict:
    specs = workloads()
    rows = [run_workload(*spec) for spec in specs]
    headline_name = next(spec[0] for spec in specs if spec[4])
    headline = next(row for row in rows if row["workload"] == headline_name)
    cancellation = [run_cancellation(*spec) for spec in cancellation_workloads()]
    return {
        "benchmark": "frontier_reduction",
        "description": (
            "fine-to-coarse dominance-aware reduction (coarsening fast "
            "path + refinement index + representative repair) vs the "
            "insertion-order stage-3 baseline on member-heavy plain "
            "quotient frontiers; plus the pooled checks family-"
            "cancellation gap on extension spaces"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "cancellation": {
            "target_checked_ratio": 1.2,
            "workloads": cancellation,
        },
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["reduce_speedup"],
            "target_speedup": 3.0,
            "end_to_end_speedup": headline["end_to_end_speedup"],
            "note": (
                "stage-3 reduction (stages 2+3 over a pre-generated "
                "candidate stream) in fine-to-coarse vs insertion order on "
                "the 9-variable member-heavy HTW(2) frontier; results are "
                "bit-identical"
            ),
        },
    }


def main() -> None:
    payload = run_all()
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    body = table(
        [
            "workload",
            "cands",
            "member%",
            "reduce old(s)",
            "reduce new(s)",
            "speedup",
            "hom_le old→new",
            "e2e speedup",
        ],
        [
            [
                row["workload"],
                row["candidates"],
                f"{100 * row['member_rate']:.0f}",
                row["reduce_insertion_s"],
                row["reduce_fine_to_coarse_s"],
                f"{row['reduce_speedup']}x",
                f"{row['hom_le_insertion']}→{row['hom_le_fine_to_coarse']}",
                f"{row['end_to_end_speedup']}x",
            ]
            for row in payload["workloads"]
        ],
    )
    body += "\n\npooled family cancellation (target checked ratio ≤ 1.2):\n"
    body += table(
        [
            "workload",
            "serial checked",
            "pooled checked",
            "ratio",
            "families cancelled",
        ],
        [
            [
                row["workload"],
                row["serial_checked"],
                row["pooled_checked"],
                row["checked_ratio"],
                row["families_cancelled_in_flight"],
            ]
            for row in payload["cancellation"]["workloads"]
        ],
    )
    write_report(
        "bench_frontier_reduction",
        "Dominance-aware frontier reduction (fine-to-coarse + repair)",
        body,
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
