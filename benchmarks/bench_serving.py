"""EXP SERVING — warm-cache speedup of the resident daemon, plus the
three fault drills.

PR 8 turns the one-shot pipeline into a resident service
(:mod:`repro.serve`): one engine per process behind a JSON-lines socket,
fronted by a canonical-form result cache.  This benchmark drives a
**Zipfian-skewed query log** — a handful of distinct queries, each
phrased with per-request variable renamings so the canonical key (not
string equality) has to do the unification — through a live server and
reports:

* **Headline**: mean *warm-hit* latency vs. the mean *cold pipeline*
  time of the distinct queries (each measured under a fresh engine).
  ``headline.speedup = cold_s / warm_hit_s`` with target 50x, plus the
  replay's hit rate and queries/sec.
* **Fault drills**, asserted here (not just in the test suite):

  1. a pool worker SIGKILLed mid-request — the request heals (pool
     respawn) and its answer is bit-identical to the fault-free one;
  2. a corrupted disk-cache entry — quarantined on probe, recomputed
     bit-identically, slot healed;
  3. ``SIGTERM`` under load on the real CLI daemon — the in-flight
     request's response still arrives, exit code 0, the cache index is
     flushed, and a restarted daemon answers warm and bit-identically.

``--smoke`` runs a scaled-down log and the same drills with the
assertions on (minus the 50x bar, which needs the full-size queries) and
does not rewrite the committed JSON.  Writes ``BENCH_serving.json`` at
the repository root.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro.homomorphism.engine as engine_module
from repro.core import ApproximationConfig, TreewidthClass, approximate
from repro.cq import ConjunctiveQuery
from repro.homomorphism.engine import HomEngine
from repro.serve import (
    ApproximationServer,
    ServeClient,
    ServerConfig,
    wait_for_server,
)
from repro.testing import FaultPlan
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serving.json"

CLS = TreewidthClass(1)
METHOD = "exact"
ZIPF_EXPONENT = 1.1

# Distinct queries of the replayed log: chorded cycles, none of them in
# TW(1), with cold pipeline times from tens to hundreds of ms.
FULL_TEMPLATES = [
    cycle_with_chords(6, ((0, 3),)),
    cycle_with_chords(7, ((0, 3),)),
    cycle_with_chords(7, ((1, 4), (2, 5))),
    cycle_with_chords(7, ((2, 6),)),
    cycle_with_chords(8, ((0, 4),)),
    # NB not (1, 5): that chord is a rotation of (0, 4) and the canonical
    # cache would (correctly) fold the two into one slot.
    cycle_with_chords(8, ((0, 3),)),
]
FULL_LOG_LENGTH = 60

SMOKE_TEMPLATES = [
    cycle_with_chords(5),
    cycle_with_chords(6, ((0, 3),)),
    cycle_with_chords(6, ((0, 2), (3, 5))),
]
SMOKE_LOG_LENGTH = 15


# --------------------------------------------------------------------------
# Server hosting + workload synthesis
# --------------------------------------------------------------------------


class _Hosted:
    """An :class:`ApproximationServer` on a background thread."""

    def __init__(self, config: ServerConfig) -> None:
        self.server = ApproximationServer(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._host, daemon=True)

    def _host(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.run())
        self.loop.close()

    def __enter__(self) -> "_Hosted":
        self.thread.start()
        wait_for_server(self.server.config.socket_path)
        return self

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "server failed to drain"


def _rename(query: ConjunctiveQuery, rng: random.Random) -> str:
    """The same query phrased with shuffled variable names."""
    variables = sorted(query.tableau().structure.domain, key=repr)
    shuffled = list(range(len(variables)))
    rng.shuffle(shuffled)
    mapping = {v: f"r{shuffled[i]}" for i, v in enumerate(variables)}
    return str(ConjunctiveQuery.from_tableau(query.tableau().rename(mapping)))


def _zipf_log(
    templates, length: int, seed: int = 0
) -> list[tuple[int, str]]:
    """``length`` requests: Zipf-ranked template choice, fresh renaming each."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(templates))]
    picks = rng.choices(range(len(templates)), weights=weights, k=length)
    return [(index, _rename(templates[index], rng)) for index in picks]


def _cold_pipeline_seconds(templates) -> list[float]:
    """Direct (no server) pipeline time per template, fresh engine each."""
    seconds = []
    config = ApproximationConfig(max_extra_atoms=0)
    for query in templates:
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            approximate(query, CLS, method=METHOD, config=config)
            seconds.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return seconds


# --------------------------------------------------------------------------
# The replay experiment
# --------------------------------------------------------------------------


def replay_zipfian(templates, log_length: int) -> dict:
    log = _zipf_log(templates, log_length)
    cold_seconds = _cold_pipeline_seconds(templates)
    with tempfile.TemporaryDirectory() as tmp:
        config = ServerConfig(
            socket_path=os.path.join(tmp, "serve.sock"),
            cache_dir=os.path.join(tmp, "cache"),
            max_extra_atoms=0,
        )
        with _Hosted(config) as host, ServeClient(
            config.socket_path, timeout=600.0
        ) as client:
            warm_hits, cold_serves = [], []
            replay_started = time.perf_counter()
            for _, query_text in log:
                started = time.perf_counter()
                response = client.approximate(query_text, "TW1", method=METHOD)
                elapsed = time.perf_counter() - started
                (warm_hits if response["cached"] else cold_serves).append(elapsed)
            replay_seconds = time.perf_counter() - replay_started
            stats = client.stats()
    assert len(cold_serves) == len(templates), (
        "canonical unification failed: every renamed phrasing past the "
        f"first should hit ({len(cold_serves)} cold serves for "
        f"{len(templates)} distinct queries)"
    )
    hit_rate = stats["cache"]["hit_rate"]
    cold_s = statistics.mean(cold_seconds)
    warm_s = statistics.mean(warm_hits)
    return {
        "workload": (
            f"zipf(s={ZIPF_EXPONENT}) x{len(log)} over "
            f"{len(templates)} distinct TW1 queries"
        ),
        "class": CLS.name,
        "log_length": len(log),
        "distinct_queries": len(templates),
        "hit_rate": hit_rate,
        "queries_per_s": round(len(log) / replay_seconds, 1),
        "plain_s": round(cold_s, 4),
        "budgeted_s": round(warm_s, 6),
        "warm_hit_ms": round(1000 * warm_s, 3),
        "speedup": round(cold_s / warm_s, 1) if warm_s else None,
    }


# --------------------------------------------------------------------------
# Fault drills (each asserts its recovery property)
# --------------------------------------------------------------------------


def drill_worker_kill() -> dict:
    """A SIGKILLed pool worker degrades the request, not the server."""
    query = str(cycle_with_chords(7, ((1, 4), (2, 5))))
    with tempfile.TemporaryDirectory() as tmp:
        clean_config = ServerConfig(
            socket_path=os.path.join(tmp, "clean.sock"),
            workers=2,
            max_extra_atoms=0,
        )
        with _Hosted(clean_config) as host, ServeClient(
            clean_config.socket_path, timeout=600.0
        ) as client:
            started = time.perf_counter()
            clean = client.approximate(query, "TW1", method=METHOD)
            clean_s = time.perf_counter() - started
        drill_config = ServerConfig(
            socket_path=os.path.join(tmp, "drill.sock"),
            workers=2,
            max_extra_atoms=0,
            fault_plan=FaultPlan("kill", 5, os.path.join(tmp, "token")),
        )
        with _Hosted(drill_config) as host, ServeClient(
            drill_config.socket_path, timeout=600.0
        ) as client:
            started = time.perf_counter()
            recovered = client.approximate(query, "TW1", method=METHOD)
            faulted_s = time.perf_counter() - started
            follow_up = client.approximate(query, "TW1", method=METHOD)
    assert recovered["pool_respawns"] >= 1, "kill fault did not break the pool"
    assert recovered["approximations"] == clean["approximations"], (
        "worker-kill recovery not bit-identical"
    )
    assert follow_up["ok"], "server poisoned after a worker death"
    return {
        "workload": "drill: worker SIGKILL mid-request",
        "class": CLS.name,
        "pool_respawns": recovered["pool_respawns"],
        "plain_s": round(clean_s, 4),
        "budgeted_s": round(faulted_s, 4),
        "speedup": round(clean_s / faulted_s, 3) if faulted_s else None,
        "recovery_cost_s": round(faulted_s - clean_s, 4),
    }


def drill_corrupt_entry(template) -> dict:
    """A torn disk entry is quarantined and recomputed bit-identically."""
    query, renamed = str(template), _rename(template, random.Random(7))
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        sabotaged = ServerConfig(
            socket_path=os.path.join(tmp, "a.sock"),
            cache_dir=cache_dir,
            max_extra_atoms=0,
            fault_plan=FaultPlan("corrupt", 1, os.path.join(tmp, "token")),
        )
        with _Hosted(sabotaged) as host, ServeClient(
            sabotaged.socket_path, timeout=600.0
        ) as client:
            cold = client.approximate(query, "TW1", method=METHOD)
        clean = ServerConfig(
            socket_path=os.path.join(tmp, "b.sock"),
            cache_dir=cache_dir,
            max_extra_atoms=0,
        )
        with _Hosted(clean) as host, ServeClient(
            clean.socket_path, timeout=600.0
        ) as client:
            started = time.perf_counter()
            recomputed = client.approximate(renamed, "TW1", method=METHOD)
            recompute_s = time.perf_counter() - started
            healed = client.approximate(query, "TW1", method=METHOD)
            quarantined = host.server.cache.stats.quarantined
    assert quarantined == 1, "corrupt entry was not quarantined"
    assert not recomputed["cached"], "corrupt entry served as a hit"
    assert recomputed["approximations"] == cold["approximations"], (
        "post-corruption recompute not bit-identical"
    )
    assert healed["cached"], "cache slot did not heal after recomputation"
    return {
        "workload": "drill: corrupted disk-cache entry",
        "class": CLS.name,
        "quarantined": quarantined,
        "plain_s": None,
        "budgeted_s": round(recompute_s, 4),
        "speedup": None,
    }


def drill_sigterm_under_load(template) -> dict:
    """SIGTERM on the CLI daemon: drain, flush, warm bit-identical restart."""
    query, renamed = str(template), _rename(template, random.Random(11))
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))

    def spawn(*extra: str) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock, "--cache-dir", cache_dir, *extra,
            ],
            env=env, cwd=REPO_ROOT,
            stderr=subprocess.DEVNULL, text=True,
        )

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "serve.sock")
        cache_dir = os.path.join(tmp, "cache")
        daemon = spawn("--enable-test-ops")
        try:
            wait_for_server(sock, deadline=60.0)
            with ServeClient(sock, timeout=600.0) as client:
                cold = client.approximate(query, "TW1", method=METHOD)
            occupant = ServeClient(sock, timeout=600.0)
            inflight: list[dict] = []
            worker = threading.Thread(
                target=lambda: inflight.append(occupant.sleep(1.0))
            )
            worker.start()
            time.sleep(0.3)  # let the request be admitted
            drain_started = time.perf_counter()
            daemon.send_signal(signal.SIGTERM)
            exit_code = daemon.wait(timeout=60)
            drain_s = time.perf_counter() - drain_started
            worker.join(timeout=60)
            occupant.close()
        finally:
            if daemon.poll() is None:
                daemon.kill()
        assert exit_code == 0, f"daemon exited {exit_code} on SIGTERM"
        assert inflight and inflight[0]["ok"], "in-flight request dropped"
        index = json.loads(Path(cache_dir, "index.json").read_text())
        assert index["disk_entries"] >= 1, "cache index not flushed on drain"

        restarted = spawn()
        try:
            wait_for_server(sock, deadline=60.0)
            with ServeClient(sock, timeout=600.0) as client:
                started = time.perf_counter()
                warm = client.approximate(renamed, "TW1", method=METHOD)
                warm_s = time.perf_counter() - started
                client.shutdown()
            assert restarted.wait(timeout=60) == 0
        finally:
            if restarted.poll() is None:
                restarted.kill()
    assert warm["cached"], "restarted daemon did not come up warm"
    assert warm["approximations"] == cold["approximations"], (
        "warm restart not bit-identical"
    )
    return {
        "workload": "drill: SIGTERM under load + warm restart",
        "class": CLS.name,
        "drain_s": round(drain_s, 3),
        "plain_s": None,
        "budgeted_s": round(warm_s, 4),
        "speedup": None,
    }


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def run_all(templates, log_length: int) -> dict:
    rows = [
        replay_zipfian(templates, log_length),
        drill_worker_kill(),
        drill_corrupt_entry(templates[0]),
        drill_sigterm_under_load(templates[0]),
    ]
    headline = rows[0]
    return {
        "benchmark": "serving",
        "description": (
            "resident daemon replaying a Zipfian query log of per-request "
            "renamed (hom-equivalent) phrasings: warm canonical-cache hits "
            "vs the cold pipeline, plus the worker-kill, cache-corruption, "
            "and SIGTERM-drain fault drills (asserted bit-identical)"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["speedup"],
            "target_speedup": 50.0,
            "hit_rate": headline["hit_rate"],
            "queries_per_s": headline["queries_per_s"],
            "note": (
                "mean warm-hit latency vs mean cold pipeline time over the "
                "distinct queries of the log; >= 50x means a cache hit "
                "costs protocol overhead, not pipeline work"
            ),
        },
    }


def _report(payload: dict) -> None:
    body = table(
        ["workload", "cold(s)", "served(s)", "speedup", "extra"],
        [
            [
                row["workload"],
                row.get("plain_s", "-") if row.get("plain_s") is not None else "-",
                row["budgeted_s"],
                f"{row['speedup']}x" if row.get("speedup") else "-",
                (
                    f"hit rate {row['hit_rate']}, {row['queries_per_s']} q/s"
                    if "hit_rate" in row
                    else f"{row['pool_respawns']} respawn(s)"
                    if "pool_respawns" in row
                    else f"{row['quarantined']} quarantined"
                    if "quarantined" in row
                    else f"drain {row['drain_s']}s"
                ),
            ]
            for row in payload["workloads"]
        ],
    )
    write_report(
        "bench_serving",
        "Approximation-as-a-service: warm-cache replay and fault drills",
        body,
    )


def smoke() -> None:
    payload = run_all(SMOKE_TEMPLATES, SMOKE_LOG_LENGTH)
    headline = payload["headline"]
    # The smoke queries are deliberately tiny, so the warm/cold gap is
    # modest; the bar here is the drills' assertions plus a sane cache.
    assert headline["hit_rate"] > 0.5, f"hit rate {headline['hit_rate']}"
    assert headline["speedup"] > 1.0, f"no warm speedup: {headline['speedup']}"
    print(
        f"smoke ok: warm hits {headline['speedup']}x over cold, "
        f"hit rate {headline['hit_rate']}, "
        f"{headline['queries_per_s']} q/s; all three fault drills passed"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down replay + the three drills; no JSON rewrite",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    payload = run_all(FULL_TEMPLATES, FULL_LOG_LENGTH)
    headline = payload["headline"]
    assert headline["speedup"] >= headline["target_speedup"], (
        f"warm-hit speedup regressed: {headline['speedup']}x "
        f"< target {headline['target_speedup']}x"
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    _report(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
