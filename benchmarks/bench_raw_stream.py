"""EXP RAW-STREAM — cost-modeled raw-stream generation vs. the PR-4
canonical stage-1 baseline: killing the stage-1 canonicalization tax.

After PR 4's dominance-aware reduction, canonical-key dedup of the quotient
stream was the dominant serial cost on member-heavy plain runs (~2s of the
~3s 9-variable HTW(2) frontier): every candidate paid a full fact-level
canonization even though the refinement index and the dominance/class memos
absorb most repeats for free.  The pipeline now generates those streams
**raw** (orbit-pruned only, which is free on rigid bases like these) and
defers canonicalization to the point of need (``Frontier.resolve``'s
``late_key``): a candidate is keyed
only after the dominance memo, the sublinear trie refinement index, and
the class-status memo all missed, and the repair reverse queries that a
raw stream multiplies are answered by per-member kernel indexes (one hom
enumeration per frontier member, one trie walk per candidate) instead of
per-candidate engine searches.

Measured here, per workload:

* **End-to-end serial speedup** (the headline): ``run_pipeline`` under the
  new default (raw generation) vs. the **PR-4 baseline** — canonical
  stage-1 dedup with the kernel index disabled, restoring PR 4's
  per-candidate engine-backed repair reverse queries.  Results are
  asserted bit-identical.
* **Stage-1 share**: the fraction of the end-to-end wall time spent
  generating (and integer-forming) the candidate stream alone, old vs.
  new — the tax this PR exists to kill (target: < 40% under raw).

Writes machine-readable ``BENCH_raw_stream.json`` at the repository root
so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.core import HypertreeClass, run_pipeline
from repro.core.pipeline import Frontier, MembershipTester, PipelineStats
from repro.core.quotients import iter_quotient_candidates
from repro.homomorphism.engine import HomEngine
import repro.homomorphism.engine as engine_module
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_raw_stream.json"


# --------------------------------------------------------------------------
# Workloads: member-heavy plain quotient frontiers (max_extra_atoms=0), the
# regime where stage-1 canonicalization dominated the run after PR 4.  The
# 9-variable chordal cycle is the headline (Bell(9) = 21147 partitions,
# ~8.5k canonical candidates, ~99% members).
# --------------------------------------------------------------------------


def workloads():
    # (name, query, class, repeats, headline?)
    return [
        (
            "C9+5ch/HTW2 member-heavy",
            cycle_with_chords(9, ((0, 3), (1, 4), (2, 5), (6, 8), (7, 1))),
            HypertreeClass(2),
            1,
            True,
        ),
        (
            "C8+3ch/HTW2 member-heavy",
            cycle_with_chords(8, ((0, 3), (1, 4), (2, 6))),
            HypertreeClass(2),
            3,
            False,
        ),
    ]


def _fresh_engine(fn, repeats: int):
    """Median wall time of ``fn`` under a private engine, plus last result."""
    times, result = [], None
    for _ in range(repeats):
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return statistics.median(times), result


def _pr4_baseline(fn, repeats: int):
    """Run ``fn`` with the per-member kernel index disabled.

    With ``_KERNEL_HOM_CAP = 0`` every kernel-index build caps out
    immediately and ``Frontier._member_le`` falls back to per-candidate
    engine queries — PR 4's repair reverse-query behavior.  Combined with
    ``generation="canonical"`` in ``fn`` this replicates the PR-4 serial
    path (the trie refinement index stays on, which only makes the
    baseline *faster* than true PR 4, so reported speedups are
    conservative).
    """
    saved_cap = Frontier._KERNEL_HOM_CAP
    Frontier._KERNEL_HOM_CAP = 0
    try:
        return _fresh_engine(fn, repeats)
    finally:
        Frontier._KERNEL_HOM_CAP = saved_cap


def _stage1_seconds(tableau, generation: str, repeats: int) -> float:
    """Wall time to exhaust stage 1 alone (integer facts included)."""

    def consume():
        for candidate in iter_quotient_candidates(
            tableau, generation=generation
        ):
            candidate.facts()

    seconds, _ = _fresh_engine(consume, repeats)
    return seconds


def _member_rate(tableau, cls) -> float:
    tester = MembershipTester(cls, PipelineStats(), None)
    candidates = list(iter_quotient_candidates(tableau))
    return sum(1 for c in candidates if tester(c)) / len(candidates)


def run_workload(name, query, cls, repeats, headline):
    tableau = query.tableau()
    assert not cls.contains_tableau(tableau), f"{name}: base must not be in class"
    member_rate = _member_rate(tableau, cls)

    base_s, base = _pr4_baseline(
        lambda: run_pipeline(
            tableau, cls, max_extra_atoms=0, generation="canonical"
        ),
        repeats,
    )
    new_s, new = _fresh_engine(
        lambda: run_pipeline(tableau, cls, max_extra_atoms=0),
        repeats,
    )
    assert new.frontier == base.frontier, f"{name}: raw not bit-identical"

    stage1_base_s = _stage1_seconds(tableau, "canonical", repeats)
    # The resolved default for fine-to-coarse plain runs: the raw replay
    # with orbit pruning (identical to "raw" on these rigid bases).
    stage1_new_s = _stage1_seconds(tableau, "orbit", repeats)

    return {
        "workload": name,
        "class": cls.name,
        "variables": len(tableau.structure.domain),
        "member_rate": round(member_rate, 3),
        "frontier_size": len(base.frontier),
        "candidates_canonical": base.stats.generated,
        "candidates_raw": new.stats.generated,
        "pr4_end_to_end_s": round(base_s, 4),
        "raw_end_to_end_s": round(new_s, 4),
        "speedup": round(base_s / new_s, 2) if new_s else None,
        "stage1_pr4_s": round(stage1_base_s, 4),
        "stage1_raw_s": round(stage1_new_s, 4),
        "stage1_share_pr4": round(stage1_base_s / base_s, 3) if base_s else None,
        "stage1_share_raw": round(stage1_new_s / new_s, 3) if new_s else None,
        "late_canonizations": new.stats.late_canonizations,
        "class_status_hits": new.stats.class_status_hits,
        "hom_le_raw": new.stats.hom_le_calls,
        "hom_le_pr4": base.stats.hom_le_calls,
        "index_evictions": new.stats.index_evictions,
    }


def run_all() -> dict:
    specs = workloads()
    rows = [run_workload(*spec) for spec in specs]
    headline_name = next(spec[0] for spec in specs if spec[4])
    headline = next(row for row in rows if row["workload"] == headline_name)
    return {
        "benchmark": "raw_stream",
        "description": (
            "raw-stream stage-1 generation (no canonical dedup; downstream "
            "memos, the trie refinement index, and point-of-need late "
            "canonicalization absorb repeats; kernel-index repair reverse "
            "queries) vs the PR-4 canonical baseline on member-heavy plain "
            "quotient frontiers"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["speedup"],
            "target_speedup": 2.0,
            "stage1_share": headline["stage1_share_raw"],
            "target_stage1_share": 0.4,
            "note": (
                "end-to-end serial run_pipeline, raw generation (the new "
                "default) vs PR-4 baseline (canonical stage-1 dedup, "
                "kernel index off) on the 9-variable member-heavy HTW(2) "
                "frontier; results are bit-identical"
            ),
        },
    }


def main() -> None:
    payload = run_all()
    assert (
        payload["headline"]["stage1_share"]
        < payload["headline"]["target_stage1_share"]
    ), "stage-1 share regressed above target"
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    body = table(
        [
            "workload",
            "member%",
            "cands old→raw",
            "pr4 e2e(s)",
            "raw e2e(s)",
            "speedup",
            "stage1 share old→raw",
            "late canon",
        ],
        [
            [
                row["workload"],
                f"{100 * row['member_rate']:.0f}",
                f"{row['candidates_canonical']}→{row['candidates_raw']}",
                row["pr4_end_to_end_s"],
                row["raw_end_to_end_s"],
                f"{row['speedup']}x",
                f"{row['stage1_share_pr4']}→{row['stage1_share_raw']}",
                row["late_canonizations"],
            ]
            for row in payload["workloads"]
        ],
    )
    write_report(
        "bench_raw_stream",
        "Raw-stream generation vs the stage-1 canonicalization tax",
        body,
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
