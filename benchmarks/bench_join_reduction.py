"""EXP COR53-JOINS — Corollary 5.3: acyclic approximations reduce joins.

For every cyclic Boolean graph CQ, each minimized acyclic approximation has
strictly fewer joins.  Regenerated over random cyclic queries; the contrast
column shows Proposition 5.9's non-Boolean phenomenon (joins may be equal
when free variables pin the tableau).
"""

from __future__ import annotations

from repro.core import TW1, all_approximations
from repro.cq import minimize
from repro.hypergraphs import is_acyclic_query
from repro.workloads import random_graph_query
from repro.workloads.families import proposition_59_query
from paperfmt import table, write_report


def _measure(sample: int = 18) -> list[list[object]]:
    rows: list[list[object]] = []
    for seed in range(sample):
        query = random_graph_query(6, 8, seed=100 + seed)
        minimized = minimize(query)
        # Corollary 5.3 concerns cyclic queries; replace Q by its minimized
        # equivalent and skip those whose core is already acyclic (they are
        # their own approximations).
        if is_acyclic_query(minimized):
            continue
        results = all_approximations(minimized, TW1)
        approx_joins = [minimize(r).num_joins for r in results]
        rows.append(
            [
                f"rand#{seed}",
                minimized.num_joins,
                max(approx_joins),
                len(results),
                "yes" if all(j < minimized.num_joins for j in approx_joins) else "NO",
            ]
        )
    return rows


HEADERS = ["query", "joins(min Q)", "max joins(Q')", "#approx", "strictly fewer"]


def bench_join_reduction(benchmark):
    query = random_graph_query(6, 8, seed=104)
    benchmark.pedantic(
        lambda: all_approximations(query, TW1), rounds=1, iterations=1
    )


def bench_join_reduction_report(benchmark):
    def report():
        rows = _measure()
        assert rows and all(row[4] == "yes" for row in rows)
        q59 = proposition_59_query()
        results = all_approximations(q59, TW1)
        contrast = (
            f"contrast (Prop 5.9, non-Boolean): {q59}\n"
            f"  all {len(results)} minimized approximations keep "
            f"{q59.num_joins} joins: "
            + str(all(minimize(r).num_joins == q59.num_joins for r in results))
        )
        return table(HEADERS, rows) + "\n\n" + contrast

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("join_reduction", "Corollary 5.3: join reduction", body)


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
