"""EXP FLEET — crash-healing throughput of the supervised serving fleet.

PR 10 puts a supervisor (:mod:`repro.serve.fleet`) over N ``repro
serve`` worker processes sharing one disk cache tier, with an asyncio
router balancing by least outstanding requests, retrying connection
faults on another worker, and hedging stragglers.  This benchmark
replays the same Zipfian log of per-request-renamed (hom-equivalent)
queries through a 2-worker fleet twice:

* **undisturbed** — the baseline throughput;
* **disturbed** — one worker ``SIGKILL``'d mid-replay.

The headline is the throughput *ratio* ``disturbed / undisturbed``
(``headline.speedup``, target ≥ 0.8 — "within 20%"), and the run
asserts the kill drill's invariants outright:

1. **zero failed client requests** — every response of the disturbed
   replay is ``ok``;
2. **capacity restored** — the supervisor replaces the killed worker
   (the victim slot's generation advances, both workers live) within
   the restart-backoff budget;
3. **post-restart warm ≡ cold** — after healing, a renamed phrasing of
   every distinct query answers ``cached`` and bit-identical to the
   disturbed replay's own cold answers (the shared disk tier and the
   canonical result key survive the crash).

``--smoke`` replays a scaled-down log with the same assertions minus
the throughput bar (tiny logs make the ratio noise) and never rewrites
the committed JSON.  Writes ``BENCH_fleet.json`` at the repository
root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import time
from pathlib import Path

from repro.serve import FleetConfig
from repro.testing.chaos import HostedFleet
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_fleet.json"

ZIPF_EXPONENT = 1.1
WORKERS = 2
TARGET_RATIO = 0.8

FULL_TEMPLATES = [
    cycle_with_chords(6, ((0, 3),)),
    cycle_with_chords(7, ((0, 3),)),
    cycle_with_chords(7, ((1, 4), (2, 5))),
    cycle_with_chords(7, ((2, 6),)),
    cycle_with_chords(8, ((0, 4),)),
    cycle_with_chords(8, ((0, 3),)),
]
# Long enough that the kill's fixed cost (one failover retry + the
# respawn racing the replay) amortizes: the ratio measures steady-state
# degraded capacity, not a single stall against a short log.
FULL_LOG_LENGTH = 120

SMOKE_TEMPLATES = [
    cycle_with_chords(5),
    cycle_with_chords(6, ((0, 3),)),
    cycle_with_chords(6, ((0, 2), (3, 5))),
]
SMOKE_LOG_LENGTH = 12


# --------------------------------------------------------------------------
# Workload synthesis (mirrors bench_serving: the canonical key, not string
# equality, must do the unification work)
# --------------------------------------------------------------------------


def _rename(query, rng: random.Random) -> str:
    from repro.cq import ConjunctiveQuery

    variables = sorted(query.tableau().structure.domain, key=repr)
    shuffled = list(range(len(variables)))
    rng.shuffle(shuffled)
    mapping = {v: f"f{shuffled[i]}" for i, v in enumerate(variables)}
    return str(ConjunctiveQuery.from_tableau(query.tableau().rename(mapping)))


def _zipf_log(templates, length: int, seed: int) -> list[tuple[int, str]]:
    rng = random.Random(seed)
    weights = [
        1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(len(templates))
    ]
    picks = rng.choices(range(len(templates)), weights=weights, k=length)
    return [(index, _rename(templates[index], rng)) for index in picks]


def _fleet_config(run_dir: str) -> FleetConfig:
    return FleetConfig(
        workers=WORKERS,
        socket_path=os.path.join(run_dir, "fleet.sock"),
        run_dir=run_dir,
        cache_dir=os.path.join(run_dir, "cache"),
        max_extra_atoms=0,
        health_interval=0.2,
        health_timeout=0.8,
        restart_backoff_base=0.1,
        restart_backoff_cap=0.5,
        hedge_after=2.0,
    )


# --------------------------------------------------------------------------
# Replay
# --------------------------------------------------------------------------


def _replay(
    run_dir: str, templates, log, *, kill_at: int | None = None
) -> dict:
    """Drive one fleet through the log; optionally SIGKILL worker 0 at
    request index ``kill_at``.  Returns the replay's metrics."""
    config = _fleet_config(run_dir)
    with HostedFleet(config) as hosted:
        with hosted.client() as client:
            before = client.stats()
            victim = before["slots"][0]
            answers: dict[int, list[str]] = {}
            failures = 0
            started = time.perf_counter()
            for index, (template_index, text) in enumerate(log):
                if index == kill_at:
                    os.kill(victim["pid"], signal.SIGKILL)
                response = client.approximate(
                    text, "TW1", method="exact", check=False
                )
                if not response.get("ok"):
                    failures += 1
                    continue
                answers.setdefault(
                    template_index, response["approximations"]
                )
                assert response["approximations"] == answers[template_index], (
                    f"request {index} diverged from its template's first "
                    f"answer"
                )
            elapsed = time.perf_counter() - started

            healed_s = None
            if kill_at is not None:
                heal_started = time.perf_counter()
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    stats = client.stats()
                    if (
                        stats["slots"][0]["generation"]
                        >= victim["generation"] + 1
                        and stats["live_workers"] == WORKERS
                        and not any(
                            slot["degraded"] for slot in stats["slots"]
                        )
                    ):
                        break
                    time.sleep(0.1)
                else:
                    raise AssertionError(
                        "supervisor did not restore capacity after the kill"
                    )
                healed_s = round(time.perf_counter() - heal_started, 3)

                # Post-restart: every distinct query answers warm and
                # bit-identical to this replay's own cold answers.
                rng = random.Random(10_007)
                for template_index, expected in sorted(answers.items()):
                    probe = client.approximate(
                        _rename(templates[template_index], rng),
                        "TW1",
                        method="exact",
                    )
                    assert probe["cached"], "post-restart answer was cold"
                    assert probe["approximations"] == expected, (
                        "post-restart warm answer not bit-identical"
                    )
            final = client.stats()
    return {
        "seconds": round(elapsed, 3),
        "queries_per_s": round(len(log) / elapsed, 2),
        "failures": failures,
        "router_retries": final["router_retries"],
        "hedges": final["hedges"],
        "worker_restarts": final["worker_restarts"],
        "healed_s": healed_s,
    }


def run_all(templates, log_length: int) -> dict:
    import tempfile

    log = _zipf_log(templates, log_length, seed=20260808)
    kill_at = log_length // 3

    with tempfile.TemporaryDirectory() as run_dir:
        undisturbed = _replay(run_dir, templates, log)
    with tempfile.TemporaryDirectory() as run_dir:
        disturbed = _replay(run_dir, templates, log, kill_at=kill_at)

    assert disturbed["failures"] == 0, (
        f"{disturbed['failures']} client request(s) failed during the kill "
        f"drill — the router must absorb a worker death invisibly"
    )
    assert disturbed["worker_restarts"] >= 1, "the supervisor never healed"

    ratio = round(
        disturbed["queries_per_s"] / undisturbed["queries_per_s"], 3
    )
    return {
        "benchmark": "fleet",
        "description": (
            "2-worker supervised fleet replaying a Zipfian log of "
            "per-request renamed queries, undisturbed vs one worker "
            "SIGKILL'd mid-replay: zero failed requests, supervisor "
            "restores capacity, post-restart warm answers bit-identical "
            "to cold, throughput within 20% of undisturbed"
        ),
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "log_length": len(log),
        "kill_at": kill_at,
        "workloads": [
            dict(undisturbed, workload="undisturbed"),
            dict(disturbed, workload="sigkill-mid-replay"),
        ],
        "headline": {
            "name": "sigkill-mid-replay",
            "class": "TW1",
            "speedup": ratio,
            "target_speedup": TARGET_RATIO,
            "failures": disturbed["failures"],
            "healed_s": disturbed["healed_s"],
            "note": (
                "disturbed/undisturbed throughput ratio; >= 0.8 means a "
                "worker death costs at most 20% throughput while the "
                "supervisor heals and zero client requests fail"
            ),
        },
    }


def _report(payload: dict) -> None:
    body = table(
        ["replay", "t(s)", "q/s", "failures", "retries", "hedges", "healed(s)"],
        [
            [
                row["workload"],
                row["seconds"],
                row["queries_per_s"],
                row["failures"],
                row["router_retries"],
                row["hedges"],
                row["healed_s"] if row["healed_s"] is not None else "-",
            ]
            for row in payload["workloads"]
        ],
    )
    write_report(
        "bench_fleet",
        "Supervised fleet: crash-healing replay throughput",
        body,
    )


def smoke() -> None:
    payload = run_all(SMOKE_TEMPLATES, SMOKE_LOG_LENGTH)
    headline = payload["headline"]
    # Tiny logs make the throughput ratio noisy; the smoke bar is the
    # drill's correctness invariants plus a non-degenerate ratio.
    assert headline["failures"] == 0
    assert headline["speedup"] > 0.3, (
        f"disturbed replay collapsed: ratio {headline['speedup']}"
    )
    print(
        f"smoke ok: kill drill ratio {headline['speedup']} "
        f"(healed in {headline['healed_s']}s, zero failed requests)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down replay with the drill assertions; no JSON rewrite",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
        return
    payload = run_all(FULL_TEMPLATES, FULL_LOG_LENGTH)
    headline = payload["headline"]
    assert headline["speedup"] >= headline["target_speedup"], (
        f"disturbed throughput ratio {headline['speedup']} "
        f"< target {headline['target_speedup']}"
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    _report(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
