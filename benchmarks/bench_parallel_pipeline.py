"""EXP PARALLEL-PIPELINE — staged pipeline vs. the pre-pipeline serial path.

Compares the staged approximation pipeline (:mod:`repro.core.pipeline`)
against a faithful replica of the pre-pipeline serial algorithm (stream all
candidates as tableaux, run every class-membership check, memoized-``hom_le``
frontier) on Corollary 4.3 frontier workloads:

* hypergraph-class (HW/acyclic) frontiers on 9-variable ternary queries —
  the headline: 21147 partitions funneled through hypertree/acyclicity
  checks, where the pipeline's stages pay off individually (lazy
  integer-form candidates that never build a ``Structure`` for rejected
  quotients; membership verdicts memoized per primal graph/hypergraph;
  cost-modeled dedup and stage ordering; memo-free, move-to-front dominance)
  and the filter stage parallelizes across a process pool;
* graph-class frontiers (C7/TW1, C7/TW2) as regression rows — these are
  already dominated by the engine's canonical dedup, so the pipeline must
  simply not lose ground.

Three timed configurations per workload: the legacy serial path, the
pipeline with ``workers=1`` (bit-identical results, enforced), and the
pipeline with ``workers=4`` under the ``"checks"`` strategy (also enforced
bit-identical).  The headline row additionally times the ``"shards"``
strategy, whose per-shard frontiers merge associatively (results equal up
to homomorphic equivalence).

On single-CPU hosts (``cpu_count`` is recorded in the JSON) the 4-worker
wall-clock gain is algorithmic — memoization, laziness, and cost-modeled
ordering carried by the pipeline path — while the pool only adds overhead;
on multicore hosts the pooled filter stage scales the check-bound share on
top of that.

Writes machine-readable ``BENCH_parallel_pipeline.json`` at the repository
root so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.core import (
    AC,
    ApproximationConfig,
    GeneralizedHypertreeClass,
    HypertreeClass,
    TreewidthClass,
    run_pipeline,
)
from repro.core.approximation import candidate_tableaux
from repro.cq import parse_query
from repro.homomorphism import hom_equivalent
from repro.homomorphism.engine import HomEngine
import repro.homomorphism.engine as engine_module
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel_pipeline.json"


# --------------------------------------------------------------------------
# Legacy implementation: a faithful replica of the pre-pipeline serial path
# (PR 1 state) — candidate stream materialized as tableaux, every candidate
# class-checked, frontier via the engine's memoized hom_le.  Kept here so
# the benchmark keeps measuring the same baseline as the pipeline evolves.
# --------------------------------------------------------------------------


def legacy_frontier(query, cls, config):
    engine = engine_module.default_engine()
    frontier = []
    for candidate in candidate_tableaux(query, cls, config):
        if any(engine.hom_le(member, candidate) for member in frontier):
            continue
        frontier = [m for m in frontier if not engine.hom_le(candidate, m)]
        frontier.append(candidate)
    return frontier


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------

TERNARY_C5_9V = parse_query(
    "Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x7), R(x7,x8,x9), R(x9,x2,x1)"
)
TERNARY_DENSE_9V = parse_query(
    "Q() :- R(x1,x2,x3), R(x2,x3,x4), R(x4,x5,x6), R(x5,x6,x7), "
    "R(x7,x8,x9), R(x8,x9,x1)"
)
TERNARY_C3_6V = parse_query("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")


def workloads():
    quotients_only = {"max_extra_atoms": 0}
    one_fresh_ext = {"max_extra_atoms": 1, "allow_fresh": False}
    return [
        # (name, query, class, candidate-space kwargs, repeats, headline?)
        (
            "dense(9v,6atoms)/GHW1-acyclic",
            TERNARY_DENSE_9V,
            GeneralizedHypertreeClass(1),
            quotients_only,
            1,
            True,
        ),
        (
            "dense(9v,6atoms)/HTW1",
            TERNARY_DENSE_9V,
            HypertreeClass(1),
            quotients_only,
            1,
            False,
        ),
        (
            "ternary-C5(9v)/HTW1",
            TERNARY_C5_9V,
            HypertreeClass(1),
            quotients_only,
            1,
            False,
        ),
        (
            "ternary-C3(6v)/AC +ext",
            TERNARY_C3_6V,
            AC,
            one_fresh_ext,
            3,
            False,
        ),
        ("C7/TW1", cycle_with_chords(7), TreewidthClass(1), {}, 3, False),
        ("C7/TW2", cycle_with_chords(7), TreewidthClass(2), {}, 3, False),
    ]


def _fresh_engine_run(fn, repeats: int):
    """Median wall time of ``fn`` under a private engine, plus last result."""
    times, result = [], None
    for _ in range(repeats):
        saved = engine_module.DEFAULT_ENGINE
        engine_module.DEFAULT_ENGINE = HomEngine()
        try:
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
        finally:
            engine_module.DEFAULT_ENGINE = saved
    return statistics.median(times), result


def run_workload(name, query, cls, space, repeats, with_shards):
    config = ApproximationConfig(**space)
    tableau = query.tableau()
    space_kwargs = {
        "max_extra_atoms": config.max_extra_atoms,
        "allow_fresh": config.allow_fresh,
    }

    legacy_s, legacy = _fresh_engine_run(
        lambda: legacy_frontier(query, cls, config), repeats
    )
    serial_s, serial = _fresh_engine_run(
        lambda: run_pipeline(tableau, cls, **space_kwargs), repeats
    )
    pool_s, pooled = _fresh_engine_run(
        lambda: run_pipeline(tableau, cls, workers=4, **space_kwargs), repeats
    )
    assert legacy == serial.frontier, f"{name}: serial pipeline not bit-identical"
    assert legacy == pooled.frontier, f"{name}: pooled pipeline not bit-identical"

    entry = {
        "workload": name,
        "class": cls.name,
        "variables": len(tableau.structure.domain),
        "frontier_size": len(legacy),
        "legacy_s": round(legacy_s, 4),
        "pipeline_serial_s": round(serial_s, 4),
        "pipeline_pool4_s": round(pool_s, 4),
        "speedup_serial": round(legacy_s / serial_s, 2) if serial_s else None,
        "speedup_pool4": round(legacy_s / pool_s, 2) if pool_s else None,
        "stats": {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in serial.stats.as_dict().items()
        },
    }
    if with_shards:
        shards_s, sharded = _fresh_engine_run(
            lambda: run_pipeline(
                tableau, cls, workers=4, parallel="shards", **space_kwargs
            ),
            repeats,
        )
        assert len(sharded.frontier) == len(legacy), f"{name}: shard frontier size"
        assert all(
            any(hom_equivalent(member, other) for other in legacy)
            for member in sharded.frontier
        ), f"{name}: shard frontier not equivalent"
        entry["pipeline_shards4_s"] = round(shards_s, 4)
    return entry


def run_all() -> dict:
    rows = [run_workload(*spec[:5], with_shards=spec[5]) for spec in workloads()]
    headline_name = workloads()[0][0]
    headline = next(row for row in rows if row["workload"] == headline_name)
    return {
        "benchmark": "parallel_pipeline",
        "description": (
            "pre-pipeline serial path vs staged pipeline "
            "(lazy integer-form candidates, key-memoized class checks, "
            "cost-modeled dedup/ordering, process-pool filter stage)"
        ),
        "cpu_count": os.cpu_count(),
        "workloads": rows,
        "headline": {
            "name": headline["workload"],
            "class": headline["class"],
            "speedup": headline["speedup_pool4"],
            "speedup_serial": headline["speedup_serial"],
            "target_speedup": 2.0,
            "note": (
                "speedup of the 4-worker pipeline over the pre-pipeline "
                "serial path; on 1-CPU hosts the gain is algorithmic "
                "(memoization + laziness + cost models), on multicore the "
                "pooled check stage adds on top"
            ),
        },
    }


def emit_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


HEADERS = ["workload", "class", "legacy", "pipe(1w)", "pipe(4w)", "speedup(4w)", "frontier"]


def _report_rows(payload: dict) -> list[list[object]]:
    rows = []
    for entry in payload["workloads"]:
        rows.append(
            [
                entry["workload"],
                entry["class"],
                f"{entry['legacy_s']:.2f}s",
                f"{entry['pipeline_serial_s']:.2f}s",
                f"{entry['pipeline_pool4_s']:.2f}s",
                f"{entry['speedup_pool4']:.2f}x",
                entry["frontier_size"],
            ]
        )
    return rows


def bench_parallel_pipeline_report(benchmark):
    def report():
        payload = run_all()
        emit_json(payload)
        assert payload["headline"]["speedup"] >= payload["headline"]["target_speedup"], (
            "pipeline with 4 workers must be ≥2x over the serial path on the "
            "hypergraph-class headline frontier"
        )
        return table(HEADERS, _report_rows(payload))

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "parallel_pipeline",
        "Staged parallel pipeline: serial path vs workers=1 / workers=4",
        body,
    )


if __name__ == "__main__":
    payload = run_all()
    emit_json(payload)
    print(table(HEADERS, _report_rows(payload)))
    headline = payload["headline"]
    print(
        f"\nheadline: {headline['name']} [{headline['class']}] "
        f"{headline['speedup']}x with 4 workers "
        f"(target ≥ {headline['target_speedup']}x, cpu_count={payload['cpu_count']}); "
        f"wrote {JSON_PATH.name}"
    )
