"""EXP SUB-EVAL — substrate micro-benchmarks.

Not a paper table: performance profile of the machinery everything rests
on — the evaluation strategies against each other (Yannakakis vs naive vs
treewidth), the homomorphism engine, core computation, containment,
treewidth decisions, GYO.  The shapes back the complexity claims used
throughout (acyclic evaluation linear-ish in |D|; naive superlinear).
"""

from __future__ import annotations

from repro.cq import minimize, parse_query
from repro.evaluation import evaluate
from repro.homomorphism import core, find_homomorphism
from repro.hypergraphs import hypergraph_of_query, is_acyclic, treewidth_exact
from repro.workloads import path_heavy_db, random_digraph_db, random_graph_query
from paperfmt import table, write_report

ACYCLIC_QUERY = parse_query("Q() :- E(x, y), E(y, z), E(z, u), E(u, w)")
CYCLIC_QUERY = parse_query("Q() :- E(x, y), E(y, z), E(z, u), E(u, x)")


def bench_yannakakis_path_query(benchmark):
    db = path_heavy_db(2000, seed=5)
    result = benchmark(lambda: evaluate(ACYCLIC_QUERY, db, method="yannakakis"))
    assert result


def bench_naive_path_query(benchmark):
    db = path_heavy_db(400, seed=5)
    benchmark(lambda: evaluate(ACYCLIC_QUERY, db, method="naive"))


def bench_treewidth_eval_cycle(benchmark):
    db = random_digraph_db(120, 700, seed=6)
    benchmark.pedantic(
        lambda: evaluate(CYCLIC_QUERY, db, method="treewidth"), rounds=2, iterations=1
    )


def bench_backtracking_eval_cycle(benchmark):
    db = random_digraph_db(120, 700, seed=6)
    benchmark.pedantic(
        lambda: evaluate(CYCLIC_QUERY, db, method="backtracking"),
        rounds=2,
        iterations=1,
    )


def bench_hom_search(benchmark):
    source = random_graph_query(7, 10, seed=8).tableau().structure
    target = random_digraph_db(40, 300, seed=8)
    benchmark(lambda: find_homomorphism(source, target))


def bench_core_computation(benchmark):
    structure = random_digraph_db(12, 30, seed=9)
    benchmark(lambda: core(structure))


def bench_minimization(benchmark):
    query = random_graph_query(7, 11, seed=10)
    benchmark(lambda: minimize(query))


def bench_treewidth_exact(benchmark):
    graph = random_graph_query(9, 16, seed=11).graph()
    benchmark(lambda: treewidth_exact(graph))


def bench_gyo(benchmark):
    query = random_graph_query(9, 12, seed=12)
    benchmark(lambda: is_acyclic(hypergraph_of_query(query)))


def bench_bounded_tw_hom(benchmark):
    # The paper's polynomial fast path: homs from a treewidth-1 source.
    from repro.homomorphism import bounded_treewidth_homomorphism

    source = parse_query(
        "Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f)"
    ).tableau().structure
    target = random_digraph_db(60, 400, seed=13)
    result = benchmark(
        lambda: bounded_treewidth_homomorphism(source, target, k=1)
    )
    assert result is not None


def bench_generic_hom_same_instance(benchmark):
    source = parse_query(
        "Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f)"
    ).tableau().structure
    target = random_digraph_db(60, 400, seed=13)
    result = benchmark(lambda: find_homomorphism(source, target))
    assert result is not None


def bench_substrates_report(benchmark):
    def report():
        rows = []
        for nodes in (250, 500, 1000, 2000):
            db = path_heavy_db(nodes, seed=5)
            import time

            start = time.perf_counter()
            evaluate(ACYCLIC_QUERY, db, method="yannakakis")
            yann = time.perf_counter() - start
            start = time.perf_counter()
            evaluate(ACYCLIC_QUERY, db, method="naive")
            naive = time.perf_counter() - start
            rows.append(
                [nodes, db.total_tuples, f"{yann * 1e3:.1f}ms", f"{naive * 1e3:.1f}ms",
                 f"{naive / max(yann, 1e-9):.1f}x"]
            )
        return table(
            ["|dom|", "|D|", "yannakakis", "naive join", "ratio"], rows
        ) + "\n\nYannakakis stays near-linear; the naive plan's intermediate" \
            " results blow up with |D| (the |D|^O(|Q|) regime)."

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("substrates", "Substrate: evaluation strategies", body)


if __name__ == "__main__":
    print("run under pytest")
