"""EXP INTRO-EX — the introduction's worked examples, regenerated.

Q1():-E(x,y),E(y,z),E(z,x)  ->  trivial approximation E(x,x);
Q2 (two 3-paths, two cross edges)  ->  the path P4;
the ternary triangle variant  ->  a nontrivial acyclic approximation.
"""

from __future__ import annotations

from repro.core import AC, TW1, ApproximationConfig, all_approximations, is_approximation
from repro.cq import are_equivalent, loop_query, path_query
from repro.graphs.gadgets import (
    intro_q1,
    intro_q2,
    intro_ternary_approx,
    intro_ternary_q,
)
from paperfmt import table, write_report


def bench_q1_approximation(benchmark):
    results = benchmark(lambda: all_approximations(intro_q1(), TW1))
    assert len(results) == 1
    assert are_equivalent(results[0], loop_query())


def bench_q2_approximation(benchmark):
    results = benchmark.pedantic(
        lambda: all_approximations(intro_q2(), TW1), rounds=1, iterations=1
    )
    assert len(results) == 1
    assert are_equivalent(results[0], path_query(4))


def bench_ternary_identification(benchmark):
    config = ApproximationConfig(max_extra_atoms=0)
    ok = benchmark.pedantic(
        lambda: is_approximation(intro_ternary_q(), intro_ternary_approx(), AC, config),
        rounds=1,
        iterations=1,
    )
    assert ok


def bench_intro_examples_report(benchmark):
    def report():
        rows = [
            [
                "Q1 (triangle)",
                str(all_approximations(intro_q1(), TW1)[0]),
                "trivial loop (as stated)",
            ],
            [
                "Q2 (double chain)",
                str(all_approximations(intro_q2(), TW1)[0]),
                "path of length 4 (as stated)",
            ],
            [
                "ternary triangle",
                str(intro_ternary_approx()),
                "verified nontrivial acyclic approximation",
            ],
        ]
        return table(["query", "approximation", "paper"], rows)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("intro_examples", "Introduction: worked examples", body)


if __name__ == "__main__":
    print(str(all_approximations(intro_q1(), TW1)[0]))
    print(str(all_approximations(intro_q2(), TW1)[0]))
