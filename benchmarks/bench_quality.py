"""EXP QUALITY — empirical disagreement (the Section 7 quantitative angle).

The paper's approximations are qualitative; this bench measures, per
trichotomy case, how often the best acyclic approximation actually
disagrees with the query over random databases of varying density — the
measurement the conclusions propose studying.  Soundness (no wrong
answers) is asserted throughout.
"""

from __future__ import annotations

from repro.core import TW1, approximate, disagreement, random_database_stream
from repro.workloads import random_digraph_db
from repro.workloads.families import theorem_51_examples
from paperfmt import table, write_report

DENSITIES = ((14, 20), (14, 40), (14, 80))
SAMPLES = 10


def _measure() -> list[list[object]]:
    rows: list[list[object]] = []
    for name, query in theorem_51_examples().items():
        approx = approximate(query, TW1)
        for nodes, edges in DENSITIES:
            stream = random_database_stream(
                lambda seed, n=nodes, e=edges: random_digraph_db(n, e, seed=seed),
                SAMPLES,
            )
            report = disagreement(
                query, approx, stream, exact_method="treewidth"
            )
            assert report.is_sound
            rows.append(
                [
                    name,
                    f"{nodes}/{edges}",
                    f"{report.agreement_rate:.0%}",
                    report.missed_answers,
                    "yes" if report.is_sound else "NO",
                ]
            )
    return rows


HEADERS = ["trichotomy case", "|V|/|E|", "agreement", "missed", "sound"]


def bench_quality_measurement(benchmark):
    query = theorem_51_examples()["not_bipartite"]
    approx = approximate(query, TW1)
    stream = list(
        random_database_stream(lambda s: random_digraph_db(12, 30, seed=s), 5)
    )
    report = benchmark.pedantic(
        lambda: disagreement(query, approx, stream, exact_method="treewidth"),
        rounds=1,
        iterations=1,
    )
    assert report.is_sound


def bench_quality_report(benchmark):
    def report():
        rows = _measure()
        return table(HEADERS, rows) + (
            "\n\nDisagreements are always missed answers, never wrong ones."
            "\nThe trivial loop approximation (non-bipartite case) loses"
            " agreement as loop-free data gets denser — quantifying the"
            " paper's remark that it 'provides us with little information' —"
            " while the nontrivial approximations of the other two cases"
            " agree almost everywhere."
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("quality", "Section 7: empirical disagreement", body)


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
