"""EXP THM412-DP — identifying approximations (Theorem 4.12 machinery).

The decision problem "is Q' a C-approximation of Q?" is DP-complete; our
procedure does one containment check (NP) plus an exhaustive bounded witness
search (coNP).  The table shows the witness-search cost growing with the
Bell number of |vars(Q)| — the single-exponential profile the paper
predicts — together with verification of the appendix's building blocks
(incomparable path cores; the target tree's shape).
"""

from __future__ import annotations

import time

from repro.core import TW1, is_approximation
from repro.cq import loop_query, trivial_bipartite_query
from repro.graphs import digraph_hom_exists, is_acyclic_digraph
from repro.graphs.appendix_paths import appendix_p
from repro.graphs.appendix_qstar import qstar, t_gadget, target_tree
from repro.util import bell_number
from repro.workloads import cycle_with_chords
from paperfmt import table, write_report


def _identification_scaling() -> list[list[object]]:
    rows: list[list[object]] = []
    for size in (3, 4, 5, 6, 7):
        query = cycle_with_chords(size)
        candidate = loop_query() if size % 2 == 1 else trivial_bipartite_query()
        start = time.perf_counter()
        verdict = is_approximation(query, candidate, TW1)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"C{size}",
                size,
                bell_number(size),
                verdict,
                f"{elapsed * 1e3:.1f}ms",
            ]
        )
    return rows


HEADERS = ["query", "|vars|", "Bell(|vars|)", "is approx", "time"]


def bench_identification_c5(benchmark):
    query = cycle_with_chords(5)
    result = benchmark(lambda: is_approximation(query, loop_query(), TW1))
    assert result


def bench_identification_c7(benchmark):
    query = cycle_with_chords(7)
    result = benchmark.pedantic(
        lambda: is_approximation(query, loop_query(), TW1), rounds=1, iterations=1
    )
    assert result


def bench_appendix_gadget_checks(benchmark):
    def check():
        p1, p2 = appendix_p(1).structure, appendix_p(2).structure
        assert not digraph_hom_exists(p1, p2)
        tree = target_tree()
        assert is_acyclic_digraph(tree.structure)
        assert digraph_hom_exists(qstar().structure, t_gadget(1).structure)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def bench_identification_report(benchmark):
    def report():
        rows = _identification_scaling()
        tree = target_tree()
        gadget_rows = [
            ["target tree T acyclic, height 25", "yes"],
            ["|T| nodes", len(tree.structure.domain)],
            ["Q* -> T_1 (Claim 8.4 direction)",
             str(digraph_hom_exists(qstar().structure, t_gadget(1).structure))],
        ]
        return (
            "identification scaling (witness search ~ Bell(|vars|)):\n"
            + table(HEADERS, rows)
            + "\n\nappendix building blocks:\n"
            + table(["check", "value"], gadget_rows)
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("identification", "Theorem 4.12: identification problem", body)


if __name__ == "__main__":
    print(table(HEADERS, _identification_scaling()))
