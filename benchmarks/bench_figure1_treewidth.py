"""EXP F1-TW — Figure 1, rows 1–2: graph-based approximations.

Regenerates the summary table's claims for TW(1) and TW(k) empirically over
query families: approximations always exist, their size never exceeds |Q|
(Theorem 4.1: joins never increase), and they are found in single-exponential
time (the measured time column grows with Bell(|vars|), not with |D|).
"""

from __future__ import annotations

import time

from repro.core import TreewidthClass, all_approximations
from repro.cq import is_contained_in, minimize
from repro.workloads import cycle_with_chords, random_graph_query
from paperfmt import table, write_report


def _families() -> list[tuple[str, object]]:
    return [
        ("C3", cycle_with_chords(3)),
        ("C4", cycle_with_chords(4)),
        ("C5+chord", cycle_with_chords(5, [(0, 2)])),
        ("C6+chord", cycle_with_chords(6, [(0, 3)])),
        ("rand(6,8)", random_graph_query(6, 8, seed=1)),
        ("rand(7,9)", random_graph_query(7, 9, seed=2)),
    ]


def _measure(k: int) -> list[list[object]]:
    rows: list[list[object]] = []
    cls = TreewidthClass(k)
    for name, query in _families():
        start = time.perf_counter()
        results = all_approximations(query, cls)
        elapsed = time.perf_counter() - start
        sizes = [minimize(r).num_joins for r in results]
        sound = all(is_contained_in(r, query) for r in results)
        member = all(cls.contains_query(r) for r in results)
        rows.append(
            [
                name,
                query.num_variables,
                query.num_joins,
                len(results),
                max(sizes) if sizes else "-",
                "yes" if results else "NO",
                "yes" if sound and member else "NO",
                f"{elapsed * 1e3:.0f}ms",
            ]
        )
    return rows


HEADERS = [
    "query", "|vars|", "joins(Q)", "#approx", "max joins(Q')",
    "exists", "sound+in-class", "time",
]


def bench_figure1_tw1_family(benchmark):
    query = cycle_with_chords(5, [(0, 2)])
    results = benchmark(lambda: all_approximations(query, TreewidthClass(1)))
    assert results


def bench_figure1_tw2_family(benchmark):
    query = cycle_with_chords(5, [(0, 2)])
    results = benchmark(lambda: all_approximations(query, TreewidthClass(2)))
    assert results


def bench_figure1_report(benchmark):
    def report():
        body = []
        for k in (1, 2):
            rows = _measure(k)
            body.append(f"TW({k}) approximations (Theorem 4.1 / Corollary 4.3):")
            body.append(table(HEADERS, rows))
            body.append("")
            assert all(row[5] == "yes" and row[6] == "yes" for row in rows)
            # Size column of Figure 1: at most |Q| (joins never increase).
            assert all(
                row[4] == "-" or row[4] <= row[2] for row in rows
            )
        return "\n".join(body)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "figure1_treewidth",
        "Figure 1, rows 1-2: treewidth-k approximations",
        body,
    )


if __name__ == "__main__":
    for k in (1, 2):
        print(f"TW({k}):")
        print(table(HEADERS, _measure(k)))
        print()
