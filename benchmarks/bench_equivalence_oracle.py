"""EXP P411-EQUIV — Proposition 4.11: the approximation oracle decides
equivalence to TW(k).

Q ≡ some TW(k) query iff Q ⊆ A(Q) for any TW(k)-approximation A(Q);
testing the containment amounts to evaluating the bounded-treewidth query
A(Q) on T_Q.  The table exercises the reduction on queries with known
status; the approximation step dominates the cost (it is the NP-hard part).
"""

from __future__ import annotations

import time

from repro.core import is_equivalent_to_treewidth_k
from repro.cq import parse_query
from paperfmt import table, write_report

CASES = [
    ("acyclic path", "Q() :- E(x, y), E(y, z)", 1, True),
    ("bidirected C4", (
        "Q() :- E(a, b), E(b, a), E(b, c), E(c, b), E(c, d), E(d, c), "
        "E(d, a), E(a, d)"
    ), 1, True),
    ("triangle", "Q() :- E(x, y), E(y, z), E(z, x)", 1, False),
    ("triangle @k=2", "Q() :- E(x, y), E(y, z), E(z, x)", 2, True),
    ("directed C4", "Q() :- E(x, y), E(y, z), E(z, u), E(u, x)", 1, False),
    ("directed C5", "Q() :- E(a, b), E(b, c), E(c, d), E(d, e), E(e, a)", 2, True),
]


def _measure() -> list[list[object]]:
    rows: list[list[object]] = []
    for name, text, k, expected in CASES:
        query = parse_query(text)
        start = time.perf_counter()
        verdict = is_equivalent_to_treewidth_k(query, k)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                name,
                k,
                verdict,
                expected,
                "ok" if verdict == expected else "MISMATCH",
                f"{elapsed * 1e3:.0f}ms",
            ]
        )
    return rows


HEADERS = ["query", "k", "oracle", "expected", "status", "time"]


def bench_equivalence_triangle(benchmark):
    query = parse_query("Q() :- E(x, y), E(y, z), E(z, x)")
    result = benchmark(lambda: is_equivalent_to_treewidth_k(query, 1))
    assert result is False


def bench_equivalence_oracle_report(benchmark):
    def report():
        rows = _measure()
        assert all(row[4] == "ok" for row in rows)
        return table(HEADERS, rows)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "equivalence_oracle", "Proposition 4.11: equivalence via approximation", body
    )


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
