"""EXP THM58-510 — the colorability dichotomies (Theorems 5.8, 5.10, 5.11).

Over random Boolean graph CQs: the tableau is (k+1)-colorable iff the query
has a nontrivial TW(k)-approximation (Corollary 5.11), and non-colorability
forces loop subgoals into every approximation (Theorems 5.8/5.10).  The
table cross-validates the colorability predicate against exhaustive search
for k = 1, 2.
"""

from __future__ import annotations

from repro.core import (
    TreewidthClass,
    all_approximations,
    has_nontrivial_tw_approximation,
    is_trivial_approximation,
    tw_approximations_all_have_loops,
)
from repro.graphs import has_loop
from repro.workloads import random_graph_query
from paperfmt import table, write_report


def _measure(k: int, sample: int = 12) -> list[list[object]]:
    cls = TreewidthClass(k)
    rows: list[list[object]] = []
    for seed in range(sample):
        query = random_graph_query(5, 9, seed=300 + seed)
        colorable = has_nontrivial_tw_approximation(query, k)
        results = all_approximations(query, cls)
        nontrivial = any(not is_trivial_approximation(r) for r in results)
        loops_everywhere = all(
            has_loop(r.tableau().structure) for r in results
        )
        agrees = colorable == nontrivial
        assert tw_approximations_all_have_loops(query, k) == (not colorable)
        rows.append(
            [
                f"rand#{seed}",
                f"{k + 1}-colorable" if colorable else "not",
                "yes" if nontrivial else "no",
                "yes" if loops_everywhere else "no",
                "ok" if agrees else "MISMATCH",
            ]
        )
    assert all(row[4] == "ok" for row in rows)
    return rows


HEADERS = ["query", "tableau", "nontrivial approx", "all approx loop", "Cor 5.11"]


def bench_colorability_predicate(benchmark):
    query = random_graph_query(7, 12, seed=1)
    benchmark(lambda: has_nontrivial_tw_approximation(query, 2))


def bench_dichotomy_report(benchmark):
    def report():
        parts = []
        for k in (1, 2):
            parts.append(f"TW({k}) — dichotomy via {k + 1}-colorability:")
            parts.append(table(HEADERS, _measure(k)))
            parts.append("")
        return "\n".join(parts)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("dichotomy_tw", "Theorems 5.8/5.10, Corollary 5.11", body)


if __name__ == "__main__":
    for k in (1, 2):
        print(table(HEADERS, _measure(k)))
