"""EXP HOM-ENGINE — old-vs-new wall time for the homomorphism hot path.

Compares the indexed, memoizing :class:`~repro.homomorphism.engine.HomEngine`
against a faithful replica of the seed implementation (per-call linear
rescans, deep-copied domains at every branch, no memoization, no candidate
dedup) on the workloads the engine was built for:

* ``approximation_frontier`` on Figure-1-style graph-class queries — the
  Bell-number enumeration of Corollary 4.3, where the engine's canonical
  dedup shrinks the candidate stream and the ``hom_le`` memo absorbs the
  frontier's quadratic order churn;
* raw homomorphism search (find/count) on random structure pairs.

Writes the machine-readable ``BENCH_hom_engine.json`` at the repository root
so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Mapping

from repro.core import TW1, TreewidthClass, approximation_frontier
from repro.core.quotients import iter_quotient_tableaux
from repro.cq.tableau import Tableau, pin_for
from repro.homomorphism.engine import HomEngine
from repro.util.partitions import bell_number
from repro.workloads import cycle_with_chords, random_graph_query
from paperfmt import table, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hom_engine.json"

Element = Hashable


# --------------------------------------------------------------------------
# Legacy implementation: a faithful copy of the seed backtracker (v0), kept
# here so the benchmark keeps measuring the same baseline as the engine
# evolves.  Linear rescans of whole relations per support computation,
# deep-copied candidate domains at every branch, no caching of any kind.
# --------------------------------------------------------------------------


def _legacy_supports(row, target_rows, domains):
    out = []
    for candidate in target_rows:
        seen = {}
        for src, dst in zip(row, candidate):
            if dst not in domains[src]:
                break
            if seen.setdefault(src, dst) != dst:
                break
        else:
            out.append(candidate)
    return out


def _legacy_propagate(facts, target_rows, domains, queue, facts_of):
    while queue:
        fact_index = queue.pop()
        name, row = facts[fact_index]
        support = _legacy_supports(row, target_rows.get(name, ()), domains)
        if not support:
            return False
        for position, variable in enumerate(row):
            projected = {candidate[position] for candidate in support}
            if not domains[variable] <= projected:
                domains[variable] &= projected
                if not domains[variable]:
                    return False
                queue.update(facts_of.get(variable, ()))
    return True


def legacy_iter_homomorphisms(
    source,
    target,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> Iterator[dict]:
    facts = [(name, row) for name, row in source.facts()]
    target_rows = {name: tuple(rows) for name, rows in target.relations.items()}
    facts_of: dict[Element, list[int]] = {}
    for index, (_, row) in enumerate(facts):
        for value in set(row):
            facts_of.setdefault(value, []).append(index)

    domains: dict[Element, set[Element]] = {}
    for element in source.domain:
        if candidates is not None and element in candidates:
            domains[element] = set(candidates[element]) & set(target.domain)
        else:
            domains[element] = set(target.domain)
    if pin:
        for element, image in pin.items():
            if element not in domains:
                raise ValueError(f"pinned element {element!r} not in source domain")
            domains[element] &= {image}
    if any(not values for values in domains.values()):
        return
    if not _legacy_propagate(facts, target_rows, domains, set(range(len(facts))), facts_of):
        return

    order_hint = sorted(domains, key=repr)

    def search(domains):
        unassigned = [v for v in order_hint if len(domains[v]) > 1]
        if not unassigned:
            yield {v: next(iter(values)) for v, values in domains.items()}
            return
        variable = min(unassigned, key=lambda v: len(domains[v]))
        for value in sorted(domains[variable], key=repr):
            branched = {v: set(values) for v, values in domains.items()}
            branched[variable] = {value}
            queue = set(facts_of.get(variable, ()))
            if _legacy_propagate(facts, target_rows, branched, queue, facts_of):
                yield from search(branched)

    yield from search(domains)


def legacy_find_homomorphism(source, target, *, pin=None, candidates=None):
    for hom in legacy_iter_homomorphisms(source, target, pin=pin, candidates=candidates):
        return hom
    return None


def legacy_count_homomorphisms(source, target, *, pin=None, candidates=None):
    return sum(1 for _ in legacy_iter_homomorphisms(source, target, pin=pin, candidates=candidates))


def legacy_hom_le(source: Tableau, target: Tableau) -> bool:
    pin = pin_for(source, target)
    if pin is None:
        return False
    return legacy_find_homomorphism(source.structure, target.structure, pin=pin) is not None


def legacy_approximation_frontier(query, cls) -> list[Tableau]:
    """The seed frontier: raw (undeduplicated) candidate stream, fresh
    search for every order query."""
    frontier: list[Tableau] = []
    for candidate in iter_quotient_tableaux(query.tableau(), dedup=False):
        if not cls.contains_tableau(candidate):
            continue
        if any(legacy_hom_le(member, candidate) for member in frontier):
            continue
        frontier = [m for m in frontier if not legacy_hom_le(candidate, m)]
        frontier.append(candidate)
    return frontier


# --------------------------------------------------------------------------
# Workloads
# --------------------------------------------------------------------------


def frontier_workloads():
    # C7/TW1 is the headline: a 7-variable graph-class query where the
    # candidate stream shrinks 877 → 75 and the class checks follow suit.
    return [
        ("C5+chord/TW1", cycle_with_chords(5, [(0, 2)]), TreewidthClass(1)),
        ("C6+chord/TW1", cycle_with_chords(6, [(0, 3)]), TreewidthClass(1)),
        ("C7/TW1", cycle_with_chords(7), TreewidthClass(1)),
        ("C7/TW2", cycle_with_chords(7), TreewidthClass(2)),
        ("C7+chord/TW2", cycle_with_chords(7, [(0, 3)]), TreewidthClass(2)),
        ("rand(7,9)/TW1", random_graph_query(7, 9, seed=2), TreewidthClass(1)),
    ]


def search_workloads():
    pairs = []
    for seed in range(6):
        source = random_graph_query(6, 8, seed=seed).tableau().structure
        target = random_graph_query(5, 9, seed=seed + 50).tableau().structure
        pairs.append((f"rand {seed}", source, target))
    return pairs


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    """Median wall time of ``fn`` over ``repeats`` runs, plus its result."""
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _fresh_engine() -> HomEngine:
    # A private engine per measurement so no state leaks across workloads;
    # memo/index reuse *within* one frontier construction is the point.
    return HomEngine()


def run_frontier_comparison() -> list[dict]:
    results = []
    for name, query, cls in frontier_workloads():
        tableau = query.tableau()
        n = len(tableau.structure.domain)
        raw = bell_number(n)
        deduped = sum(1 for _ in iter_quotient_tableaux(tableau, dedup=True))

        legacy_s, legacy_frontier = _time(
            lambda q=query, c=cls: legacy_approximation_frontier(q, c)
        )

        def engine_run(q=query, c=cls):
            import repro.homomorphism.engine as engine_module

            saved = engine_module.DEFAULT_ENGINE
            engine_module.DEFAULT_ENGINE = _fresh_engine()
            try:
                return approximation_frontier(q, c)
            finally:
                engine_module.DEFAULT_ENGINE = saved

        engine_s, engine_frontier = _time(engine_run)
        assert len(legacy_frontier) == len(engine_frontier), name
        results.append(
            {
                "workload": f"frontier {name}",
                "variables": n,
                "candidates_raw": raw,
                "candidates_deduped": deduped,
                "frontier_size": len(engine_frontier),
                "legacy_s": round(legacy_s, 4),
                "engine_s": round(engine_s, 4),
                "speedup": round(legacy_s / engine_s, 2) if engine_s else float("inf"),
            }
        )
    return results


def run_search_comparison() -> list[dict]:
    results = []
    for name, source, target in search_workloads():
        legacy_s, legacy_count = _time(
            lambda s=source, t=target: legacy_count_homomorphisms(s, t), repeats=5
        )
        engine = _fresh_engine()
        engine_s, engine_count = _time(
            lambda s=source, t=target: engine.count_homomorphisms(s, t), repeats=5
        )
        assert legacy_count == engine_count, name
        results.append(
            {
                "workload": f"count {name}",
                "homs": engine_count,
                "legacy_s": round(legacy_s, 5),
                "engine_s": round(engine_s, 5),
                "speedup": round(legacy_s / engine_s, 2) if engine_s else float("inf"),
            }
        )
    return results


def run_all() -> dict:
    frontier = run_frontier_comparison()
    search = run_search_comparison()
    seven_var = [
        r for r in frontier if r["variables"] == 7 and r["workload"].startswith("frontier C7/")
    ]
    return {
        "benchmark": "hom_engine",
        "description": "seed (linear-scan, copying, uncached) vs HomEngine "
        "(indexed, trailing, memoized, canonical dedup)",
        "workloads": frontier + search,
        "headline": {
            "name": seven_var[0]["workload"] if seven_var else None,
            "speedup": seven_var[0]["speedup"] if seven_var else None,
            "target_speedup": 3.0,
        },
    }


def emit_json(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")


HEADERS = ["workload", "legacy", "engine", "speedup", "candidates"]


def _report_rows(payload: dict) -> list[list[object]]:
    rows = []
    for entry in payload["workloads"]:
        shrink = (
            f"{entry['candidates_raw']}→{entry['candidates_deduped']}"
            if "candidates_raw" in entry
            else "-"
        )
        rows.append(
            [
                entry["workload"],
                f"{entry['legacy_s'] * 1e3:.1f}ms",
                f"{entry['engine_s'] * 1e3:.1f}ms",
                f"{entry['speedup']:.1f}x",
                shrink,
            ]
        )
    return rows


def bench_hom_engine_frontier_7var(benchmark):
    query = cycle_with_chords(7)
    results = benchmark(lambda: approximation_frontier(query, TW1))
    assert results


def bench_hom_engine_report(benchmark):
    def report():
        payload = run_all()
        emit_json(payload)
        assert payload["headline"]["speedup"] >= payload["headline"]["target_speedup"], (
            "engine must be ≥3x faster than the seed on the 7-variable frontier"
        )
        return table(HEADERS, _report_rows(payload))

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "hom_engine",
        "Homomorphism engine: old-vs-new hot-path wall time",
        body,
    )


if __name__ == "__main__":
    payload = run_all()
    emit_json(payload)
    print(table(HEADERS, _report_rows(payload)))
    headline = payload["headline"]
    print(
        f"\nheadline: {headline['name']} speedup {headline['speedup']}x "
        f"(target ≥ {headline['target_speedup']}x); wrote {JSON_PATH.name}"
    )
