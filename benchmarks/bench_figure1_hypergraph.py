"""EXP F1-HG — Figure 1, rows 3–4: hypergraph-based approximations.

Acyclic and HTW(k) approximations over higher-arity queries: existence,
polynomial size (Theorem 6.1 allows growth — Example 6.6's third
approximation has more atoms than Q), and single-exponential search time.
"""

from __future__ import annotations

import time

from repro.core import AC, ApproximationConfig, HypertreeClass, all_approximations
from repro.cq import is_contained_in, parse_query
from repro.workloads import random_cq
from paperfmt import table, write_report

NO_FRESH = ApproximationConfig(max_extra_atoms=1, allow_fresh=False)
QUOTIENTS = ApproximationConfig(max_extra_atoms=0)


def _families() -> list[tuple[str, object, ApproximationConfig]]:
    return [
        ("ternary triangle", parse_query(
            "Q() :- R(x1, x2, x3), R(x3, x4, x5), R(x5, x6, x1)"
        ), NO_FRESH),
        ("intro ternary", parse_query(
            "Q() :- R(x, u, y), R(y, v, z), R(z, w, x)"
        ), QUOTIENTS),
        ("rand R3 (5v,4a)", random_cq({"R": 3}, 5, 4, seed=11), QUOTIENTS),
        ("rand R3+S2", random_cq({"R": 3, "S": 2}, 5, 4, seed=12), QUOTIENTS),
    ]


def _measure(cls, label: str) -> list[list[object]]:
    rows: list[list[object]] = []
    for name, query, config in _families():
        start = time.perf_counter()
        results = all_approximations(query, cls, config)
        elapsed = time.perf_counter() - start
        sound = all(is_contained_in(r, query) for r in results)
        sizes = [r.num_atoms for r in results]
        rows.append(
            [
                name,
                query.num_variables,
                query.num_atoms,
                len(results),
                f"{min(sizes)}..{max(sizes)}" if sizes else "-",
                "yes" if results else "NO",
                "yes" if sound else "NO",
                f"{elapsed * 1e3:.0f}ms",
            ]
        )
    return rows


HEADERS = [
    "query", "|vars|", "atoms(Q)", "#approx", "atoms(Q')", "exists", "sound", "time",
]


def bench_acyclic_approximation(benchmark):
    query = parse_query("Q() :- R(x, u, y), R(y, v, z), R(z, w, x)")
    results = benchmark.pedantic(
        lambda: all_approximations(query, AC, QUOTIENTS), rounds=1, iterations=1
    )
    assert results


def bench_htw2_membership_shortcut(benchmark):
    query = parse_query("Q() :- R(x1, x2, x3), R(x3, x4, x5), R(x5, x6, x1)")
    results = benchmark(
        lambda: all_approximations(query, HypertreeClass(2), QUOTIENTS)
    )
    assert len(results) == 1  # the query itself: it has hypertree width 2


def bench_figure1_hypergraph_report(benchmark):
    def report():
        parts = []
        for cls, label in ((AC, "AC (acyclic)"), (HypertreeClass(2), "HTW(2)")):
            rows = _measure(cls, label)
            assert all(row[5] == "yes" and row[6] == "yes" for row in rows)
            parts.append(f"{label} approximations (Theorem 6.1 / Cor 6.3, 6.5):")
            parts.append(table(HEADERS, rows))
            parts.append("")
        parts.append(
            "Sizes may exceed atoms(Q) — polynomial per Claim 6.2 (cf. the"
            " extension atom of Example 6.6's third approximation)."
        )
        return "\n".join(parts)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report(
        "figure1_hypergraph",
        "Figure 1, rows 3-4: acyclic / hypertree-width approximations",
        body,
    )


if __name__ == "__main__":
    print(table(HEADERS, _measure(AC, "AC")))
