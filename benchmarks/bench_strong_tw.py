"""EXP SEC53-ARITY — strong treewidth approximations (Section 5.3).

Beyond graphs, maximum-treewidth queries admit rich TW(1)-approximations:
Proposition 5.13's construction (for every potential approximation and every
n > m), Proposition 5.14's same-join pairs, and Proposition 5.15's
almost-triangle.  The bench regenerates and verifies each construction.
"""

from __future__ import annotations

from repro.core import (
    ApproximationConfig,
    graph_is_complete,
    is_almost_triangle,
    is_strong_tw_approximation,
    prop_513_query,
    prop_514_pair,
    prop_515_pair,
)
from repro.cq import is_contained_in, is_minimal, parse_query
from repro.hypergraphs import treewidth_of_query
from paperfmt import table, write_report

CONFIG = ApproximationConfig(exact_limit=8, max_extra_atoms=0)


def _measure() -> list[list[object]]:
    rows: list[list[object]] = []

    q_prime = parse_query("Q() :- R(x, y, y), R(y, x, x)")
    for n in (4, 5):
        q = prop_513_query(q_prime, n)
        rows.append(
            [
                f"Prop 5.13 (n={n})",
                q.num_variables,
                q.num_atoms,
                str(graph_is_complete(q)),
                str(is_contained_in(q_prime, q)),
            ]
        )

    q14, a14 = prop_514_pair(3)
    rows.append(
        [
            "Prop 5.14 (k=3)",
            q14.num_variables,
            f"{q14.num_atoms} (= {a14.num_atoms} in Q')",
            str(graph_is_complete(q14)),
            str(is_contained_in(a14, q14)),
        ]
    )

    q15, a15 = prop_515_pair()
    rows.append(
        [
            "Prop 5.15",
            q15.num_variables,
            f"{q15.num_atoms} (= {a15.num_atoms} in Q')",
            str(graph_is_complete(q15)),
            str(is_contained_in(a15, q15)),
        ]
    )
    return rows


HEADERS = ["construction", "|vars(Q)|", "atoms", "G(Q) complete", "Q' ⊆ Q"]


def bench_prop_513_construction(benchmark):
    q_prime = parse_query("Q() :- R(x, y, y), R(y, x, x)")
    q = benchmark(lambda: prop_513_query(q_prime, 5))
    assert graph_is_complete(q)


def bench_prop_515_verification(benchmark):
    q, a = prop_515_pair()
    result = benchmark.pedantic(
        lambda: is_strong_tw_approximation(q, a, CONFIG), rounds=1, iterations=1
    )
    assert result


def bench_strong_tw_report(benchmark):
    def report():
        rows = _measure()
        assert all(row[3] == "True" and row[4] == "True" for row in rows)
        q15, a15 = prop_515_pair()
        extras = [
            ["Prop 5.15 tableau is an almost-triangle",
             str(is_almost_triangle(q15.tableau().structure))],
            ["Prop 5.15 Q has maximum treewidth 3",
             str(treewidth_of_query(q15) == 3)],
            ["Prop 5.15 both queries minimized",
             str(is_minimal(q15) and is_minimal(a15))],
            ["Prop 5.15 Q' is a strong TW approximation",
             str(is_strong_tw_approximation(q15, a15, CONFIG))],
        ]
        assert all(row[1] == "True" for row in extras)
        return table(HEADERS, rows) + "\n\n" + table(["claim", "verified"], extras)

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("strong_tw", "Section 5.3: strong treewidth approximations", body)


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
