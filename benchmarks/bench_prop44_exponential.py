"""EXP P44-EXP — Proposition 4.4 / Figures 3–5: exponentially many approximations.

Builds the gadget family (P1/P2, D, D_ac, D_bd, G_n, G_n^s), verifies the
structural claims the proof rests on (incomparable cores, Claim 4.7's
pairwise incomparability of the G_n^s), and reports |TW(1)-APPR_min(Q_n)|
>= 2^n via the witness family.
"""

from __future__ import annotations

import itertools
import time

from repro.graphs import digraph_hom_exists, is_acyclic_digraph
from repro.graphs.gadgets import (
    gadget_d_ac,
    gadget_d_bd,
    gadget_g_n,
    gadget_g_n_s,
    paper_p1,
    paper_p2,
)
from repro.homomorphism import is_core
from paperfmt import table, write_report


def _strings(n: int) -> list[str]:
    return ["".join(bits) for bits in itertools.product("VH", repeat=n)]


def _measure(max_n: int = 2) -> list[list[object]]:
    rows: list[list[object]] = []
    for n in range(1, max_n + 1):
        g_n = gadget_g_n(n)
        start = time.perf_counter()
        quotients = {s: gadget_g_n_s(s) for s in _strings(n)}
        all_acyclic = all(is_acyclic_digraph(g) for g in quotients.values())
        all_above = all(
            digraph_hom_exists(g_n, g) for g in quotients.values()
        )
        incomparable = all(
            not digraph_hom_exists(quotients[s], quotients[t])
            for s, t in itertools.permutations(quotients, 2)
        )
        elapsed = time.perf_counter() - start
        rows.append(
            [
                n,
                len(g_n.domain),
                g_n.total_tuples,
                2 ** n,
                "yes" if all_acyclic and all_above else "NO",
                "yes" if incomparable else "NO",
                f"{elapsed:.1f}s",
            ]
        )
    return rows


HEADERS = [
    "n", "|G_n| nodes", "edges", "2^n witnesses", "acyclic+above", "pairwise incomparable", "time",
]


def bench_gadget_construction(benchmark):
    benchmark(lambda: gadget_g_n_s("VH"))


def bench_incomparability_check(benchmark):
    gv, gh = gadget_g_n_s("V"), gadget_g_n_s("H")
    result = benchmark.pedantic(
        lambda: digraph_hom_exists(gv, gh), rounds=1, iterations=1
    )
    assert result is False


def bench_prop44_report(benchmark):
    def report():
        base = [
            ["P1 vs P2 incomparable cores",
             str(is_core(paper_p1()) and is_core(paper_p2())
                 and not digraph_hom_exists(paper_p1(), paper_p2())
                 and not digraph_hom_exists(paper_p2(), paper_p1()))],
            ["D_ac, D_bd incomparable cores (Claim 4.6)",
             str(is_core(gadget_d_ac()) and is_core(gadget_d_bd())
                 and not digraph_hom_exists(gadget_d_ac(), gadget_d_bd())
                 and not digraph_hom_exists(gadget_d_bd(), gadget_d_ac()))],
        ]
        rows = _measure()
        assert all(row[4] == "yes" and row[5] == "yes" for row in rows)
        return (
            table(["claim", "verified"], base)
            + "\n\n"
            + table(HEADERS, rows)
            + "\n\neach G_n^s is an acyclic quotient of G_n and the 2^n of"
            "\nthem are pairwise incomparable cores, so"
            " |TW(1)-APPR_min(Q_n)| >= 2^n (Claim 4.9)."
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("prop44_exponential", "Proposition 4.4 / Figures 3-5", body)


if __name__ == "__main__":
    print(table(HEADERS, _measure()))
