"""EXP EX57-66 — Examples 5.7 and 6.6 regenerated.

Example 5.7: the Q2-shaped tableau has the path P4 as its unique acyclic
approximation, and P4 tightly approximates Q2.  Example 6.6: the ternary
query has exactly three non-equivalent acyclic approximations with
fewer/equal/more joins than Q.
"""

from __future__ import annotations

from repro.core import AC, TW1, ApproximationConfig, all_approximations
from repro.cq import are_equivalent, minimize, path_query
from repro.graphs.gadgets import intro_q2
from repro.workloads.families import example_66_approximations, example_66_query
from paperfmt import table, write_report

NO_FRESH = ApproximationConfig(max_extra_atoms=1, allow_fresh=False)


def bench_example_57(benchmark):
    results = benchmark.pedantic(
        lambda: all_approximations(intro_q2(), TW1), rounds=1, iterations=1
    )
    assert len(results) == 1 and are_equivalent(results[0], path_query(4))


def bench_example_66(benchmark):
    query = example_66_query()
    results = benchmark.pedantic(
        lambda: all_approximations(query, AC, NO_FRESH), rounds=1, iterations=1
    )
    assert len(results) == 3


def bench_worked_examples_report(benchmark):
    def report():
        q2_results = all_approximations(intro_q2(), TW1)
        rows = [
            ["Example 5.7 (Q2)", "unique approximation",
             str(len(q2_results) == 1)],
            ["Example 5.7 (Q2)", "equals path P4",
             str(are_equivalent(q2_results[0], path_query(4)))],
        ]
        query = example_66_query()
        results = all_approximations(query, AC, NO_FRESH)
        listed = example_66_approximations()
        rows.append(["Example 6.6", "exactly three approximations",
                     str(len(results) == 3)])
        for index, expected in enumerate(listed, start=1):
            rows.append(
                [
                    "Example 6.6",
                    f"Q'{index} found (joins {expected.num_joins} vs {query.num_joins})",
                    str(any(are_equivalent(r, expected) for r in results)),
                ]
            )
        assert all(row[2] == "True" for row in rows)
        joins = sorted(minimize(r).num_joins for r in results)
        return (
            table(["example", "claim", "verified"], rows)
            + f"\n\njoin counts of the three approximations: {joins} "
            f"(paper: fewer / equal / more than Q's {query.num_joins})"
        )

    body = benchmark.pedantic(report, rounds=1, iterations=1)
    write_report("worked_examples", "Examples 5.7 and 6.6", body)


if __name__ == "__main__":
    print("see pytest run")
