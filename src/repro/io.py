"""JSON (de)serialization for structures and queries.

Databases travel as ``{"relations": {"E": [[1, 2], ...]}, "domain": [...]}``
and queries in the paper's rule notation.  Used by the CLI and handy for
saving workloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure


def structure_to_dict(structure: Structure) -> dict[str, Any]:
    """A JSON-ready representation of a structure."""
    return {
        "relations": {
            name: sorted((list(row) for row in rows), key=repr)
            for name, rows in structure.relations.items()
        },
        "domain": sorted(structure.domain, key=repr),
    }


def structure_from_dict(data: dict[str, Any]) -> Structure:
    """Rebuild a structure from :func:`structure_to_dict` output."""
    if "relations" not in data:
        raise ValueError('expected a "relations" key')
    relations = {
        name: [tuple(row) for row in rows]
        for name, rows in data["relations"].items()
    }
    return Structure(relations, domain=data.get("domain", ()))


def dump_structure(structure: Structure, path: str | Path) -> None:
    Path(path).write_text(json.dumps(structure_to_dict(structure), indent=2))


def load_structure(path: str | Path) -> Structure:
    return structure_from_dict(json.loads(Path(path).read_text()))


def query_to_text(query: ConjunctiveQuery) -> str:
    return str(query)


def query_from_text(text: str) -> ConjunctiveQuery:
    return parse_query(text)


def dump_query(query: ConjunctiveQuery, path: str | Path) -> None:
    Path(path).write_text(str(query) + "\n")


def load_query(path: str | Path) -> ConjunctiveQuery:
    return parse_query(Path(path).read_text())
