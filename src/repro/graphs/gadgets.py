"""Gadget constructions from Sections 4 and 5 of the paper.

* Proposition 4.4 (Figures 3–5): oriented paths ``P1 = 001000`` and
  ``P2 = 000100`` are incomparable cores; the digraph ``D`` combines them
  around a 4-node core; ``D_ac``/``D_bd`` identify opposite corners; ``G_n``
  chains ``n`` copies of ``D``; and for every ``s ∈ {V,H}^n`` the digraph
  ``G_n^s`` chooses one identification per copy.  The queries ``Q_n`` (tableau
  ``G_n``) then have at least ``2^n`` non-equivalent minimized
  TW(1)-approximations ``Q_n^s``.

* Proposition 5.6: the family ``G_k`` (two directed k-paths with shifted
  cross edges) whose tight acyclic approximation is the path ``P_{k+1}``.

* The worked examples of the introduction and Example 5.7.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.graphs.digraph import add_edges, digraph, merge_nodes
from repro.graphs.oriented_paths import oriented_path

#: The two incomparable oriented-path cores of Proposition 4.4.
P1_SPEC = "001000"
P2_SPEC = "000100"


def paper_p1(prefix: str = "p1_") -> Structure:
    return oriented_path(P1_SPEC, prefix=prefix).structure


def paper_p2(prefix: str = "p2_") -> Structure:
    return oriented_path(P2_SPEC, prefix=prefix).structure


def _attach_path(
    g: Structure, spec: str, *, at, end: str, prefix: str
) -> Structure:
    """Attach a fresh oriented path to ``g``, gluing one endpoint onto ``at``.

    ``end`` is ``"initial"`` or ``"terminal"`` — the endpoint identified with
    the existing node ``at``.
    """
    path = oriented_path(spec, prefix=prefix)
    glue = path.initial if end == "initial" else path.terminal
    glued = path.structure.rename({glue: at})
    return g.union(glued)


def gadget_d(tag: str = "") -> Structure:
    """The digraph ``D`` of Figure 3.

    Core 4 nodes ``a, b, c, d`` with edges ``(a,b), (a,d), (c,b), (c,d)``;
    copies of ``P1``/``P2`` attach by their initial nodes at ``b``/``d`` and
    by their terminal nodes at ``a``/``c``.
    """
    a, b, c, d = f"a{tag}", f"b{tag}", f"c{tag}", f"d{tag}"
    g = digraph([(a, b), (a, d), (c, b), (c, d)])
    g = _attach_path(g, P1_SPEC, at=b, end="initial", prefix=f"bp1{tag}_")
    g = _attach_path(g, P2_SPEC, at=d, end="initial", prefix=f"dp2{tag}_")
    g = _attach_path(g, P1_SPEC, at=a, end="terminal", prefix=f"ap1{tag}_")
    g = _attach_path(g, P2_SPEC, at=c, end="terminal", prefix=f"cp2{tag}_")
    return g


def gadget_d_ac(tag: str = "") -> Structure:
    """``D_ac``: the digraph ``D`` with ``a`` and ``c`` identified (Fig. 4)."""
    return merge_nodes(gadget_d(tag), f"a{tag}", f"c{tag}")


def gadget_d_bd(tag: str = "") -> Structure:
    """``D_bd``: the digraph ``D`` with ``b`` and ``d`` identified (Fig. 4)."""
    return merge_nodes(gadget_d(tag), f"b{tag}", f"d{tag}")


def _linking_endpoints(tag: str) -> tuple[str, str]:
    """The two nodes of a ``D``-copy used to chain copies in ``G_n``.

    The link goes from the *terminal node of the copy of P2 which starts at
    d* (node ``dp2{tag}_6``) of copy ``i`` to the *initial node of the copy
    of P1 which ends at a* (node ``ap1{tag}_0``) of copy ``i+1``.
    """
    return f"dp2{tag}_6", f"ap1{tag}_0"


def gadget_g_n(n: int) -> Structure:
    """``G_n`` of Figure 5: ``n`` chained disjoint copies of ``D``."""
    if n < 1:
        raise ValueError("n must be at least 1")
    g = gadget_d("_0")
    for i in range(1, n):
        g = g.union(gadget_d(f"_{i}"))
    links = []
    for i in range(n - 1):
        out_node, _ = _linking_endpoints(f"_{i}")
        _, in_node = _linking_endpoints(f"_{i + 1}")
        links.append((out_node, in_node))
    return add_edges(g, links)


def gadget_g_n_s(s: str) -> Structure:
    """``G_n^s`` for ``s ∈ {V, H}^n``: per-copy identification of ``D``.

    ``s_i = V`` identifies ``a`` with ``c`` (vertical fold, giving ``D_ac``)
    and ``s_i = H`` identifies ``b`` with ``d`` (horizontal fold, ``D_bd``).
    """
    if not s or any(ch not in "VH" for ch in s):
        raise ValueError(f"s must be a non-empty string over V/H, got {s!r}")
    g = gadget_g_n(len(s))
    for i, choice in enumerate(s):
        tag = f"_{i}"
        if choice == "V":
            g = merge_nodes(g, f"a{tag}", f"c{tag}")
        else:
            g = merge_nodes(g, f"b{tag}", f"d{tag}")
    return g


def q_n(n: int) -> ConjunctiveQuery:
    """The Boolean CQ ``Q_n`` whose tableau is ``G_n``."""
    return ConjunctiveQuery.from_tableau(Tableau(gadget_g_n(n)))


def q_n_s(s: str) -> ConjunctiveQuery:
    """The treewidth-1 CQ ``Q_n^s`` whose tableau is ``G_n^s``."""
    return ConjunctiveQuery.from_tableau(Tableau(gadget_g_n_s(s)))


# ----------------------------------------------------------- Proposition 5.6


def tight_g_k(k: int) -> Structure:
    """The digraph ``G_k`` of Proposition 5.6.

    Two disjoint directed paths ``x_0 → ... → x_k`` and ``y_0 → ... → y_k``
    plus the cross edges ``(x_i, y_{i+2})`` for ``0 ≤ i ≤ k-2``.  For
    ``k ≥ 3``, ``G_k → P_{k+1}`` and nothing lies strictly between them.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    edge_list = [(f"x{i}", f"x{i + 1}") for i in range(k)]
    edge_list += [(f"y{i}", f"y{i + 1}") for i in range(k)]
    edge_list += [(f"x{i}", f"y{i + 2}") for i in range(k - 1)]
    return digraph(edge_list)


# ------------------------------------------------- Introduction/Example 5.7


def intro_q1() -> ConjunctiveQuery:
    """``Q1() :- E(x, y), E(y, z), E(z, x)`` — only trivially approximable."""
    from repro.cq.parser import parse_query

    return parse_query("Q() :- E(x, y), E(y, z), E(z, x)")


def intro_q2() -> ConjunctiveQuery:
    """``Q2`` of the introduction: two 3-paths joined by two cross edges.

    ``Q2() :- P3(x,y,z,u), P3(x',y',z',u'), E(x,z'), E(y,u')``; its tableau
    is bipartite and balanced and it has the nontrivial acyclic approximation
    ``Q'() :- P4(x', x, y, z, u)`` (a path of length 4).
    """
    from repro.cq.parser import parse_query

    return parse_query(
        "Q() :- E(x, y), E(y, z), E(z, u), "
        "E(x', y'), E(y', z'), E(z', u'), E(x, z'), E(y, u')"
    )


def intro_ternary_q() -> ConjunctiveQuery:
    """The ternary variant of ``Q1``: ``R(x,u,y), R(y,v,z), R(z,w,x)``."""
    from repro.cq.parser import parse_query

    return parse_query("Q() :- R(x, u, y), R(y, v, z), R(z, w, x)")


def intro_ternary_approx() -> ConjunctiveQuery:
    """A nontrivial acyclic approximation of :func:`intro_ternary_q`."""
    from repro.cq.parser import parse_query

    return parse_query("Q() :- R(x, u, y), R(y, v, u), R(u, w, x)")


def example_57_second() -> Structure:
    """The second digraph of Example 5.7 — exactly ``T_{Q2}``."""
    return intro_q2().tableau().structure
