"""The gadgets ``Q*``, ``T_1..T_5``, ``T_ij``, ``T_ijk`` and ``T`` (appendix).

``Q*`` (Figure 7) is a balanced 8-cycle ``a_1..a_8`` (orientation 01010101)
with one spoke ``P_i`` per rim node — odd rim nodes receive the terminal
node of their spoke, even ones the initial node — plus an entry node ``x``
(edge into the ``P_1`` spoke) and an exit node ``y`` (edge out of the
``P_8`` spoke).  It is balanced of height 25; ``x``/``y`` are its unique
level-0/level-25 nodes.

``T_1..T_4`` (Figures 9, 10) identify opposite thirds of the rim; ``T_5``
(Figure 11) is a path-shaped gadget with two ``P_9`` spokes.  Claim 8.4:
each ``T_i`` is an acyclic approximation of ``Q*``.

``T`` (Figure 14) glues ``T_i · T_5⁻¹`` for ``i = 1..4`` at a common root
``v``; its level-25 nodes are the four *tips* ``t_1..t_4`` (the colors of
the Exact-Four-Colorability reduction) and its other level-0 nodes are
``u_1..u_4``.

``T_ij``/``T_ijk`` (Claims 8.5/8.6) are the path-shaped *blocks* that map
into exactly the rails their index set names; they are the alphabet from
which the choosers of the reduction are assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.cq.structure import Structure
from repro.graphs.appendix_paths import (
    appendix_p,
    appendix_p_pair,
    appendix_p_triple,
)
from repro.graphs.digraph import PointedDigraph, digraph, merge_nodes

Element = Hashable

#: Rim orientation of Q*: "0" = forward edge (a_i -> a_{i+1}).
_RIM = "01010101"


def _rim_edges(tag: str) -> list[tuple[str, str]]:
    names = [f"a{i}{tag}" for i in range(1, 9)]
    edges = []
    for index, ch in enumerate(_RIM):
        u, v = names[index], names[(index + 1) % 8]
        edges.append((u, v) if ch == "0" else (v, u))
    return edges


def qstar(tag: str = "") -> PointedDigraph:
    """``Q*`` with initial node ``x{tag}`` and terminal node ``y{tag}``."""
    g = digraph(_rim_edges(tag))
    for i in range(1, 9):
        spoke = appendix_p(i, prefix=f"s{i}{tag}_")
        rim = f"a{i}{tag}"
        glue = spoke.terminal if i % 2 == 1 else spoke.initial
        g = g.union(spoke.structure.rename({glue: rim}))
    x, y = f"x{tag}", f"y{tag}"
    p1_initial = f"s1{tag}_0"  # initial node of the P1 spoke
    p8_terminal = f"s8{tag}_{13}"  # terminal node of the P8 spoke
    g = g.add_facts([("E", (x, p1_initial)), ("E", (p8_terminal, y))])
    return PointedDigraph(g, x, y)


_T_IDENTIFICATIONS = {
    1: (("a1", "a7"), ("a2", "a6"), ("a3", "a5")),
    2: (("a8", "a6"), ("a1", "a5"), ("a2", "a4")),
    3: (("a7", "a5"), ("a8", "a4"), ("a1", "a3")),
    4: (("a6", "a4"), ("a7", "a3"), ("a8", "a2")),
}


def t_gadget(i: int, tag: str = "") -> PointedDigraph:
    """``T_i`` for ``1 ≤ i ≤ 4``: ``Q*`` with one rim folding applied."""
    if i == 5:
        return t5_gadget(tag)
    if i not in _T_IDENTIFICATIONS:
        raise ValueError("i must be in 1..5")
    pointed = qstar(tag)
    g = pointed.structure
    for keep, drop in _T_IDENTIFICATIONS[i]:
        g = merge_nodes(g, f"{keep}{tag}", f"{drop}{tag}")
    return PointedDigraph(g, pointed.initial, pointed.terminal)


def t5_gadget(tag: str = "") -> PointedDigraph:
    """``T_5`` (Figure 11): ``x5 → P1 → P8 → y5`` with two ``P_9`` spokes.

    One ``P_9`` copy's terminal is identified with the terminal of ``P_1``;
    the other's initial with the initial of ``P_8``.
    """
    p1 = appendix_p(1, prefix=f"f1{tag}_")
    p8 = appendix_p(8, prefix=f"f8{tag}_")
    g = p1.structure.union(p8.structure)
    x, y = f"x5{tag}", f"y5{tag}"
    g = g.add_facts(
        [
            ("E", (x, p1.initial)),
            ("E", (p1.terminal, p8.initial)),
            ("E", (p8.terminal, y)),
        ]
    )
    nine_a = appendix_p(9, prefix=f"n1{tag}_")
    g = g.union(nine_a.structure.rename({nine_a.terminal: p1.terminal}))
    nine_b = appendix_p(9, prefix=f"n2{tag}_")
    g = g.union(nine_b.structure.rename({nine_b.initial: p8.initial}))
    return PointedDigraph(g, x, y)


def _p_backbone(tag: str) -> tuple[Structure, str, str, str, str]:
    """The path ``P = p1 → P_1 → P_8 → p2`` shared by the blocks.

    Returns ``(structure, p1, p2, p1_terminal, p8_initial)`` where the last
    two are the junctions the extra spokes attach to.
    """
    p1 = appendix_p(1, prefix=f"b1{tag}_")
    p8 = appendix_p(8, prefix=f"b8{tag}_")
    g = p1.structure.union(p8.structure)
    start, end = f"p1{tag}", f"p2{tag}"
    g = g.add_facts(
        [
            ("E", (start, p1.initial)),
            ("E", (p1.terminal, p8.initial)),
            ("E", (p8.terminal, end)),
        ]
    )
    return g, start, end, p1.terminal, p8.initial


_PAIR_SPOKES = {
    frozenset({1, 5}): (7, 9),
    frozenset({2, 5}): (5, 9),
    frozenset({3, 5}): (3, 9),
    frozenset({1, 2}): (5, 7),
    frozenset({1, 3}): (3, 7),
    frozenset({2, 3}): (3, 5),
}

_TRIPLE_SPOKES = {
    frozenset({1, 2, 5}): ("top", (5, 7, 9)),
    frozenset({2, 4, 5}): ("bottom", (2, 6, 9)),
    frozenset({3, 4, 5}): ("bottom", (2, 4, 9)),
}


def t_block(indices: frozenset[int] | set[int], tag: str = "") -> PointedDigraph:
    """The block ``T_X``: maps into exactly the rails named by ``X``.

    Singletons give ``T_i`` themselves; pairs the ``T_ij`` of Claim 8.5
    (spoke ``P_ij`` hung at the top junction); triples the ``T_ijk`` of
    Claim 8.6 (``T_125``'s spoke at the top junction, ``T_245``/``T_345``'s
    at the bottom one).
    """
    indices = frozenset(indices)
    if len(indices) == 1:
        (i,) = indices
        return t_gadget(i, tag)
    if len(indices) == 2:
        spoke_pair = _PAIR_SPOKES.get(indices)
        if spoke_pair is None:
            raise ValueError(f"no T_ij block for {set(indices)!r}")
        g, start, end, top, _ = _p_backbone(tag)
        spoke = appendix_p_pair(*spoke_pair, prefix=f"sp{tag}_")
        g = g.union(spoke.structure.rename({spoke.terminal: top}))
        return PointedDigraph(g, start, end)
    if len(indices) == 3:
        entry = _TRIPLE_SPOKES.get(indices)
        if entry is None:
            raise ValueError(f"no T_ijk block for {set(indices)!r}")
        where, spec = entry
        g, start, end, top, bottom = _p_backbone(tag)
        spoke = appendix_p_triple(*spec, prefix=f"sp{tag}_")
        if where == "top":
            g = g.union(spoke.structure.rename({spoke.terminal: top}))
        else:
            g = g.union(spoke.structure.rename({spoke.initial: bottom}))
        return PointedDigraph(g, start, end)
    raise ValueError(f"no block for index set {set(indices)!r}")


@dataclass(frozen=True)
class TargetTree:
    """The digraph ``T`` with its named special nodes."""

    structure: Structure
    root: Element                      # v
    tips: Mapping[int, Element]        # t_1..t_4 (level 25)
    leaves: Mapping[int, Element]      # u_1..u_4 (level 0)


def target_tree(arms: tuple[int, ...] = (1, 2, 3, 4)) -> TargetTree:
    """``T`` of Figure 14 (or the subgraph ``Z`` when ``arms=(1,2,3)``).

    Each arm ``i`` is ``T_i · T_5⁻¹`` from the shared root ``v`` through the
    tip ``t_i`` to the leaf ``u_i``.
    """
    structure = Structure({"E": []}, vocabulary={"E": 2}, domain=["v"])
    tips: dict[int, Element] = {}
    leaves: dict[int, Element] = {}
    for i in arms:
        rail = t_gadget(i, tag=f"_r{i}")
        five = t5_gadget(tag=f"_r{i}")
        glued = rail.structure.rename({rail.initial: "v"})
        five_glued = five.structure.rename({five.terminal: rail.terminal})
        structure = structure.union(glued).union(five_glued)
        tips[i] = rail.terminal
        leaves[i] = five.initial
    return TargetTree(structure, "v", tips, leaves)
