"""Colorability of digraphs via homomorphisms into complete digraphs.

A loop-free digraph is ``k``-colorable iff it maps homomorphically into
``K_k↔`` (Sections 5.1–5.2: bipartiteness is 2-colorability, and the TW(k)
dichotomy of Theorem 5.10 is governed by ``(k+1)``-colorability).
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.cq.structure import Structure
from repro.graphs.digraph import complete_digraph, edges, has_loop, underlying_graph
from repro.homomorphism.search import find_homomorphism

Element = Hashable


def coloring(g: Structure, k: int) -> dict[Element, int] | None:
    """A proper ``k``-coloring of ``G^u``, or ``None``.

    Uses a greedy assignment first (fast path) and falls back to the
    homomorphism engine (search into ``K_k↔``) when greedy fails.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if has_loop(g):
        return None
    if not edges(g):
        return {v: 0 for v in g.domain}

    undirected = underlying_graph(g)
    greedy = nx.greedy_color(undirected, strategy="largest_first")
    if max(greedy.values(), default=0) < k:
        return greedy
    hom = find_homomorphism(g, complete_digraph(k))
    return hom if hom is None else {v: int(c) for v, c in hom.items()}


def is_k_colorable(g: Structure, k: int) -> bool:
    """Whether the underlying graph of ``g`` is ``k``-colorable."""
    return coloring(g, k) is not None


def is_bipartite_digraph(g: Structure) -> bool:
    """The paper's bipartiteness: ``G → K2↔`` (2-colorability)."""
    return is_k_colorable(g, 2)


def chromatic_number(g: Structure, *, max_k: int = 16) -> int:
    """The least ``k`` with ``G → K_k↔`` (searched up to ``max_k``)."""
    if has_loop(g):
        raise ValueError("digraphs with loops have no proper coloring")
    for k in range(1, max_k + 1):
        if is_k_colorable(g, k):
            return k
    raise ValueError(f"chromatic number exceeds max_k={max_k}")
