"""Oriented paths, written as strings over {0, 1}.

Following the paper (proof of Proposition 4.4): an oriented path
``P = (u_0, ..., u_n)`` has, for each ``i``, either the forward edge
``(u_i, u_{i+1})`` (written ``0``) or the backward edge ``(u_{i+1}, u_i)``
(written ``1``).  The *net length* is the number of forward edges minus the
number of backward edges.  ``P = 001`` is two forward edges followed by a
backward one.
"""

from __future__ import annotations

from repro.cq.structure import Structure
from repro.graphs.digraph import PointedDigraph, digraph


def oriented_path(spec: str, *, prefix: str = "p") -> PointedDigraph:
    """The oriented path described by a string over ``{0, 1}``.

    Nodes are ``f"{prefix}{i}"``; the initial node is ``p0`` and the terminal
    node is ``p{len(spec)}``.
    """
    if not spec or any(ch not in "01" for ch in spec):
        raise ValueError(f"spec must be a non-empty string over 0/1, got {spec!r}")
    edge_list = []
    for index, ch in enumerate(spec):
        u, v = f"{prefix}{index}", f"{prefix}{index + 1}"
        edge_list.append((u, v) if ch == "0" else (v, u))
    return PointedDigraph(digraph(edge_list), f"{prefix}0", f"{prefix}{len(spec)}")


def directed_path(length: int, *, prefix: str = "p") -> PointedDigraph:
    """``P_k``: the directed path of the given length (all forward edges)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        structure = Structure({"E": []}, vocabulary={"E": 2}, domain=[f"{prefix}0"])
        return PointedDigraph(structure, f"{prefix}0", f"{prefix}0")
    return oriented_path("0" * length, prefix=prefix)


def net_length(spec: str) -> int:
    """Forward edges minus backward edges of an oriented-path string."""
    return spec.count("0") - spec.count("1")


def path_concat_spec(*specs: str) -> str:
    """The string of the concatenation of oriented paths."""
    return "".join(specs)


def reverse_spec(spec: str) -> str:
    """The string of the reversed oriented path (walk it from the far end)."""
    return "".join("1" if ch == "0" else "0" for ch in reversed(spec))
