"""Oriented paths of the Theorem 4.12 appendix.

The DP-hardness reduction is built from the incomparable path cores

    P_i = 0^{i+1} 1 0^{11-i}          (1 ≤ i ≤ 9, net length 11)

and the "multi-target" paths of Claims 8.1 and 8.2:

    P_ij  = 0^{i+1} 1 0 0^{j-i} 1 0^{11-j}      → P_i, P_j only
    P_ijk = 0^{i+1} 1 0 0^{j-i} 1 0 0^{k-j} 1 0^{11-k}  → P_i, P_j, P_k only

(all have net length 11).  The claims are verified computationally in the
test suite.
"""

from __future__ import annotations

from repro.graphs.digraph import PointedDigraph
from repro.graphs.oriented_paths import oriented_path

NET = 11


def appendix_p_spec(i: int) -> str:
    if not 1 <= i <= 9:
        raise ValueError("i must be in 1..9")
    return "0" * (i + 1) + "1" + "0" * (NET - i)


def appendix_p(i: int, prefix: str | None = None) -> PointedDigraph:
    """The path ``P_i`` of the appendix."""
    return oriented_path(appendix_p_spec(i), prefix=prefix or f"P{i}_")


def appendix_p_pair_spec(i: int, j: int) -> str:
    if not 1 <= i < j <= 9:
        raise ValueError("need 1 ≤ i < j ≤ 9")
    return "0" * (i + 1) + "10" + "0" * (j - i) + "1" + "0" * (NET - j)


def appendix_p_pair(i: int, j: int, prefix: str | None = None) -> PointedDigraph:
    """The path ``P_ij`` of Claim 8.1 (maps into exactly ``P_i`` and ``P_j``)."""
    return oriented_path(appendix_p_pair_spec(i, j), prefix=prefix or f"P{i}{j}_")


def appendix_p_triple_spec(i: int, j: int, k: int) -> str:
    if not 1 <= i < j < k <= 9:
        raise ValueError("need 1 ≤ i < j < k ≤ 9")
    return (
        "0" * (i + 1)
        + "10"
        + "0" * (j - i)
        + "10"
        + "0" * (k - j)
        + "1"
        + "0" * (NET - k)
    )


def appendix_p_triple(i: int, j: int, k: int, prefix: str | None = None) -> PointedDigraph:
    """The path ``P_ijk`` of Claim 8.2 (maps into exactly ``P_i, P_j, P_k``)."""
    return oriented_path(
        appendix_p_triple_spec(i, j, k), prefix=prefix or f"P{i}{j}{k}_"
    )
