"""Balanced digraphs, levels and heights (Hell & Nešetřil, via Prop 4.4).

A digraph is *balanced* when every oriented cycle has net length 0.
Equivalently, a consistent potential exists: a function ``pot`` with
``pot(v) = pot(u) + 1`` for every edge ``(u, v)``.  For a balanced digraph
the paper defines the *level* of ``v`` as the maximum net length of an
oriented path ending in ``v`` and the *height* ``hg(G)`` as the maximum
level.

Lemma 4.5: a homomorphism between balanced digraphs of the same height
preserves levels.  More generally (and what we implement as a candidate
filter for the search engine): homomorphisms shift the levels of each weak
component upward by a constant ``c`` with
``0 ≤ c ≤ hg(H) - hg(component)``.  Claim 5.2: if ``G → H`` and ``H`` is
balanced, so is ``G`` — hence no homomorphism exists from an unbalanced
digraph into a balanced one.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cq.structure import Structure
from repro.graphs.digraph import edges, nodes, weak_components

Element = Hashable


def potentials(g: Structure) -> dict[Element, int] | None:
    """A consistent potential (edge = +1), or ``None`` if ``g`` is unbalanced.

    Computed by BFS over the underlying undirected graph, one weak component
    at a time; a conflict exhibits an unbalanced oriented cycle.
    """
    adjacency: dict[Element, list[tuple[Element, int]]] = {v: [] for v in nodes(g)}
    for u, v in edges(g):
        adjacency[u].append((v, +1))
        adjacency[v].append((u, -1))

    pot: dict[Element, int] = {}
    for start in sorted(nodes(g), key=repr):
        if start in pot:
            continue
        pot[start] = 0
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor, delta in adjacency[current]:
                expected = pot[current] + delta
                if neighbor not in pot:
                    pot[neighbor] = expected
                    frontier.append(neighbor)
                elif pot[neighbor] != expected:
                    return None
    return pot


def is_balanced(g: Structure) -> bool:
    """Whether every oriented cycle of ``g`` has net length zero."""
    return potentials(g) is not None


def levels(g: Structure) -> dict[Element, int] | None:
    """The paper's levels: potentials normalized to minimum 0 per component.

    Within one weak component any two nodes are joined by an oriented path,
    so the maximum net length of a path ending at ``v`` is
    ``pot(v) - min(pot over the component)``.
    """
    pot = potentials(g)
    if pot is None:
        return None
    result: dict[Element, int] = {}
    for component in weak_components(g):
        base = min(pot[v] for v in component)
        for v in component:
            result[v] = pot[v] - base
    return result


def height(g: Structure) -> int | None:
    """``hg(G)``: the maximum level, or ``None`` for unbalanced digraphs."""
    lvl = levels(g)
    if lvl is None:
        return None
    return max(lvl.values(), default=0)


def component_heights(g: Structure) -> dict[Element, int] | None:
    """Map each node to the height of its weak component."""
    lvl = levels(g)
    if lvl is None:
        return None
    result: dict[Element, int] = {}
    for component in weak_components(g):
        h = max(lvl[v] for v in component)
        for v in component:
            result[v] = h
    return result


def level_candidates(
    source: Structure, target: Structure
) -> dict[Element, set[Element]] | None:
    """Sound candidate sets for homomorphisms between balanced digraphs.

    Implements the level-shift consequence of Lemma 4.5: for ``v`` in a
    source component of height ``h``, any homomorphism satisfies
    ``level(h(v)) = level(v) + c`` with ``0 ≤ c ≤ hg(target) - h``.
    Returns ``None`` when either digraph is unbalanced (no filter).
    """
    source_levels = levels(source)
    target_levels = levels(target)
    if source_levels is None or target_levels is None:
        return None
    target_height = max(target_levels.values(), default=0)
    comp_heights = component_heights(source)
    assert comp_heights is not None

    by_level: dict[int, set[Element]] = {}
    for node, lvl in target_levels.items():
        by_level.setdefault(lvl, set()).add(node)

    candidates: dict[Element, set[Element]] = {}
    for node, lvl in source_levels.items():
        slack = target_height - comp_heights[node]
        allowed: set[Element] = set()
        for shift in range(max(slack, -1) + 1):
            allowed |= by_level.get(lvl + shift, set())
        candidates[node] = allowed
    return candidates


def digraph_homomorphism(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    use_level_filter: bool = True,
) -> dict[Element, Element] | None:
    """A digraph homomorphism, using balancedness to prune the search.

    Fast paths: an unbalanced digraph never maps into a balanced one
    (Claim 5.2), and between balanced digraphs the level filter restricts
    candidates before the backtracking search runs.
    """
    from repro.homomorphism.search import find_homomorphism

    candidates = None
    if use_level_filter:
        if is_balanced(target) and not is_balanced(source):
            return None
        candidates = level_candidates(source, target)
    return find_homomorphism(source, target, pin=pin, candidates=candidates)


def digraph_hom_exists(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    use_level_filter: bool = True,
) -> bool:
    return (
        digraph_homomorphism(
            source, target, pin=pin, use_level_filter=use_level_filter
        )
        is not None
    )


def iter_digraph_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    use_level_filter: bool = True,
) -> Iterable[dict[Element, Element]]:
    """Enumerate digraph homomorphisms with the balancedness prefilters."""
    from repro.homomorphism.search import iter_homomorphisms

    candidates = None
    if use_level_filter:
        if is_balanced(target) and not is_balanced(source):
            return
        candidates = level_candidates(source, target)
    yield from iter_homomorphisms(source, target, pin=pin, candidates=candidates)
