"""The Exact-Four-Colorability reduction of Theorem 4.12 (appendix).

Given an undirected graph ``G``, the digraph ``φ(G)`` replaces every edge
``{u, u'}`` with a fresh copy of the gadget ``T̃`` (``p ↦ u``, ``q ↦ u'``),
adds a node ``v0``, and hangs a copy of ``Q*`` (initial ``v0``, terminal
``u``) plus a copy of ``T_5`` (terminal ``u``) off every vertex ``u``.
Then ``G`` is 4-colorable but not 3-colorable iff ``φ(G) → T`` and no
homomorphism reaches a proper subgraph of ``T`` — and, by Proposition 8.14,
iff ``T`` is an acyclic approximation of ``φ(G)``.

The core-forcing variant ``φ̃(G)`` (Proposition 8.18) additionally attaches
one ``S_n^k`` gadget per vertex, built from the fan paths ``W_n^k``
(Claims 8.16, 8.17 — incomparable cores).

``S`` and ``S_n^k`` are reconstructed from Figures 23/24 under the textual
constraints of the appendix (the figure itself does not survive the text
dump): a backbone ``w' ← P6 ... P4/W_n^k ... P9 → w`` carrying the spokes
``P135`` and ``P8``; the reconstruction is validated by testing the claims
the proofs rely on (Claim 8.17, and the mapping facts used in
Proposition 8.18).
"""

from __future__ import annotations

import networkx as nx

from repro.cq.structure import Structure
from repro.graphs.appendix_choosers import t_tilde
from repro.graphs.appendix_paths import appendix_p, appendix_p_triple
from repro.graphs.digraph import PointedDigraph
from repro.graphs.oriented_paths import directed_path, oriented_path


def w_path(n: int, prefix: str = "w") -> PointedDigraph:
    """``W_n = 000 (10)^n 0`` (Figure 21), of height 4."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return oriented_path("000" + "10" * n + "0", prefix=prefix)


def w_path_marked(n: int, k: int, prefix: str = "w") -> Structure:
    """``W_n^k``: ``W_n`` plus an edge from a fresh node ``z`` into ``x_k``.

    ``x_k`` is the ``k``-th valley of the zigzag (level 2): node
    ``p_{2 + 2k}`` of the path — ``p3`` is the first peak, ``p4 = x_1`` the
    first valley (Figure 21).
    """
    if not 1 <= k <= n:
        raise ValueError("k must be in 1..n")
    path = w_path(n, prefix=prefix)
    x_k = f"{prefix}{2 + 2 * k}"
    z = f"{prefix}_z{k}"
    return path.structure.add_facts([("E", (z, x_k))])


def s_gadget(tag: str = "") -> tuple[Structure, dict[str, str]]:
    """The digraph ``S`` (Figure 23), with its named nodes.

    Reconstruction: a chain ``w' ←P6– j1 –P135→? ...`` satisfying the
    textual constraints: ``S`` contains a directed path of length 4 from
    ``z'`` to ``z``; spokes ``P6`` (into ``w'``), ``P135``, ``P3``, ``P8``
    and ``P9`` (into ``w``).  We build:

    * backbone junction ``j`` with spoke ``P6`` ending at ``w'`` and spoke
      ``P135`` ending at ``j``,
    * ``j –P3→ z'``, ``z' –P4→ z`` (the path replaced in ``S_n^k``),
    * ``z –P8→ j2``, ``j2 –P9→ w``.
    """
    names = {
        "w_prime": f"wp{tag}",
        "j": f"j{tag}",
        "z_prime": f"zp{tag}",
        "z": f"z{tag}",
        "j2": f"j2{tag}",
        "w": f"w{tag}",
    }
    p6 = appendix_p(6, prefix=f"sp6{tag}_")
    p135 = appendix_p_triple(1, 3, 5, prefix=f"sp135{tag}_")
    p3 = directed_path(3, prefix=f"sp3{tag}_")
    p4 = directed_path(4, prefix=f"sp4{tag}_")
    p8 = appendix_p(8, prefix=f"sp8{tag}_")
    p9 = directed_path(9, prefix=f"sp9{tag}_")

    g = p6.structure.rename({p6.initial: names["j"], p6.terminal: names["w_prime"]})
    g = g.union(p135.structure.rename({p135.terminal: names["j"]}))
    g = g.union(
        p3.structure.rename({p3.initial: names["j"], p3.terminal: names["z_prime"]})
    )
    g = g.union(
        p4.structure.rename({p4.initial: names["z_prime"], p4.terminal: names["z"]})
    )
    g = g.union(
        p8.structure.rename({p8.initial: names["z"], p8.terminal: names["j2"]})
    )
    g = g.union(
        p9.structure.rename({p9.initial: names["j2"], p9.terminal: names["w"]})
    )
    return g, names


def s_n_k(n: int, k: int, tag: str = "") -> tuple[Structure, dict[str, str]]:
    """``S_n^k``: ``S`` with the ``z' → z`` path replaced by ``W_n^k``.

    Per the text: "take S and replace the directed path of length 4 that
    starts at z' and ends at z by a copy of W_n^k, identifying a with z'
    and renaming e to z".
    """
    g, names = s_gadget(tag)
    # Remove the P4 backbone between z' and z (every fact touching a node of
    # the sp4-prefixed path copy), then graft W_n^k in its place.
    trimmed_rows = [
        row
        for row in g.tuples("E")
        if not any(str(value).startswith(f"sp4{tag}_") for value in row)
    ]
    trimmed = Structure({"E": trimmed_rows}, vocabulary={"E": 2})
    marked = w_path_marked(n, k, prefix=f"wk{tag}_")
    # a = initial node (level 0) of W_n^k; e = terminal node.
    w = w_path(n, prefix=f"wk{tag}_")
    glued = marked.rename({w.initial: names["z_prime"], w.terminal: names["z"]})
    return trimmed.union(glued), names


def phi(graph: nx.Graph) -> tuple[Structure, dict]:
    """``φ(G)``: the reduction digraph, plus a map of the special nodes.

    Vertices of ``G`` become nodes of ``φ(G)``; each edge gets a fresh
    ``T̃`` copy; every vertex receives a ``Q*`` (from ``v0``) and a ``T_5``.
    """
    from repro.graphs.appendix_qstar import qstar, t5_gadget

    structure = Structure({"E": []}, vocabulary={"E": 2}, domain=["v0"])
    vertex_nodes = {u: ("vertex", u) for u in graph.nodes}
    for index, (u, w) in enumerate(sorted(graph.edges, key=repr)):
        gadget = t_tilde(tag=f"_e{index}")
        structure = structure.union(
            gadget.structure.rename(
                {gadget.p: vertex_nodes[u], gadget.q: vertex_nodes[w]}
            )
        )
    for index, u in enumerate(sorted(graph.nodes, key=repr)):
        star = qstar(tag=f"_v{index}")
        structure = structure.union(
            star.structure.rename(
                {star.initial: "v0", star.terminal: vertex_nodes[u]}
            )
        )
        five = t5_gadget(tag=f"_v{index}")
        structure = structure.union(
            five.structure.rename({five.terminal: vertex_nodes[u]})
        )
    return structure, {"v0": "v0", "vertices": vertex_nodes}


def phi_tilde(graph: nx.Graph) -> tuple[Structure, dict]:
    """``φ̃(G)``: ``φ(G)`` with one ``S_n^k`` per vertex (Prop. 8.18)."""
    structure, names = phi(graph)
    vertices = sorted(names["vertices"], key=repr)
    n = len(vertices)
    for k, u in enumerate(vertices, start=1):
        gadget, gadget_names = s_n_k(n, k, tag=f"_s{k}")
        structure = structure.union(
            gadget.rename({gadget_names["z"]: names["vertices"][u]})
        )
    return structure, names
