"""Homomorphism dualities and gap pairs (Nešetřil–Tardif, used in Prop 5.6).

A *duality pair* ``(A, D)`` satisfies, for every digraph ``H``:
``H → D``  iff  ``A ↛ H``.  For the directed path ``P_n`` (``n`` edges) the
dual is the transitive tournament on ``n`` vertices — the Gallai–Roy
theorem: a digraph maps into the tournament iff it is a DAG with no
directed path of ``n`` edges, iff ``P_n`` does not map into it.

Nešetřil–Tardif [36] turn duality pairs into *gaps* in the homomorphism
order: nothing sits strictly between ``core(A × D)`` and ``A``.  With
``A = P_{k+1}`` and ``D = F_k`` (the tournament), the core of
``F_k × P_{k+1}`` is exactly the digraph ``G_k`` of Proposition 5.6 — the
paper "omits the tedious calculations"; :func:`nt_gap_pair` performs them,
and the tests check the result against the explicit ``G_k`` construction.
"""

from __future__ import annotations

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.graphs.oriented_paths import directed_path
from repro.homomorphism.cores import core
from repro.homomorphism.orders import hom_le
from repro.homomorphism.search import homomorphism_exists


def categorical_product(g: Structure, h: Structure) -> Structure:
    """The categorical (tensor) product of two digraphs.

    Vertices are pairs; ``((a,c),(b,d))`` is an edge iff ``(a,b)`` and
    ``(c,d)`` are.  The product is the meet in the homomorphism order:
    ``X → G × H`` iff ``X → G`` and ``X → H``.
    """
    edges = [
        ((a, c), (b, d))
        for a, b in g.tuples("E")
        for c, d in h.tuples("E")
    ]
    domain = [(x, y) for x in g.domain for y in h.domain]
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=domain)


def transitive_tournament(n: int) -> Structure:
    """The transitive tournament on ``n`` vertices ``0 < 1 < ... < n-1``."""
    if n < 1:
        raise ValueError("n must be positive")
    return Structure(
        {"E": [(i, j) for i in range(n) for j in range(n) if i < j]},
        vocabulary={"E": 2},
        domain=range(n),
    )


def path_dual(n: int) -> Structure:
    """The dual of the directed path ``P_n``: ``H → dual ⟺ P_n ↛ H``."""
    return transitive_tournament(n)


def holds_duality(a: Structure, d: Structure, h: Structure) -> bool:
    """Check the duality equation on one instance ``H``."""
    return homomorphism_exists(h, d) == (not homomorphism_exists(a, h))


def nt_gap_pair(k: int) -> tuple[Structure, Structure]:
    """The Nešetřil–Tardif gap below ``P_{k+1}``: ``(core(F_k × P_{k+1}), P_{k+1})``.

    Nothing sits strictly between the two in the homomorphism order; the
    lower element is (isomorphic to) the paper's ``G_k``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    path = directed_path(k + 1).structure
    dual = path_dual(k + 1)
    lower, _ = core(categorical_product(dual, path))
    return lower, path


def is_gap_violator(lower: Structure, upper: Structure, middle: Structure) -> bool:
    """Whether ``middle`` sits strictly between ``lower`` and ``upper``."""
    lower_t, upper_t, middle_t = Tableau(lower), Tableau(upper), Tableau(middle)
    return (
        hom_le(lower_t, middle_t)
        and not hom_le(middle_t, lower_t)
        and hom_le(middle_t, upper_t)
        and not hom_le(upper_t, middle_t)
    )
