"""Directed graphs as relational structures.

A digraph is a structure over the vocabulary ``{"E": 2}`` (Section 2).  This
module provides constructors and the graph-theoretic predicates the paper
uses: loops, weak connectivity, oriented cycles, and the paper's notion of an
*acyclic digraph* — one whose underlying undirected graph has no cycles of
length ≥ 3 (loops and 2-cycles are acyclic in the query sense, because the
hypergraph of ``E(x,y), E(y,x)`` is a single hyperedge).

Pointed digraphs (with initial and terminal nodes) support the concatenation
calculus of the appendix: ``G · H`` identifies ``G``'s terminal with ``H``'s
initial node, and ``G⁻¹`` swaps the two roles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.cq.structure import Structure

Element = Hashable

_COPY_COUNTER = itertools.count()


def digraph(edges: Iterable[tuple[Element, Element]], nodes: Iterable[Element] = ()) -> Structure:
    """A digraph structure from an edge list (plus optional isolated nodes)."""
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=nodes)


def edges(g: Structure) -> frozenset[tuple[Element, Element]]:
    return g.tuples("E")


def nodes(g: Structure) -> frozenset[Element]:
    return g.domain


def add_edges(g: Structure, new_edges: Iterable[tuple[Element, Element]]) -> Structure:
    return g.add_facts(("E", edge) for edge in new_edges)


def has_loop(g: Structure) -> bool:
    return any(u == v for u, v in edges(g))


def merge_nodes(g: Structure, keep: Element, drop: Element) -> Structure:
    """Identify ``drop`` with ``keep`` (the gadget-building primitive)."""
    return g.rename({drop: keep})


def underlying_graph(g: Structure) -> nx.Graph:
    """The underlying undirected simple graph ``G^u`` (loops kept as loops)."""
    graph = nx.Graph()
    graph.add_nodes_from(nodes(g))
    graph.add_edges_from((u, v) for u, v in edges(g))
    return graph


def to_networkx(g: Structure) -> nx.DiGraph:
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes(g))
    graph.add_edges_from(edges(g))
    return graph


def from_networkx(graph: nx.Graph | nx.DiGraph) -> Structure:
    """A digraph structure from networkx; undirected edges become 2-cycles."""
    if graph.is_directed():
        return digraph(graph.edges(), graph.nodes())
    both = [(u, v) for u, v in graph.edges()] + [
        (v, u) for u, v in graph.edges() if u != v
    ]
    return digraph(both, graph.nodes())


def symmetric_closure(g: Structure) -> Structure:
    """Add the reverse of every edge (the digraph ``G↔`` of an undirected G)."""
    return add_edges(g, [(v, u) for u, v in edges(g)])


def weak_components(g: Structure) -> list[frozenset[Element]]:
    """Connected components of the underlying undirected graph."""
    return [frozenset(c) for c in nx.connected_components(underlying_graph(g))]


def is_weakly_connected(g: Structure) -> bool:
    return len(weak_components(g)) <= 1


def is_acyclic_digraph(g: Structure) -> bool:
    """The paper's acyclicity for digraphs/tableaux over graphs.

    True iff the digraph has no *oriented cycle of length ≥ 3* — equivalently
    (Section 5.1) iff the simple graph obtained from ``G^u`` by dropping loops
    and merging antiparallel pairs is a forest.  Loops and 2-cycles are
    allowed: their query hypergraphs are acyclic.
    """
    simple = nx.Graph()
    simple.add_nodes_from(nodes(g))
    simple.add_edges_from((u, v) for u, v in edges(g) if u != v)
    return nx.is_forest(simple) if simple.number_of_nodes() else True


def is_oriented_forest(g: Structure) -> bool:
    """True iff ``G^u`` is a forest in the strict sense: no loops, no 2-cycles.

    This is the class of *acyclic digraphs* used for targets in the digraph
    reformulations (Corollary 4.10), where ``T`` must have a forest shape.
    """
    if has_loop(g):
        return False
    seen = set()
    for u, v in edges(g):
        if (v, u) in seen:
            return False
        seen.add((u, v))
    simple = nx.Graph()
    simple.add_nodes_from(nodes(g))
    simple.add_edges_from((u, v) for u, v in edges(g))
    return nx.is_forest(simple) if simple.number_of_nodes() else True


def complete_digraph(m: int) -> Structure:
    """``K_m↔``: the complete digraph with edges in both directions."""
    if m < 1:
        raise ValueError("m must be positive")
    return digraph(
        [(i, j) for i in range(m) for j in range(m) if i != j], nodes=range(m)
    )


def single_loop() -> Structure:
    """``K1*``: one node with a loop — the trivial tableau over graphs."""
    return digraph([("o", "o")])


@dataclass(frozen=True)
class PointedDigraph:
    """A digraph with distinguished initial and terminal nodes."""

    structure: Structure
    initial: Element
    terminal: Element

    def __post_init__(self) -> None:
        if self.initial not in self.structure.domain:
            raise ValueError("initial node not in digraph")
        if self.terminal not in self.structure.domain:
            raise ValueError("terminal node not in digraph")

    def reversed(self) -> "PointedDigraph":
        """``G⁻¹``: same digraph with initial/terminal roles swapped."""
        return PointedDigraph(self.structure, self.terminal, self.initial)

    def fresh_copy(self, tag: str | None = None) -> "PointedDigraph":
        """A disjoint copy with globally fresh node names."""
        tag = tag if tag is not None else f"c{next(_COPY_COUNTER)}"
        mapping = {value: (tag, value) for value in self.structure.domain}
        return PointedDigraph(
            self.structure.rename(mapping),
            mapping[self.initial],
            mapping[self.terminal],
        )

    def concat(self, other: "PointedDigraph") -> "PointedDigraph":
        """``self · other``: identify self's terminal with other's initial.

        Both operands are copied apart first, so concatenation never
        accidentally shares nodes.
        """
        left = self.fresh_copy()
        right = other.fresh_copy()
        glued = right.structure.rename({right.initial: left.terminal})
        return PointedDigraph(
            left.structure.union(glued),
            left.initial,
            left.terminal if right.initial == right.terminal else right.terminal,
        )

    def __mul__(self, other: "PointedDigraph") -> "PointedDigraph":
        return self.concat(other)


def concat_all(first: PointedDigraph, *rest: PointedDigraph) -> PointedDigraph:
    result = first
    for piece in rest:
        result = result.concat(piece)
    return result
