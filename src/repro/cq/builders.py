"""Builders for frequently used queries.

Includes the trivial queries of the paper: ``Q_trivial`` (all relations
looped on one variable, contained in every CQ; Section 4.1), the trivial
bipartite query ``Q_triv2`` with tableau ``K2↔``, and its generalization
``Q_triv(k+1)`` with tableau ``K(k+1)↔`` (Section 5.2).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.vocabulary import Vocabulary


def trivial_query(vocabulary: Vocabulary | Mapping[str, int]) -> ConjunctiveQuery:
    """``Q_trivial``: one variable ``x`` with every atom ``R(x, ..., x)``.

    Its tableau maps homomorphically from every tableau via the constant map,
    so ``Q_trivial`` is contained in every Boolean CQ over the vocabulary.
    """
    vocabulary = Vocabulary(vocabulary)
    if not len(vocabulary):
        raise ValueError("the vocabulary is empty")
    atoms = [Atom(name, ("x",) * arity) for name, arity in vocabulary.items()]
    return ConjunctiveQuery((), atoms)


def trivial_bipartite_query() -> ConjunctiveQuery:
    """``Q_triv2() :- E(x, y), E(y, x)`` with tableau ``K2↔`` (Section 5.1)."""
    return trivial_clique_query(2)


def trivial_clique_query(size: int) -> ConjunctiveQuery:
    """``Q_triv(size)``: the Boolean query whose tableau is ``K(size)↔``."""
    if size < 2:
        raise ValueError("the clique query needs at least two variables")
    variables = [f"x{i}" for i in range(size)]
    atoms = [
        Atom("E", (u, v)) for u in variables for v in variables if u != v
    ]
    return ConjunctiveQuery((), atoms)


def path_query(length: int, *, head: Sequence[str] = ()) -> ConjunctiveQuery:
    """``P_length``: the query stating that ``x0, ..., x_length`` form a path.

    The body is ``E(x0, x1), ..., E(x_{length-1}, x_length)``; by default the
    query is Boolean, and ``head`` selects free variables.
    """
    if length < 1:
        raise ValueError("paths must have at least one edge")
    atoms = [Atom("E", (f"x{i}", f"x{i + 1}")) for i in range(length)]
    return ConjunctiveQuery(tuple(head), atoms)


def directed_cycle_query(length: int, *, head: Sequence[str] = ()) -> ConjunctiveQuery:
    """The Boolean query whose tableau is the directed cycle of the length."""
    if length < 1:
        raise ValueError("cycles must have at least one edge")
    atoms = [
        Atom("E", (f"x{i}", f"x{(i + 1) % length}")) for i in range(length)
    ]
    return ConjunctiveQuery(tuple(head), atoms)


def bidirected_cycle_query(length: int) -> ConjunctiveQuery:
    """The Boolean query whose tableau is the cycle with both orientations."""
    if length < 2:
        raise ValueError("bidirected cycles need at least two variables")
    atoms = []
    for i in range(length):
        u, v = f"x{i}", f"x{(i + 1) % length}"
        atoms.append(Atom("E", (u, v)))
        atoms.append(Atom("E", (v, u)))
    return ConjunctiveQuery((), atoms)


def loop_query() -> ConjunctiveQuery:
    """``Q() :- E(x, x)``, the trivial acyclic approximation over graphs."""
    return ConjunctiveQuery((), [Atom("E", ("x", "x"))])
