"""Conjunctive queries, relational structures and tableaux."""

from repro.cq.vocabulary import GRAPH_VOCABULARY, Vocabulary
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau, pin_for
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.parser import CQParseError, parse_query
from repro.cq.containment import (
    are_equivalent,
    containment_witness,
    is_contained_in,
    is_strictly_contained_in,
)
from repro.cq.minimize import is_minimal, minimize
from repro.cq.builders import (
    bidirected_cycle_query,
    directed_cycle_query,
    loop_query,
    path_query,
    trivial_bipartite_query,
    trivial_clique_query,
    trivial_query,
)

__all__ = [
    "Atom",
    "CQParseError",
    "ConjunctiveQuery",
    "GRAPH_VOCABULARY",
    "Structure",
    "Tableau",
    "Vocabulary",
    "are_equivalent",
    "bidirected_cycle_query",
    "containment_witness",
    "directed_cycle_query",
    "is_contained_in",
    "is_minimal",
    "is_strictly_contained_in",
    "loop_query",
    "minimize",
    "parse_query",
    "path_query",
    "pin_for",
    "trivial_bipartite_query",
    "trivial_clique_query",
    "trivial_query",
]
