"""Finite relational structures (databases).

A structure ``D = <U, R_1, ..., R_l>`` has a finite universe ``U`` and one
finite relation per symbol of its vocabulary (Section 2).  Structures here are
immutable; all "mutation" helpers return new structures.  As in the paper, the
universe defaults to the active domain, but an explicit larger domain can be
supplied (isolated digraph vertices, for instance).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping

from repro.cq.vocabulary import Vocabulary

Element = Hashable
Tuple_ = tuple  # a row of a relation


class Structure:
    """An immutable finite relational structure.

    Parameters
    ----------
    relations:
        Mapping from relation names to iterables of tuples.  All tuples of a
        relation must have the same length (the relation's arity).
    vocabulary:
        Optional explicit vocabulary.  Needed to give an arity to relations
        with no tuples; inferred from the data otherwise.
    domain:
        Optional explicit universe; the active domain is always included.
    """

    __slots__ = ("_relations", "_domain", "_vocabulary", "_hash")

    def __init__(
        self,
        relations: Mapping[str, Iterable[Tuple_]],
        *,
        vocabulary: Vocabulary | Mapping[str, int] | None = None,
        domain: Iterable[Element] = (),
    ) -> None:
        arities: dict[str, int] = dict(vocabulary) if vocabulary is not None else {}
        cleaned: dict[str, frozenset[Tuple_]] = {}
        active: set[Element] = set(domain)
        for name, rows in relations.items():
            frozen = frozenset(tuple(row) for row in rows)
            for row in frozen:
                if name in arities and len(row) != arities[name]:
                    raise ValueError(
                        f"tuple {row!r} has length {len(row)}, but {name!r} has arity {arities[name]}"
                    )
                arities.setdefault(name, len(row))
                active.update(row)
            cleaned[name] = frozen
        for name in arities:
            cleaned.setdefault(name, frozenset())
        self._relations = cleaned
        self._vocabulary = Vocabulary(arities)
        self._domain = frozenset(active)
        self._hash: int | None = None

    # ------------------------------------------------------------------ views

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def domain(self) -> frozenset[Element]:
        return self._domain

    @property
    def relations(self) -> Mapping[str, frozenset[Tuple_]]:
        return self._relations

    def tuples(self, name: str) -> frozenset[Tuple_]:
        """All tuples of relation ``name`` (empty if the name is unknown)."""
        return self._relations.get(name, frozenset())

    def arity(self, name: str) -> int:
        return self._vocabulary[name]

    def facts(self) -> Iterator[tuple[str, Tuple_]]:
        """Iterate over all facts ``(relation name, tuple)``."""
        for name in sorted(self._relations):
            for row in sorted(self._relations[name], key=repr):
                yield name, row

    @property
    def total_tuples(self) -> int:
        """Total number of facts, written ``|D|`` in complexity bounds."""
        return sum(len(rows) for rows in self._relations.values())

    def __len__(self) -> int:
        """Number of elements of the universe."""
        return len(self._domain)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Structure):
            return self._domain == other._domain and self._relations == other._relations
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._domain, tuple(sorted((k, v) for k, v in self._relations.items())))
            )
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._relations):
            rows = ",".join(repr(row) for row in sorted(self._relations[name], key=repr))
            parts.append(f"{name}={{{rows}}}")
        return f"Structure(|dom|={len(self._domain)}, {'; '.join(parts)})"

    # ------------------------------------------------------------- containment

    def is_contained_in(self, other: "Structure") -> bool:
        """Database containment: every relation of ``self`` is a subset."""
        return all(
            rows <= other.tuples(name) for name, rows in self._relations.items()
        )

    def is_strictly_contained_in(self, other: "Structure") -> bool:
        """Containment with at least one strictly smaller relation."""
        if not self.is_contained_in(other):
            return False
        return any(
            self.tuples(name) < rows for name, rows in other._relations.items()
        )

    # ------------------------------------------------------------ constructors

    def induced(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced by ``elements``.

        Keeps exactly the tuples all of whose entries lie in ``elements``.
        """
        keep = frozenset(elements)
        return Structure(
            {
                name: (row for row in rows if all(value in keep for value in row))
                for name, rows in self._relations.items()
            },
            vocabulary=self._vocabulary,
            domain=keep & self._domain,
        )

    def without(self, element: Element) -> "Structure":
        """The substructure induced by dropping one element."""
        return self.induced(self._domain - {element})

    def rename(self, mapping: Mapping[Element, Element] | Callable[[Element], Element]) -> "Structure":
        """Apply a function to every element; the homomorphic image of ``self``.

        If ``mapping`` is injective this is a renaming; otherwise it is a
        quotient (tuples are mapped pointwise and duplicates collapse).
        """
        if callable(mapping) and not isinstance(mapping, Mapping):
            func = mapping
        else:
            table = dict(mapping)
            func = lambda x: table.get(x, x)  # noqa: E731 - tiny adapter
        return Structure(
            {
                name: (tuple(func(value) for value in row) for row in rows)
                for name, rows in self._relations.items()
            },
            vocabulary=self._vocabulary,
            domain=(func(value) for value in self._domain),
        )

    quotient = rename  # a quotient is a rename by a non-injective map

    def add_facts(self, facts: Iterable[tuple[str, Tuple_]]) -> "Structure":
        """A new structure with extra facts added."""
        extended: dict[str, set[Tuple_]] = {
            name: set(rows) for name, rows in self._relations.items()
        }
        for name, row in facts:
            extended.setdefault(name, set()).add(tuple(row))
        return Structure(extended, domain=self._domain)

    def remove_facts(self, facts: Iterable[tuple[str, Tuple_]]) -> "Structure":
        """A new structure with the given facts removed (domain preserved)."""
        trimmed: dict[str, set[Tuple_]] = {
            name: set(rows) for name, rows in self._relations.items()
        }
        for name, row in facts:
            trimmed.get(name, set()).discard(tuple(row))
        return Structure(trimmed, vocabulary=self._vocabulary, domain=self._domain)

    def union(self, other: "Structure") -> "Structure":
        """Relation-wise union (shared elements are identified)."""
        vocabulary = self._vocabulary.merge(other._vocabulary)
        names = set(self._relations) | set(other._relations)
        return Structure(
            {name: self.tuples(name) | other.tuples(name) for name in names},
            vocabulary=vocabulary,
            domain=self._domain | other._domain,
        )

    def disjoint_union(
        self, other: "Structure", *, tags: tuple[str, str] = ("L", "R")
    ) -> tuple["Structure", dict[Element, Element], dict[Element, Element]]:
        """Disjoint union; returns the union plus the two injection maps."""
        left = {value: (tags[0], value) for value in self._domain}
        right = {value: (tags[1], value) for value in other._domain}
        return (
            self.rename(left).union(other.rename(right)),
            left,
            right,
        )

    def relabel_canonically(self, prefix: str = "v") -> tuple["Structure", dict[Element, Element]]:
        """Rename elements to ``v0, v1, ...`` in a deterministic order."""
        ordered = sorted(self._domain, key=repr)
        mapping = {value: f"{prefix}{index}" for index, value in enumerate(ordered)}
        return self.rename(mapping), mapping
