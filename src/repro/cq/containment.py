"""CQ containment and equivalence via the Chandra–Merlin theorem.

``Q ⊆ Q'`` (every answer of ``Q`` is an answer of ``Q'`` on every database)
holds if and only if there is a homomorphism of tableaux
``(T_Q', x̄') → (T_Q, x̄)``.  Both directions of the preorder — and hence
equivalence and strict containment — reduce to homomorphism search, routed
through the shared :class:`~repro.homomorphism.engine.HomEngine`: boolean
verdicts (``is_contained_in`` and friends) hit the engine's memoized,
signature-accelerated ``hom_le``, while ``containment_witness`` runs the
search to produce an actual witness mapping.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.engine import default_engine
from repro.homomorphism.orders import tableau_hom


def _check_arities(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> None:
    if len(sub.head) != len(sup.head):
        raise ValueError(
            "containment requires equal head arities, got "
            f"{len(sub.head)} and {len(sup.head)}"
        )


def containment_witness(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> dict | None:
    """A homomorphism ``(T_sup, x̄') → (T_sub, x̄)`` witnessing ``sub ⊆ sup``.

    Returns ``None`` when ``sub ⊆ sup`` fails.  Raises ``ValueError`` when
    the queries have different numbers of free variables (containment is only
    defined between queries of equal arity).
    """
    _check_arities(sub, sup)
    return tableau_hom(sup.tableau(), sub.tableau())


def is_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Whether ``sub ⊆ sup`` holds on all databases."""
    _check_arities(sub, sup)
    return default_engine().hom_le(sup.tableau(), sub.tableau())


def are_equivalent(a: ConjunctiveQuery, b: ConjunctiveQuery) -> bool:
    """Whether ``a ≡ b`` (mutual containment)."""
    _check_arities(a, b)
    return default_engine().hom_equivalent(a.tableau(), b.tableau())


def is_strictly_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Whether ``sub ⊂ sup``: containment holds but equivalence does not."""
    _check_arities(sub, sup)
    return default_engine().strictly_below(sup.tableau(), sub.tableau())
