"""CQ containment and equivalence via the Chandra–Merlin theorem.

``Q ⊆ Q'`` (every answer of ``Q`` is an answer of ``Q'`` on every database)
holds if and only if there is a homomorphism of tableaux
``(T_Q', x̄') → (T_Q, x̄)``.  Both directions of the preorder — and hence
equivalence and strict containment — reduce to homomorphism search.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.orders import tableau_hom


def containment_witness(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> dict | None:
    """A homomorphism ``(T_sup, x̄') → (T_sub, x̄)`` witnessing ``sub ⊆ sup``.

    Returns ``None`` when ``sub ⊆ sup`` fails.  Raises ``ValueError`` when
    the queries have different numbers of free variables (containment is only
    defined between queries of equal arity).
    """
    if len(sub.head) != len(sup.head):
        raise ValueError(
            "containment requires equal head arities, got "
            f"{len(sub.head)} and {len(sup.head)}"
        )
    return tableau_hom(sup.tableau(), sub.tableau())


def is_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Whether ``sub ⊆ sup`` holds on all databases."""
    return containment_witness(sub, sup) is not None


def are_equivalent(a: ConjunctiveQuery, b: ConjunctiveQuery) -> bool:
    """Whether ``a ≡ b`` (mutual containment)."""
    return is_contained_in(a, b) and is_contained_in(b, a)


def is_strictly_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery) -> bool:
    """Whether ``sub ⊂ sup``: containment holds but equivalence does not."""
    return is_contained_in(sub, sup) and not is_contained_in(sup, sub)
