"""Conjunctive queries.

A CQ over a vocabulary σ is an ∃,∧-formula, written in rule notation as

    Q(x̄) :- R_1(x̄_1), ..., R_m(x̄_m)

(equation (1) of the paper).  The number of joins of the query is ``m - 1``.
Queries are immutable; the tableau view (:class:`repro.cq.tableau.Tableau`)
is the bridge to all homomorphism machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.cq.vocabulary import Vocabulary

Variable = str


@dataclass(frozen=True)
class Atom:
    """A single atom ``R(x_1, ..., x_n)`` of a CQ body."""

    relation: str
    args: tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("atom needs a relation name")
        if not self.args:
            raise ValueError("atoms of arity 0 are not supported")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(self.args)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.args)})"


class ConjunctiveQuery:
    """An immutable conjunctive query with head variables and body atoms."""

    __slots__ = ("_head", "_atoms", "_variables", "_vocabulary", "_hash")

    def __init__(self, head: Iterable[Variable], atoms: Iterable[Atom | tuple]) -> None:
        normalized: list[Atom] = []
        for atom in atoms:
            if isinstance(atom, Atom):
                normalized.append(atom)
            else:
                relation, args = atom
                normalized.append(Atom(relation, tuple(args)))
        if not normalized:
            raise ValueError("a CQ needs at least one atom")
        head = tuple(head)

        arities: dict[str, int] = {}
        seen: dict[Variable, None] = {}
        for atom in normalized:
            if arities.setdefault(atom.relation, len(atom.args)) != len(atom.args):
                raise ValueError(
                    f"relation {atom.relation!r} used with two different arities"
                )
            for variable in atom.args:
                seen.setdefault(variable, None)
        body_variables = tuple(seen)
        unsafe = [x for x in head if x not in seen]
        if unsafe:
            raise ValueError(f"head variables {unsafe!r} do not occur in the body")

        self._head = head
        self._atoms = tuple(normalized)
        self._variables = body_variables
        self._vocabulary = Vocabulary(arities)
        self._hash: int | None = None

    # ------------------------------------------------------------------ views

    @property
    def head(self) -> tuple[Variable, ...]:
        """The tuple of free variables (may repeat variables)."""
        return self._head

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def variables(self) -> tuple[Variable, ...]:
        """All body variables in order of first occurrence."""
        return self._variables

    @property
    def existential_variables(self) -> tuple[Variable, ...]:
        head = set(self._head)
        return tuple(x for x in self._variables if x not in head)

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def is_boolean(self) -> bool:
        return not self._head

    @property
    def num_atoms(self) -> int:
        return len(self._atoms)

    @property
    def num_joins(self) -> int:
        """``m - 1`` for a body with ``m`` atoms, as defined in Section 2."""
        return len(self._atoms) - 1

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConjunctiveQuery):
            return self._head == other._head and set(self._atoms) == set(other._atoms)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._head, frozenset(self._atoms)))
        return self._hash

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self._atoms)
        return f"Q({', '.join(self._head)}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"

    # ------------------------------------------------------------ conversions

    def tableau(self) -> Tableau:
        """The tableau ``(T_Q, x̄)`` of the query."""
        relations: dict[str, list[tuple]] = {}
        for atom in self._atoms:
            relations.setdefault(atom.relation, []).append(atom.args)
        structure = Structure(relations, vocabulary=self._vocabulary)
        return Tableau(structure, self._head)

    @staticmethod
    def from_tableau(tableau: Tableau, *, prefix: str = "v") -> "ConjunctiveQuery":
        """The CQ whose tableau is the given one.

        Elements of the tableau become variables; non-string elements (and
        clashing ones) are renamed canonically with the given prefix.
        """
        if all(isinstance(value, str) for value in tableau.structure.domain):
            named = tableau
        else:
            named = tableau.relabel_canonically(prefix)
        atoms = [Atom(name, row) for name, row in named.structure.facts()]
        isolated = named.structure.domain - {
            variable for atom in atoms for variable in atom.args
        }
        if isolated:
            raise ValueError(
                f"tableau has isolated elements {sorted(map(repr, isolated))}; "
                "they cannot be expressed as a CQ body"
            )
        return ConjunctiveQuery(named.distinguished, atoms)

    # ------------------------------------------------------- graph structure

    def graph(self) -> nx.Graph:
        """The (Gaifman) graph ``G(Q)``: variables, with an edge between any
        two distinct variables sharing an atom (Section 4)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._variables)
        for atom in self._atoms:
            distinct = sorted(atom.variables)
            for i, u in enumerate(distinct):
                for v in distinct[i + 1 :]:
                    graph.add_edge(u, v)
        return graph

    def hyperedges(self) -> list[frozenset[Variable]]:
        """Variable sets of the atoms — the hyperedges of ``H(Q)``."""
        return [atom.variables for atom in self._atoms]

    # ------------------------------------------------------------- renamings

    def rename(self, mapping: Mapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Apply a variable renaming/identification to head and body."""
        return ConjunctiveQuery(
            (mapping.get(x, x) for x in self._head),
            [
                Atom(atom.relation, tuple(mapping.get(x, x) for x in atom.args))
                for atom in self._atoms
            ],
        )

    def rename_apart(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """Rename this query's variables away from ``other``'s variables."""
        taken = set(other.variables) | set(other.head)
        mapping: dict[Variable, Variable] = {}
        for variable in self._variables:
            candidate = variable
            suffix = 0
            while candidate in taken:
                candidate = f"{variable}_{suffix}"
                suffix += 1
            mapping[variable] = candidate
            taken.add(candidate)
        return self.rename(mapping)

    def atoms_of(self, variable: Variable) -> Iterator[Atom]:
        for atom in self._atoms:
            if variable in atom.variables:
                yield atom
