"""Parser for the rule-based CQ notation used throughout the paper.

Accepts strings such as::

    Q(x, y) :- E(x, y), E(y, z)
    Q() :- R(x, u, y), R(y, v, z), R(z, w, x)

The head name is arbitrary, ``:-`` (or ``<-``) separates head and body, and
body atoms are comma-separated.  Variables are identifiers (letters, digits,
underscores, and primes such as ``x'``).
"""

from __future__ import annotations

import re

from repro.cq.query import Atom, ConjunctiveQuery

_ATOM = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9']*)\s*\(([^()]*)\)\s*")
_SEPARATOR = re.compile(r":-|:–|<-")


class CQParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _parse_args(raw: str, *, allow_empty: bool) -> tuple[str, ...]:
    raw = raw.strip()
    if not raw:
        if allow_empty:
            return ()
        raise CQParseError("atoms must have at least one argument")
    args = tuple(part.strip() for part in raw.split(","))
    if any(not arg for arg in args):
        raise CQParseError(f"empty argument in {raw!r}")
    bad = [arg for arg in args if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9']*", arg)]
    if bad:
        raise CQParseError(f"invalid variable names: {bad!r}")
    return args


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a rule-notation string into a :class:`ConjunctiveQuery`."""
    text = text.strip().rstrip(".")
    separator = _SEPARATOR.search(text)
    if separator is None:
        raise CQParseError(f"missing ':-' in {text!r}")
    head_text = text[: separator.start()]
    body_text = text[separator.end() :]

    head_match = _ATOM.fullmatch(head_text)
    if head_match is None:
        raise CQParseError(f"cannot parse head {head_text!r}")
    head = _parse_args(head_match.group(2), allow_empty=True)

    atoms: list[Atom] = []
    position = 0
    while position < len(body_text):
        match = _ATOM.match(body_text, position)
        if match is None:
            raise CQParseError(f"cannot parse body near {body_text[position:]!r}")
        atoms.append(Atom(match.group(1), _parse_args(match.group(2), allow_empty=False)))
        position = match.end()
        if position < len(body_text):
            if body_text[position] != ",":
                raise CQParseError(
                    f"expected ',' between atoms near {body_text[position:]!r}"
                )
            position += 1
    if not atoms:
        raise CQParseError("query body is empty")
    return ConjunctiveQuery(head, atoms)
