"""Tableaux of conjunctive queries.

With each CQ ``Q(x̄)`` the paper associates its tableau ``(T_Q, x̄)``: the body
of ``Q`` viewed as a database, together with the tuple of distinguished
(free) variables.  Tableaux with distinguished tuples are exactly structures
expanded with constants, and all containment/approximation reasoning happens
on them via homomorphisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.cq.structure import Structure

Element = Hashable


@dataclass(frozen=True)
class Tableau:
    """A structure with a tuple of distinguished elements.

    For a Boolean query the distinguished tuple is empty.
    """

    structure: Structure
    distinguished: tuple[Element, ...] = ()

    def __post_init__(self) -> None:
        missing = [x for x in self.distinguished if x not in self.structure.domain]
        if missing:
            raise ValueError(
                f"distinguished elements {missing!r} are not in the active domain"
            )

    @property
    def is_boolean(self) -> bool:
        return not self.distinguished

    def __len__(self) -> int:
        return len(self.structure)

    def rename(self, mapping) -> "Tableau":
        """Apply a map to the structure and the distinguished tuple alike."""
        renamed = self.structure.rename(mapping)
        if callable(mapping) and not isinstance(mapping, dict):
            new_distinguished = tuple(mapping(x) for x in self.distinguished)
        else:
            new_distinguished = tuple(mapping.get(x, x) for x in self.distinguished)
        return Tableau(renamed, new_distinguished)

    def relabel_canonically(self, prefix: str = "v") -> "Tableau":
        _, mapping = self.structure.relabel_canonically(prefix)
        return self.rename(mapping)


def pin_for(source: Tableau, target: Tableau) -> dict[Element, Element] | None:
    """The pinning constraint for homomorphisms between tableaux.

    ``(D1, ā1) → (D2, ā2)`` requires ``h(ā1) = ā2`` position-wise.  Returns
    the induced partial map, or ``None`` when it is inconsistent (the same
    distinguished element would need two images) — in that case no
    homomorphism of tableaux exists.
    """
    if len(source.distinguished) != len(target.distinguished):
        raise ValueError(
            "tableaux have different numbers of distinguished elements: "
            f"{len(source.distinguished)} vs {len(target.distinguished)}"
        )
    pin: dict[Element, Element] = {}
    for src, dst in zip(source.distinguished, target.distinguished):
        if pin.get(src, dst) != dst:
            return None
        pin[src] = dst
    return pin
