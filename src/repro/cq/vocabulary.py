"""Relational vocabularies (schemas).

A vocabulary is a finite set of relation names with fixed arities (Section 2
of the paper).  Directed graphs use the vocabulary ``{"E": 2}``.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class Vocabulary(Mapping[str, int]):
    """An immutable mapping from relation names to positive arities."""

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]) -> None:
        cleaned: dict[str, int] = {}
        for name, arity in arities.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"relation name must be a non-empty string, got {name!r}")
            if not isinstance(arity, int) or arity < 1:
                raise ValueError(f"arity of {name!r} must be a positive integer, got {arity!r}")
            cleaned[name] = arity
        self._arities = dict(sorted(cleaned.items()))

    def __getitem__(self, name: str) -> int:
        return self._arities[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._arities)

    def __len__(self) -> int:
        return len(self._arities)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}/{arity}" for name, arity in self._arities.items())
        return f"Vocabulary({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Vocabulary):
            return self._arities == other._arities
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._arities.items()))

    @property
    def max_arity(self) -> int:
        """The maximum arity ``m`` of a relation (0 for the empty vocabulary)."""
        return max(self._arities.values(), default=0)

    def merge(self, other: "Vocabulary") -> "Vocabulary":
        """Union of two vocabularies; arities of shared names must agree."""
        merged = dict(self._arities)
        for name, arity in other.items():
            if merged.get(name, arity) != arity:
                raise ValueError(
                    f"conflicting arities for {name!r}: {merged[name]} vs {arity}"
                )
            merged[name] = arity
        return Vocabulary(merged)


#: The vocabulary of directed graphs: one binary relation ``E``.
GRAPH_VOCABULARY = Vocabulary({"E": 2})
