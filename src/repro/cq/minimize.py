"""CQ minimization.

Every CQ has a unique (up to variable renaming) equivalent query with the
fewest atoms — the query whose tableau is ``core(T_Q, x̄)`` (Chandra &
Merlin; Section 4.2 of the paper).  Minimization therefore reduces to the
core computation with the head variables pinned, executed by the shared
:class:`~repro.homomorphism.engine.HomEngine` (indexed endomorphism
searches; see :mod:`repro.homomorphism.cores`).
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.engine import default_engine


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The minimized equivalent of ``query`` (its tableau is a core)."""
    return ConjunctiveQuery.from_tableau(
        default_engine().core_tableau(query.tableau())
    )


def is_minimal(query: ConjunctiveQuery) -> bool:
    """Whether the query's tableau is a core (no atom can be dropped)."""
    tableau = query.tableau()
    return default_engine().is_core(
        tableau.structure, pinned=tuple(dict.fromkeys(tableau.distinguished))
    )
