"""Deterministic test instrumentation for the pipeline.

:mod:`repro.testing.faults` injects worker kills, delays, raising checks,
and simulated OOM at the pipeline's stage-2/stage-3 seams — see that
module for the exactly-once cross-process firing protocol.
"""

from repro.testing.faults import FaultInjected, FaultPlan, FaultyClass

__all__ = ["FaultInjected", "FaultPlan", "FaultyClass"]
