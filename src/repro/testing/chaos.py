"""Deterministic chaos sweep over the serving fleet and the shard fabric.

Every scenario is derived from one integer seed (`python -m
repro.testing.chaos --count 20` replays seeds ``seed_base .. +count``),
composes one or two faults from the existing :class:`~repro.testing.
faults.FaultPlan` vocabulary — worker ``SIGKILL``/``SIGSTOP``, cache
``corrupt``, and the armed network kinds ``drop-connection`` /
``delay-response`` / ``garble-frame`` — and replays a renamed-query
workload through the faulted system while asserting the four system
invariants:

1. **zero wrong answers** — an unflagged response is bit-identical to
   the expected (canonical) answer of its query;
2. **partial results are explicitly flagged** — a response may deviate
   only by carrying ``exhausted``/``faults``/``quarantined`` markers;
3. **eventual completion** — every request ends in an ``ok`` response
   (through the client retry policy and the router's retry/hedge paths),
   and a fleet hurt by an external fault restores full capacity;
4. **warm ≡ cold** — a ``cached`` response is bit-identical to the cold
   answer (the canonical result key's contract).

A failing scenario raises :class:`ChaosFailure` naming the seed and the
fault composition that broke it, so ``--seed-base <seed> --count 1``
reproduces exactly that run.

Mechanically, scenarios come in three shapes:

* **fleet / external** — one long-lived shared fleet (2 workers, shared
  disk cache, hedging on); the driver injects real signals
  (``SIGKILL``/``SIGSTOP`` on a worker pid) or corrupts a disk-cache
  entry mid-replay, then waits for the supervisor to restore capacity.
  The fleet self-heals between scenarios, which is itself part of the
  drill.
* **fleet / armed** — a fresh fleet whose target worker is started with
  ``--fault-kind`` so the ``at_check``-th response is dropped, delayed,
  or garbled; the router's retry (drop/garble) and hedge (delay) paths
  must absorb it invisibly.
* **fabric** — in-process :class:`~repro.fabric.WorkerServer` pairs
  under :func:`~repro.core.run_pipeline`, armed with the same network
  kinds (plus a dead address), asserting the final frontier is
  hom-equivalent to the serial run.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import tempfile
import threading
import time
from dataclasses import dataclass

from repro.testing.faults import NETWORK_KINDS, FaultPlan

__all__ = ["ChaosFailure", "ChaosScenario", "run_sweep", "scenario_from_seed"]

#: Externally-injected fleet faults (real signals / real disk damage).
FLEET_EXTERNAL = ("kill", "stop", "corrupt-entry")
#: Fabric drills (armed network kinds, a dead address, or nothing).
FABRIC_FAULTS = NETWORK_KINDS + ("dead-address", "none")

_TEMPLATE_SPECS = ((4, ()), (5, ()), (6, ((0, 3),)))
_ARMED_DELAY = 3.0


class ChaosFailure(AssertionError):
    """An invariant broke; the message names the seed and composition."""


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded, reproducible fault composition plus its workload."""

    seed: int
    layer: str  # "fleet" | "fabric"
    mode: str  # "external" | "armed" | "fabric"
    faults: tuple[str, ...]
    target: int  # victim worker slot
    at_request: int  # external: inject before this request index
    at_check: int  # armed: seam invocation that fires
    shuffle_seed: int

    def label(self) -> str:
        return (
            f"seed={self.seed} layer={self.layer} mode={self.mode} "
            f"faults={'+'.join(self.faults)} target={self.target}"
        )

    def fail(self, invariant: str, detail: str) -> "ChaosFailure":
        return ChaosFailure(
            f"chaos scenario [{self.label()}] broke invariant "
            f"'{invariant}': {detail} — reproduce with "
            f"`python -m repro.testing.chaos --seed-base {self.seed} "
            f"--count 1`"
        )


def scenario_from_seed(seed: int) -> ChaosScenario:
    """The deterministic seed -> scenario map (pure; no I/O)."""
    rng = random.Random(seed)
    if rng.random() < 0.3:
        fault = FABRIC_FAULTS[rng.randrange(len(FABRIC_FAULTS))]
        return ChaosScenario(
            seed=seed,
            layer="fabric",
            mode="fabric",
            faults=(fault,),
            target=rng.randrange(2),
            at_request=0,
            at_check=1 + rng.randrange(2),
            shuffle_seed=rng.randrange(1 << 30),
        )
    if rng.random() < 0.35:
        fault = NETWORK_KINDS[rng.randrange(len(NETWORK_KINDS))]
        return ChaosScenario(
            seed=seed,
            layer="fleet",
            mode="armed",
            faults=(fault,),
            target=rng.randrange(2),
            at_request=0,
            at_check=1 + rng.randrange(2),
            shuffle_seed=rng.randrange(1 << 30),
        )
    count = 2 if rng.random() < 0.35 else 1
    faults = tuple(rng.sample(FLEET_EXTERNAL, count))
    return ChaosScenario(
        seed=seed,
        layer="fleet",
        mode="external",
        faults=faults,
        target=rng.randrange(2),
        at_request=1 + rng.randrange(3),
        at_check=1,
        shuffle_seed=rng.randrange(1 << 30),
    )


# --------------------------------------------------------------------------
# Workload + expected answers
# --------------------------------------------------------------------------


def _templates():
    from repro.workloads import cycle_with_chords

    return [cycle_with_chords(n, chords) for n, chords in _TEMPLATE_SPECS]


def _rename(query, rng: random.Random) -> str:
    from repro.cq import ConjunctiveQuery

    variables = sorted(query.tableau().structure.domain, key=repr)
    shuffled = list(range(len(variables)))
    rng.shuffle(shuffled)
    mapping = {v: f"c{shuffled[i]}" for i, v in enumerate(variables)}
    return str(ConjunctiveQuery.from_tableau(query.tableau().rename(mapping)))


def _expected_answers(templates) -> list[list[str]]:
    """What the serving path must answer, computed serverless once.

    Mirrors ``ApproximationServer._serve_approximate`` exactly: the
    pipeline runs on the canonical representative of the query's core,
    which is what makes the expectation phrasing-invariant and the
    bit-identity assertions meaningful.
    """
    from repro.core import ApproximationConfig, TreewidthClass, approximate
    from repro.cq import ConjunctiveQuery
    from repro.serve.cache import canonical_representative

    config = ApproximationConfig(max_extra_atoms=0)
    answers = []
    for template in templates:
        core = canonical_representative(template.tableau())
        core_query = ConjunctiveQuery.from_tableau(core, prefix="v")
        result = approximate(
            core_query, TreewidthClass(1), method="exact", config=config
        )
        answers.append([str(result)])
    return answers


def _workload(
    templates, scenario: ChaosScenario, repeats: int = 2
) -> list[tuple[int, str]]:
    """``repeats`` renamed phrasings of every template, seed-shuffled."""
    rng = random.Random(scenario.shuffle_seed)
    requests = [
        (index, _rename(template, rng))
        for index, template in enumerate(templates)
        for _ in range(repeats)
    ]
    rng.shuffle(requests)
    return requests


# --------------------------------------------------------------------------
# Fleet hosting
# --------------------------------------------------------------------------


class HostedFleet:
    """A :class:`~repro.serve.Fleet` on a background event-loop thread."""

    def __init__(self, config) -> None:
        from repro.serve import Fleet

        self.config = config
        self.fleet = Fleet(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._host, daemon=True)

    def _host(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.fleet.run())
        self.loop.close()

    def __enter__(self) -> "HostedFleet":
        from repro.serve import wait_for_server

        self.thread.start()
        wait_for_server(self.config.socket_path, deadline=120.0)
        return self

    def __exit__(self, *exc_info) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.fleet.request_shutdown)
        self.thread.join(timeout=120)
        assert not self.thread.is_alive(), "fleet failed to drain"

    def client(self, **kwargs):
        from repro.serve import RetryPolicy, ServeClient

        kwargs.setdefault(
            "retry",
            RetryPolicy(max_attempts=10, backoff_base=0.05, backoff_cap=1.0),
        )
        kwargs.setdefault("timeout", 120.0)
        return ServeClient(self.config.socket_path, **kwargs)


def _shared_fleet_config(tmp: str, *, hedge_after: float = 1.0):
    from repro.serve import FleetConfig

    return FleetConfig(
        workers=2,
        socket_path=os.path.join(tmp, "fleet.sock"),
        run_dir=tmp,
        cache_dir=os.path.join(tmp, "cache"),
        max_extra_atoms=0,
        enable_test_ops=True,
        health_interval=0.2,
        health_timeout=0.8,
        restart_backoff_base=0.1,
        restart_backoff_cap=0.5,
        # The sweep reuses one fleet across many externally-injected
        # deaths; the storm breaker is drilled separately (test_fleet),
        # so here the window is kept short and the cap generous.
        max_restarts=100,
        restart_window=5.0,
        hedge_after=hedge_after,
    )


# --------------------------------------------------------------------------
# Scenario execution
# --------------------------------------------------------------------------


def _check_response(
    scenario: ChaosScenario, response: dict, expected: list[str]
) -> None:
    if not response.get("ok"):
        raise scenario.fail(
            "eventual completion",
            f"request ended in a non-ok response: {response.get('error')}",
        )
    flagged = bool(
        response.get("exhausted")
        or response.get("faults")
        or response.get("quarantined")
    )
    answers = response.get("approximations")
    if answers != expected:
        if not flagged:
            raise scenario.fail(
                "zero wrong answers",
                f"unflagged response {answers!r} != expected {expected!r}",
            )
        # Flagged-partial deviation is invariant 2 working as designed.
    if response.get("cached") and answers != expected:
        raise scenario.fail(
            "warm == cold",
            f"cached response {answers!r} != cold answer {expected!r}",
        )


def _inject_external(
    scenario: ChaosScenario, fault: str, hosted: HostedFleet, stats: dict
) -> int | None:
    """Apply one external fault; returns a SIGSTOP'd pid (for cleanup)."""
    slots = stats["slots"]
    victim = slots[scenario.target % len(slots)]
    pid = victim["pid"]
    if fault == "kill":
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        return None
    if fault == "stop":
        if pid is not None:
            try:
                os.kill(pid, signal.SIGSTOP)
            except OSError:
                return None
            return pid
        return None
    # "corrupt-entry": damage one shared disk-cache entry in place.
    cache_dir = hosted.config.cache_dir
    entries = sorted(
        name for name in os.listdir(cache_dir) if name.endswith(".entry")
    )
    if entries:
        choice = entries[scenario.shuffle_seed % len(entries)]
        token = os.path.join(
            cache_dir, f"chaos-token-{scenario.seed}-{choice}"
        )
        FaultPlan(
            "corrupt",
            1,
            token,
            corrupt_mode="garble" if scenario.shuffle_seed % 2 else "truncate",
        ).corrupt_file(os.path.join(cache_dir, choice))
    return None


def _await_capacity(
    scenario: ChaosScenario,
    client,
    workers: int,
    min_generations: dict[int, int] | None = None,
) -> dict:
    """Wait until every worker is live and (for signal faults) the victim
    slot's generation shows the supervisor actually replaced it — a
    SIGSTOP'd worker still *looks* alive until the probe discipline
    convicts it, so live-worker counts alone would pass vacuously."""
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        stats = client.stats()
        slots = stats["slots"]
        healthy = stats["live_workers"] >= workers and not any(
            slot["degraded"] for slot in slots
        )
        replaced = all(
            slots[index]["generation"] >= generation
            for index, generation in (min_generations or {}).items()
        )
        if healthy and replaced:
            return stats
        time.sleep(0.2)
    raise scenario.fail(
        "eventual completion",
        f"fleet capacity not restored: {stats['live_workers']} of "
        f"{workers} workers live, degraded "
        f"{[slot['degraded'] for slot in stats['slots']]}, generations "
        f"{[slot['generation'] for slot in stats['slots']]} "
        f"(required {min_generations})",
    )


def _run_fleet_external(
    scenario: ChaosScenario, hosted: HostedFleet, templates, expected
) -> str:
    stopped: list[int] = []
    requests = _workload(templates, scenario)
    try:
        with hosted.client() as client:
            pre_stats = client.stats()
            min_generations: dict[int, int] = {}
            if any(fault in ("kill", "stop") for fault in scenario.faults):
                victim = scenario.target % len(pre_stats["slots"])
                min_generations[victim] = (
                    pre_stats["slots"][victim]["generation"] + 1
                )
            pending = list(scenario.faults)
            for index, (template_index, text) in enumerate(requests):
                if index == scenario.at_request:
                    for fault in pending:
                        pid = _inject_external(
                            scenario, fault, hosted, pre_stats
                        )
                        if pid is not None:
                            stopped.append(pid)
                    pending = []
                response = client.approximate(
                    text, "TW1", method="exact", check=False
                )
                _check_response(
                    scenario, response, expected[template_index]
                )
            _await_capacity(
                scenario, client, hosted.config.workers, min_generations
            )
    finally:
        for pid in stopped:
            try:
                os.kill(pid, signal.SIGCONT)
            except OSError:
                pass
    return f"{len(requests)} requests ok, capacity restored"


def _run_fleet_armed(
    scenario: ChaosScenario, templates, expected
) -> str:
    fault = scenario.faults[0]
    with tempfile.TemporaryDirectory() as tmp:
        token = os.path.join(tmp, "token")
        config = _shared_fleet_config(
            tmp, hedge_after=0.75 if fault == "delay-response" else 1.0
        )
        config.worker_fault_args = {
            scenario.target
            % config.workers: (
                "--fault-kind",
                fault,
                "--fault-at",
                str(scenario.at_check),
                "--fault-token",
                token,
                "--fault-delay",
                str(_ARMED_DELAY),
            )
        }
        with HostedFleet(config) as hosted:
            requests = _workload(templates, scenario)
            with hosted.client() as client:
                for template_index, text in requests:
                    response = client.approximate(
                        text, "TW1", method="exact", check=False
                    )
                    _check_response(
                        scenario, response, expected[template_index]
                    )
                stats = client.stats()
            fired = os.path.exists(token)
    if not fired:
        # The fault targeted a worker the router never picked for the
        # at_check-th response — the load simply never reached the seam;
        # nothing fired, nothing to assert beyond the invariants above.
        return f"{len(requests)} requests ok (fault never reached)"
    healed = (
        stats["hedges"] >= 1
        if fault == "delay-response"
        else stats["router_retries"] >= 1 or stats["worker_restarts"] >= 1
    )
    if not healed:
        raise scenario.fail(
            "eventual completion",
            f"armed {fault} fired but neither the retry nor the hedge "
            f"path shows in the router stats: {stats}",
        )
    return (
        f"{len(requests)} requests ok (fired; retries="
        f"{stats['router_retries']} hedges={stats['hedges']})"
    )


def _run_fabric(scenario: ChaosScenario, fabric_state) -> str:
    from threading import Thread

    from repro.core import TW1, run_pipeline
    from repro.fabric import WorkerServer
    from repro.homomorphism import hom_equivalent

    tableau, serial = fabric_state
    fault = scenario.faults[0]
    plans: list[FaultPlan | None] = [None, None]
    with tempfile.TemporaryDirectory() as tmp:
        if fault in NETWORK_KINDS:
            plans[scenario.target % 2] = FaultPlan(
                fault,
                scenario.at_check,
                os.path.join(tmp, "token"),
                delay=1.5,
            )
        servers = [
            WorkerServer("127.0.0.1:0", fault_plan=plan) for plan in plans
        ]
        for server in servers:
            Thread(target=server.serve_forever, daemon=True).start()
        addresses = [server.address for server in servers]
        if fault == "dead-address":
            addresses[scenario.target % 2] = os.path.join(tmp, "ghost.sock")
        try:
            result = run_pipeline(
                tableau,
                TW1,
                max_extra_atoms=0,
                fabric=addresses,
                heartbeat_interval=0.3,
            )
        finally:
            for server in servers:
                server.close()
    if len(result.frontier) != len(serial) or not all(
        any(hom_equivalent(member, other) for other in serial)
        for member in result.frontier
    ):
        raise scenario.fail(
            "zero wrong answers",
            "fabric frontier is not hom-equivalent to the serial run",
        )
    return (
        f"frontier ok ({len(result.frontier)} members; "
        f"retries={result.stats.shard_retries} "
        f"faults={[f.kind for f in result.faults]})"
    )


# --------------------------------------------------------------------------
# The sweep
# --------------------------------------------------------------------------


def run_sweep(
    count: int = 20, seed_base: int = 0, *, log=print
) -> list[dict]:
    """Run ``count`` seeded scenarios; raise :class:`ChaosFailure` on the
    first broken invariant.  Returns one record per scenario."""
    templates = _templates()
    log(f"chaos: computing expected answers for {len(templates)} templates")
    expected = _expected_answers(templates)
    scenarios = [scenario_from_seed(seed_base + i) for i in range(count)]

    fabric_state = None
    if any(s.layer == "fabric" for s in scenarios):
        from repro.core import TW1, run_pipeline
        from repro.workloads import cycle_with_chords

        fabric_query = cycle_with_chords(6)
        fabric_tableau = fabric_query.tableau()
        fabric_state = (
            fabric_tableau,
            run_pipeline(fabric_tableau, TW1, max_extra_atoms=0).frontier,
        )

    records: list[dict] = []
    shared: HostedFleet | None = None
    shared_tmp: tempfile.TemporaryDirectory | None = None
    try:
        for scenario in scenarios:
            started = time.perf_counter()
            if scenario.mode == "external":
                if shared is None:
                    shared_tmp = tempfile.TemporaryDirectory()
                    shared = HostedFleet(
                        _shared_fleet_config(shared_tmp.name)
                    )
                    shared.__enter__()
                outcome = _run_fleet_external(
                    scenario, shared, templates, expected
                )
            elif scenario.mode == "armed":
                outcome = _run_fleet_armed(scenario, templates, expected)
            else:
                outcome = _run_fabric(scenario, fabric_state)
            elapsed = time.perf_counter() - started
            records.append(
                {
                    "seed": scenario.seed,
                    "layer": scenario.layer,
                    "mode": scenario.mode,
                    "faults": list(scenario.faults),
                    "outcome": outcome,
                    "seconds": round(elapsed, 2),
                }
            )
            log(
                f"chaos: [{scenario.label()}] ok in {elapsed:.1f}s — "
                f"{outcome}"
            )
    finally:
        if shared is not None:
            shared.__exit__(None, None, None)
        if shared_tmp is not None:
            shared_tmp.cleanup()
    return records


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=20)
    parser.add_argument("--seed-base", type=int, default=0)
    args = parser.parse_args(argv)
    started = time.perf_counter()
    records = run_sweep(args.count, args.seed_base)
    by_mode: dict[str, int] = {}
    for record in records:
        by_mode[record["mode"]] = by_mode.get(record["mode"], 0) + 1
    print(
        f"chaos: {len(records)} scenario(s) upheld all four invariants in "
        f"{time.perf_counter() - started:.1f}s "
        f"({', '.join(f'{mode}: {n}' for mode, n in sorted(by_mode.items()))})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
