"""Deterministic fault injection at the pipeline's stage-2 seam.

The robustness machinery (pool respawn, batch-timeout quarantine,
checkpoint/resume, budget stops) is about what happens when something
*external* goes wrong — a worker OOM-killed, a check that hangs, a process
that dies mid-run.  To test it deterministically, this module wraps a
:class:`~repro.core.classes.QueryClass` in a :class:`FaultyClass` whose
membership tests fire a scripted fault (:class:`FaultPlan`) the *n*-th
time they run:

* ``kind="kill"`` — ``SIGKILL`` to the current process.  Inside a pool
  worker this breaks the whole ``ProcessPoolExecutor`` (the
  ``BrokenProcessPool`` path); in the driver it simulates process death
  for checkpoint/resume tests.
* ``kind="delay"`` — sleep ``delay`` seconds, simulating a hung check for
  the per-batch timeout path.
* ``kind="raise"`` — raise :class:`FaultInjected`, the poisoned-candidate
  path.
* ``kind="corrupt"`` — damage a file on disk (truncate to half, or garble
  a byte span, per ``corrupt_mode``).  This one is *not* fired through
  :class:`FaultyClass`: the serving result cache
  (:mod:`repro.serve.cache`) counts its disk-entry writes and corrupts
  the *n*-th entry just after writing it, so the cache-recovery path
  (quarantine + recompute, never a crash) is exercised deterministically
  — exactly once across processes, like every other kind.

The shard fabric (:mod:`repro.fabric`) adds three *network* kinds fired
at the worker's response seam rather than through :class:`FaultyClass`
(the serving daemon reuses the same kinds at *its* response seam — the
``at_check``-th work-op response — so the fleet router's retry and
hedging paths are drilled with the same discipline):

* ``kind="drop-connection"`` — the worker closes the connection instead
  of answering, simulating a crash/partition mid-shard (the
  coordinator's re-dispatch path).
* ``kind="delay-response"`` — the worker sleeps ``delay`` seconds before
  answering, simulating a straggler (heartbeat/speculation paths).
* ``kind="garble-frame"`` — the worker answers with bytes that are not a
  protocol frame, simulating a corrupted stream (the coordinator must
  treat it like a lost shard, never crash).

Faults fire **exactly once across processes**: the plan claims a *token
file* with ``O_CREAT | O_EXCL`` — an atomic filesystem test-and-set every
fork shares — before firing, so a respawned pool (which re-runs the lost
batch, reaching the same n-th check again) does not re-fire and the run
can complete.  The same discipline covers fabric workers: a re-dispatched
shard reaching the same seam in another worker process finds the token
taken.  Everything is picklable, so a ``FaultyClass`` travels to pool
workers exactly like a real class.

Simulated OOM needs no wrapper: inject an ``rss_probe`` returning an
over-limit figure into :class:`~repro.runtime.budget.RunBudget`.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = ["FaultInjected", "FaultPlan", "FaultyClass", "NETWORK_KINDS"]

#: Fault kinds fired at a fabric worker's response seam (not through
#: :class:`FaultyClass`): the worker consults its plan just before
#: writing a shard response and, on a successful claim, drops the
#: connection, delays the response, or garbles the frame.
NETWORK_KINDS = ("drop-connection", "delay-response", "garble-frame")


class FaultInjected(RuntimeError):
    """The scripted exception of a ``kind="raise"`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """A scripted fault: fire ``kind`` on the ``at_check``-th check.

    ``at_check`` counts seam invocations (1-based) *in the process where
    the count is reached* — membership tests for :class:`FaultyClass`
    (each pool worker counts its own checks, so under a pool the fault
    fires in whichever worker reaches the count first), disk-entry writes
    for the result cache's ``kind="corrupt"`` seam.  The token file keeps
    any plan to one firing overall; ``token_path`` must point into a
    fresh per-test directory.
    """

    kind: str  # "kill" | "delay" | "raise" | "corrupt" | a NETWORK_KINDS
    at_check: int
    token_path: str
    delay: float = 0.0
    corrupt_mode: str = "truncate"  # "truncate" | "garble"

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "delay", "raise", "corrupt") + NETWORK_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_check < 1:
            raise ValueError("at_check is 1-based and must be >= 1")
        if self.corrupt_mode not in ("truncate", "garble"):
            raise ValueError(f"unknown corrupt mode {self.corrupt_mode!r}")

    def claim(self) -> bool:
        """Atomically claim the single firing (False: already fired)."""
        try:
            fd = os.open(self.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self, path: str | None = None) -> None:
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.kind == "delay":
            time.sleep(self.delay)
        elif self.kind == "corrupt":
            if path is None:
                raise ValueError("corrupt faults need the target file path")
            self.corrupt_file(path)
        elif self.kind in NETWORK_KINDS:
            # Network kinds need connection context; the fabric worker's
            # and serving daemon's response seams interpret them
            # themselves after claim().
            raise ValueError(
                f"{self.kind!r} fires at a response seam, not through fire()"
            )
        else:
            raise FaultInjected(
                f"scripted fault at check #{self.at_check} "
                f"(pid {os.getpid()})"
            )

    def corrupt_file(self, path: str) -> None:
        """Damage ``path`` in place, simulating torn/garbled disk state.

        ``"truncate"`` cuts the file to half its size (a torn write that
        an atomic-rename store should have made impossible — which is
        exactly why the *reader* must still survive it: the file may come
        from an older tool, a different filesystem, or a byte-flipping
        disk).  ``"garble"`` overwrites a span in the middle with a
        repeating marker, leaving the length intact so only content
        validation can catch it.
        """
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            if self.corrupt_mode == "truncate":
                handle.truncate(size // 2)
            else:
                span = max(1, min(64, size // 2))
                handle.seek(max(0, size // 2 - span // 2))
                handle.write(b"\xde\xad" * ((span + 1) // 2))
            handle.flush()
            os.fsync(handle.fileno())


class FaultyClass:
    """A query-class wrapper whose membership tests run a fault plan.

    Delegates ``kind``/``name`` and every membership entry point to the
    wrapped class, counting invocations; when the count hits the plan's
    ``at_check`` and the plan's token is successfully claimed, the fault
    fires *before* the real check runs.  The invocation count is
    per-process instance state (each worker's unpickled copy counts its
    own checks); the token file is the cross-process coordinator.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._checks = 0

    @property
    def kind(self):
        return self._inner.kind

    @property
    def name(self):
        return self._inner.name

    def _maybe_fire(self) -> None:
        self._checks += 1
        if self._checks == self._plan.at_check and self._plan.claim():
            self._plan.fire()

    def contains_tableau(self, tableau):
        self._maybe_fire()
        return self._inner.contains_tableau(tableau)

    def contains_structure(self, structure):
        self._maybe_fire()
        return self._inner.contains_structure(structure)

    def contains_graph(self, graph):
        self._maybe_fire()
        return self._inner.contains_graph(graph)

    def contains_hypergraph(self, hypergraph):
        self._maybe_fire()
        return self._inner.contains_hypergraph(hypergraph)

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def __getstate__(self):
        return {"inner": self._inner, "plan": self._plan, "checks": self._checks}

    def __setstate__(self, state):
        self._inner = state["inner"]
        self._plan = state["plan"]
        self._checks = state["checks"]
