"""Deterministic fault injection at the pipeline's stage-2 seam.

The robustness machinery (pool respawn, batch-timeout quarantine,
checkpoint/resume, budget stops) is about what happens when something
*external* goes wrong — a worker OOM-killed, a check that hangs, a process
that dies mid-run.  To test it deterministically, this module wraps a
:class:`~repro.core.classes.QueryClass` in a :class:`FaultyClass` whose
membership tests fire a scripted fault (:class:`FaultPlan`) the *n*-th
time they run:

* ``kind="kill"`` — ``SIGKILL`` to the current process.  Inside a pool
  worker this breaks the whole ``ProcessPoolExecutor`` (the
  ``BrokenProcessPool`` path); in the driver it simulates process death
  for checkpoint/resume tests.
* ``kind="delay"`` — sleep ``delay`` seconds, simulating a hung check for
  the per-batch timeout path.
* ``kind="raise"`` — raise :class:`FaultInjected`, the poisoned-candidate
  path.

Faults fire **exactly once across processes**: the plan claims a *token
file* with ``O_CREAT | O_EXCL`` — an atomic filesystem test-and-set every
fork shares — before firing, so a respawned pool (which re-runs the lost
batch, reaching the same n-th check again) does not re-fire and the run
can complete.  Everything is picklable, so a ``FaultyClass`` travels to
pool workers exactly like a real class.

Simulated OOM needs no wrapper: inject an ``rss_probe`` returning an
over-limit figure into :class:`~repro.runtime.budget.RunBudget`.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = ["FaultInjected", "FaultPlan", "FaultyClass"]


class FaultInjected(RuntimeError):
    """The scripted exception of a ``kind="raise"`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """A scripted fault: fire ``kind`` on the ``at_check``-th check.

    ``at_check`` counts membership-test invocations (1-based) *in the
    process where the count is reached* — each pool worker counts its own
    checks, so under a pool the fault fires in whichever worker reaches
    the count first (the token file keeps it to one firing overall).
    ``token_path`` must point into a fresh per-test directory.
    """

    kind: str  # "kill" | "delay" | "raise"
    at_check: int
    token_path: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "delay", "raise"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_check < 1:
            raise ValueError("at_check is 1-based and must be >= 1")

    def claim(self) -> bool:
        """Atomically claim the single firing (False: already fired)."""
        try:
            fd = os.open(self.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self) -> None:
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.kind == "delay":
            time.sleep(self.delay)
        else:
            raise FaultInjected(
                f"scripted fault at check #{self.at_check} "
                f"(pid {os.getpid()})"
            )


class FaultyClass:
    """A query-class wrapper whose membership tests run a fault plan.

    Delegates ``kind``/``name`` and every membership entry point to the
    wrapped class, counting invocations; when the count hits the plan's
    ``at_check`` and the plan's token is successfully claimed, the fault
    fires *before* the real check runs.  The invocation count is
    per-process instance state (each worker's unpickled copy counts its
    own checks); the token file is the cross-process coordinator.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._checks = 0

    @property
    def kind(self):
        return self._inner.kind

    @property
    def name(self):
        return self._inner.name

    def _maybe_fire(self) -> None:
        self._checks += 1
        if self._checks == self._plan.at_check and self._plan.claim():
            self._plan.fire()

    def contains_tableau(self, tableau):
        self._maybe_fire()
        return self._inner.contains_tableau(tableau)

    def contains_structure(self, structure):
        self._maybe_fire()
        return self._inner.contains_structure(structure)

    def contains_graph(self, graph):
        self._maybe_fire()
        return self._inner.contains_graph(graph)

    def contains_hypergraph(self, hypergraph):
        self._maybe_fire()
        return self._inner.contains_hypergraph(hypergraph)

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def __getstate__(self):
        return {"inner": self._inner, "plan": self._plan, "checks": self._checks}

    def __setstate__(self, state):
        self._inner = state["inner"]
        self._plan = state["plan"]
        self._checks = state["checks"]
