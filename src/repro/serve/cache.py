"""The canonical-form result cache behind the serving daemon.

The cache exploits the same observation the engine's ``hom_le`` memo
exploits per-pair: approximation results are isomorphism-invariant, and —
because the frontier is defined up to homomorphic equivalence — invariant
across *hom-equivalent* inputs.  :func:`canonical_result_key` therefore
keys a request by the canonical form of the **core** of its tableau
(plus the class and the result-shaping knobs): two clients sending
syntactically different but equivalent queries resolve to one slot, and
the second is served without running the pipeline at all.

Two tiers:

* an in-memory LRU (``capacity`` entries, and optionally ``max_bytes``
  of serialized payload — whichever bound is hit first evicts) serving
  the hot set, and
* an optional disk tier (one file per entry, written with
  :func:`repro.runtime.persist.atomic_pickle` — the checkpoint module's
  tmp+rename discipline) so a restarted server comes up warm.  Several
  processes (a serving fleet) may share one disk tier: entry writes are
  atomic per file, and the observability index is merged under a file
  lock so concurrent flushes never lose a writer's section.

Disk reads are **fail-closed but never fatal**: an entry that is
unreadable, has the wrong version, or whose embedded key does not match
the probe (torn write, hash collision, stale tool) is *quarantined* —
renamed aside with a ``.quarantined`` suffix, logged, counted — and
reported as a miss, so corruption costs one recomputation, never a crash.
:data:`~repro.testing.faults.FaultPlan` ``kind="corrupt"`` plans hook the
write path (the *n*-th disk-entry write is damaged right after landing)
to drill exactly this recovery deterministically.

Only *complete* results belong in the cache: the server declines to store
budget-exhausted (partial) frontiers and fault-degraded runs, because a
partial answer served warm would otherwise shadow the complete one
forever.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.homomorphism.engine import default_engine
from repro.runtime.persist import (
    PersistError,
    atomic_pickle,
    atomic_write_bytes,
    file_lock,
    load_pickle,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ResultCache",
    "canonical_representative",
    "canonical_result_key",
]

logger = logging.getLogger("repro.serve.cache")

CACHE_VERSION = 1

_ENTRY_SUFFIX = ".entry"
_QUARANTINE_SUFFIX = ".quarantined"
INDEX_FILENAME = "index.json"
INDEX_LOCK_FILENAME = "index.lock"


def canonical_representative(tableau):
    """A name-invariant representative of the tableau's equivalence class.

    The *core* of the tableau (hom-equivalent queries have isomorphic
    cores) with its elements renamed by the engine's color-refinement
    canonizer: every member of the class — however its variables were
    spelled — decodes to the **identical** tableau, so both the cache key
    and the pipeline's output (the server computes on the representative)
    are invariant across phrasings, which is what makes warm answers
    bit-identical to cold ones class-wide.  Beyond the canonizer's effort
    caps the core is returned with its original names — still correct,
    the cache just stops unifying non-identical spellings of that class.
    """
    from repro.cq.structure import Structure
    from repro.cq.tableau import Tableau
    from repro.homomorphism.cores import core_tableau

    core = core_tableau(tableau)
    key = default_engine().canonical_key(core)
    if key is None:
        return core
    n, free_count, relations, dist = key
    if free_count:  # isolated elements have no canonical identity
        return core
    # The key's coloring is discrete but its values are arbitrary distinct
    # ints (individualized elements keep an out-of-range color); ranking
    # them is still a deterministic function of the canonical key, hence
    # isomorphism-invariant.
    colors = sorted(
        {color for _, rows in relations for row in rows for color in row}
        | set(dist)
    )
    if len(colors) != n:  # defensive: never trade correctness for unification
        return core
    names = {color: f"v{rank}" for rank, color in enumerate(colors)}
    structure = Structure(
        {
            relation: [tuple(names[color] for color in row) for row in rows]
            for relation, rows in relations
        },
        domain=list(names.values()),
    )
    return Tableau(structure, tuple(names[color] for color in dist))


def canonical_result_key(tableau, cls, knobs: tuple) -> tuple:
    """The cache key of one approximation request.

    ``tableau`` is the request query's tableau; the key encodes its
    :func:`canonical_representative`, so hom-equivalent requests resolve
    to one slot.  ``cls`` contributes its name; ``knobs`` is the caller's
    tuple of every result-shaping configuration value (method, all-vs-one,
    extension caps, …) — anything that can change the answer must be in
    it.
    """
    from repro.core.pipeline import encode_tableau

    representative = canonical_representative(tableau)
    return (CACHE_VERSION, encode_tableau(representative), cls.name, tuple(knobs))


@dataclass
class CacheStats:
    """Counters of one cache instance's lifetime (process-local)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    store_declined: int = 0
    evictions: int = 0
    quarantined: int = 0
    flushes: int = 0
    created_at: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        lookups = self.memory_hits + self.disk_hits + self.misses
        hits = self.memory_hits + self.disk_hits
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_declined": self.store_declined,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "flushes": self.flushes,
            "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
        }


class ResultCache:
    """Two-tier (memory LRU + disk) result store keyed by canonical form.

    Thread-safe: the serving executor may run several requests at once.
    ``fault_plan`` accepts a :class:`~repro.testing.faults.FaultPlan` of
    ``kind="corrupt"`` whose ``at_check`` counts disk-entry writes — the
    deterministic corruption drill described in the module docstring.
    """

    def __init__(
        self,
        capacity: int = 1024,
        disk_dir: str | os.PathLike | None = None,
        *,
        max_bytes: int | None = None,
        fault_plan=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if fault_plan is not None and fault_plan.kind != "corrupt":
            raise ValueError(
                "ResultCache only hosts corrupt fault plans "
                f"(got kind={fault_plan.kind!r})"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.disk_dir = os.fspath(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            os.makedirs(self.disk_dir, exist_ok=True)
        self.stats = CacheStats()
        self._fault_plan = fault_plan
        self._memory: OrderedDict[tuple, Any] = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self._disk_writes = 0

    # ---------------------------------------------------------------- paths

    def _entry_path(self, key: tuple) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.disk_dir, digest + _ENTRY_SUFFIX)

    def disk_entries(self) -> int:
        """Number of (non-quarantined) entries in the disk tier."""
        if self.disk_dir is None:
            return 0
        return sum(
            1
            for name in os.listdir(self.disk_dir)
            if name.endswith(_ENTRY_SUFFIX)
        )

    def resident_bytes(self) -> int:
        """Serialized size of the in-memory tier (the ``max_bytes`` gauge)."""
        with self._lock:
            return self._resident_bytes

    # --------------------------------------------------------------- lookup

    def get(self, key: tuple) -> Any | None:
        """The cached value, promoting disk hits into memory; ``None`` = miss."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
            value = self._disk_probe(key)
            if value is not None:
                self.stats.disk_hits += 1
                self._admit(key, value)
                return value
            self.stats.misses += 1
            return None

    def _disk_probe(self, key: tuple) -> Any | None:
        if self.disk_dir is None:
            return None
        path = self._entry_path(key)
        if not os.path.exists(path):
            return None
        try:
            payload = load_pickle(path)
        except PersistError as exc:
            self._quarantine(path, f"unreadable ({exc})")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or "key" not in payload
            or "value" not in payload
        ):
            self._quarantine(path, "malformed payload")
            return None
        if payload["key"] != key:
            # sha256 collisions do not happen; a mismatched key means the
            # bytes on disk are not what this store wrote.
            self._quarantine(path, "embedded key mismatch")
            return None
        return payload["value"]

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a bad entry aside (miss, never a crash) and log it."""
        self.stats.quarantined += 1
        aside = path + _QUARANTINE_SUFFIX
        try:
            os.replace(path, aside)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                aside = "<unremovable>"
        logger.warning(
            "quarantined cache entry %s: %s (kept at %s)", path, reason, aside
        )

    # ---------------------------------------------------------------- store

    def put(self, key: tuple, value: Any) -> None:
        """Store a result in memory and (write-through) on disk."""
        with self._lock:
            self._admit(key, value)
            self.stats.stores += 1
            if self.disk_dir is None:
                return
            path = self._entry_path(key)
            atomic_pickle(
                path, {"version": CACHE_VERSION, "key": key, "value": value}
            )
            self._disk_writes += 1
            plan = self._fault_plan
            if (
                plan is not None
                and self._disk_writes == plan.at_check
                and plan.claim()
            ):
                plan.fire(path)

    def _admit(self, key: tuple, value: Any) -> None:
        size = len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        if key in self._memory:
            self._resident_bytes -= self._sizes.get(key, 0)
        self._memory[key] = value
        self._memory.move_to_end(key)
        self._sizes[key] = size
        self._resident_bytes += size
        # Two budgets, one LRU order: evict until both hold.  A single
        # entry larger than the whole byte budget stays resident (evicting
        # the thing just admitted would make every oversized result a
        # permanent miss) — the budget then recovers on the next admit.
        while len(self._memory) > self.capacity or (
            self.max_bytes is not None
            and self._resident_bytes > self.max_bytes
            and len(self._memory) > 1
        ):
            evicted, _ = self._memory.popitem(last=False)
            self._resident_bytes -= self._sizes.pop(evicted, 0)
            self.stats.evictions += 1

    # ---------------------------------------------------------------- flush

    def flush(self) -> str | None:
        """Write the cache index (entry count + stats) next to the entries.

        Entries themselves are write-through — each ``put`` already landed
        atomically — so the index is pure observability: the drain path
        writes it so an operator (and the lifecycle tests) can see the
        shutdown-time state of the tier.  Returns the index path, or
        ``None`` without a disk tier.

        Multi-process safe: a fleet of workers shares one disk tier, and
        each drains on its own schedule.  The flush is a locked
        read-modify-write — this writer's section replaces its slot under
        ``writers`` (keyed by pid), the top-level ``stats`` are the merge
        over every section, and ``disk_entries`` is recounted from the
        shared directory — so the last flusher's index reflects the whole
        fleet, not just itself.
        """
        with self._lock:
            self.stats.flushes += 1
            if self.disk_dir is None:
                return None
            index_path = os.path.join(self.disk_dir, INDEX_FILENAME)
            lock_path = os.path.join(self.disk_dir, INDEX_LOCK_FILENAME)
            mine = {
                "flushed_at": time.time(),
                "memory_entries": len(self._memory),
                "resident_bytes": self._resident_bytes,
                "stats": self.stats.as_dict(),
            }
            with file_lock(lock_path):
                writers: dict[str, Any] = {}
                try:
                    with open(index_path, "r", encoding="utf-8") as handle:
                        existing = json.load(handle)
                    if isinstance(existing, dict) and isinstance(
                        existing.get("writers"), dict
                    ):
                        writers = existing["writers"]
                except (OSError, json.JSONDecodeError, ValueError):
                    pass  # first flush, or an unreadable index: start fresh
                writers[str(os.getpid())] = mine
                sections = [
                    writer.get("stats", {})
                    for writer in writers.values()
                    if isinstance(writer, dict)
                ]
                payload = {
                    "version": CACHE_VERSION,
                    "flushed_at": mine["flushed_at"],
                    "memory_entries": sum(
                        writer.get("memory_entries", 0)
                        for writer in writers.values()
                        if isinstance(writer, dict)
                    ),
                    "disk_entries": self.disk_entries(),
                    "stats": _merge_stat_sections(sections),
                    "writers": writers,
                }
                atomic_write_bytes(
                    index_path, json.dumps(payload, indent=2).encode("utf-8")
                )
            return index_path


def _merge_stat_sections(sections: list[dict]) -> dict:
    """Fold per-writer :meth:`CacheStats.as_dict` payloads into one.

    Counters sum; the derived ``hit_rate`` is recomputed from the summed
    counters rather than averaged (a writer that served one request must
    not weigh as much as one that served a thousand).
    """
    merged: dict[str, Any] = {}
    for section in sections:
        for name, value in section.items():
            if name == "hit_rate" or not isinstance(value, (int, float)):
                continue
            merged[name] = merged.get(name, 0) + value
    lookups = (
        merged.get("memory_hits", 0)
        + merged.get("disk_hits", 0)
        + merged.get("misses", 0)
    )
    hits = merged.get("memory_hits", 0) + merged.get("disk_hits", 0)
    merged["hit_rate"] = round(hits / lookups, 6) if lookups else 0.0
    return merged
