"""The supervised serving fleet: crash-healing multi-process serving.

One ``repro fleet`` process runs N :class:`~repro.serve.server.
ApproximationServer` *worker* subprocesses over a single shared disk
cache tier, and fronts them with an asyncio router speaking the same
JSON-lines protocol the workers speak — a client cannot tell a fleet
from a single server, except that the fleet survives what kills a
server.

**Supervision** reuses the fabric coordinator's liveness discipline:

* *death* is detected two ways — ``waitpid`` (a worker whose process
  exited is dead immediately) and the periodic health probe, where only
  a *pong* counts as alive: a ``SIGSTOP``'d worker still accepts
  connects, so the probe sends ``{"op": "health"}`` on a fresh
  connection and demands a response within the timeout.  Two consecutive
  probe misses convict the worker (it is ``SIGKILL``'d and treated as
  dead);
* *restart* follows :func:`repro.parallel.backoff_delay` —
  capped-exponential, so a worker that keeps dying backs off instead of
  spinning — behind a restart-storm circuit breaker: more than
  ``max_restarts`` deaths inside ``restart_window`` seconds flips the
  slot to a structured **degraded** mode (it is reported in ``stats``
  and never restarted again) rather than a silent crash loop.

**Routing** balances by least outstanding requests (deterministic
slot-order tie-break), retries connection-kind faults — refused connect,
dropped connection, garbled frame — on a *different* worker with
backoff, and *hedges* stragglers: a request outstanding longer than
``hedge_after`` is duplicated on another worker and the first response
wins.  Hedging is safe because results are idempotent under the
canonical result key — the loser's answer is dropped with its
connection, and both computations would have been bit-identical anyway.
Rejections are always data: a fleet with no live workers answers
``overloaded`` (retryable, flagged ``degraded``), never a dropped
connection.

**Drain** on ``SIGTERM`` (or the ``shutdown`` op) is rolling: the
listener closes, new work is refused ``shutting-down``, in-flight
requests complete, then each worker is ``SIGTERM``'d and awaited *one at
a time* — each flushes its own section of the shared cache index
(merged under the index lock, see :meth:`repro.serve.cache.ResultCache.
flush`) on its way out.

Chaos arming: ``worker_fault_args`` maps a slot index to extra ``repro
serve`` CLI arguments (``--fault-kind`` …) for that slot's *first*
incarnation only — a restarted worker always comes back clean, which is
exactly the repair the drills assert.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core import DEFAULT_CONFIG
from repro.parallel import backoff_delay
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["FleetConfig", "Fleet"]

logger = logging.getLogger("repro.serve.fleet")


@dataclass
class FleetConfig:
    """Knobs of one serving fleet (supervisor + router + N workers).

    Exactly one of ``socket_path`` (the router's unix socket) or ``host``
    must be set.  ``run_dir`` holds the per-worker unix sockets; it
    defaults to the router socket's directory.  ``cache_dir`` is the
    *shared* disk tier — every worker reads and writes the same entries,
    so a request recomputed after a crash usually lands warm.

    The worker policy block mirrors :class:`~repro.serve.server.
    ServerConfig` (``pipeline_workers`` is that config's ``workers`` —
    the pool *inside* each request's pipeline, not the fleet size).
    """

    workers: int = 2
    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    run_dir: str | None = None
    cache_dir: str | None = None
    # ---- worker policy passthrough (per ApproximationServer) ----
    queue_limit: int = 32
    concurrency: int = 2
    request_deadline: float | None = None
    memory_limit: int | None = None
    max_candidates: int | None = None
    exact_limit: int = DEFAULT_CONFIG.exact_limit
    max_extra_atoms: int = DEFAULT_CONFIG.max_extra_atoms
    pipeline_workers: int = 1
    cache_capacity: int = 1024
    cache_max_bytes: int | None = None
    enable_test_ops: bool = False
    # ---- supervision ----
    health_interval: float = 0.5
    health_timeout: float = 2.0
    health_misses: int = 2
    restart_backoff_base: float = 0.2
    restart_backoff_cap: float = 5.0
    max_restarts: int = 5
    restart_window: float = 30.0
    worker_start_deadline: float = 60.0
    # ---- routing ----
    retry_attempts: int = 3
    retry_backoff_base: float = 0.05
    retry_backoff_cap: float = 1.0
    hedge_after: float | None = None
    # ---- chaos arming: slot index -> extra `repro serve` args, first
    # incarnation only (restarts always spawn clean) ----
    worker_fault_args: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.host is None):
            raise ValueError("set exactly one of socket_path or host")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.run_dir is None:
            if self.socket_path is None:
                raise ValueError("a TCP-fronted fleet needs an explicit run_dir")
            self.run_dir = os.path.dirname(os.path.abspath(self.socket_path))
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")


class _Slot:
    """One supervised worker position: process, socket, restart history."""

    def __init__(self, index: int, socket_path: str) -> None:
        self.index = index
        self.socket_path = socket_path
        self.proc: subprocess.Popen | None = None
        self.generation = 0  # incarnations spawned (0 = never)
        self.ready = False
        self.restarting = False
        self.degraded = False
        self.degraded_reason: str | None = None
        self.outstanding = 0
        self.probe_misses = 0
        self.restart_times: deque[float] = deque()

    def alive(self) -> bool:
        return (
            self.ready
            and not self.degraded
            and not self.restarting
            and self.proc is not None
            and self.proc.poll() is None
        )

    def summary(self) -> dict:
        proc = self.proc
        return {
            "index": self.index,
            "socket": self.socket_path,
            "pid": proc.pid if proc is not None else None,
            "exited": proc.returncode if proc is not None else None,
            "generation": self.generation,
            "ready": self.ready,
            "restarting": self.restarting,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "outstanding": self.outstanding,
            "restarts_in_window": len(self.restart_times),
        }


class _ForwardFault(Exception):
    """A connection-kind failure of one forwarded request."""


class Fleet:
    """Supervisor + router over N serving worker processes."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        assert config.run_dir is not None
        self.slots = [
            _Slot(i, os.path.join(config.run_dir, f"worker-{i}.sock"))
            for i in range(config.workers)
        ]
        self.started_at = time.time()
        self.address: Any = None
        self._draining = False
        self._shutdown_event: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._connections: set[asyncio.Task] = set()
        self._restart_tasks: set[asyncio.Task] = set()
        self._active = 0
        # Router/supervisor counters for the fleet stats endpoint.
        self.requests = 0
        self.routed = 0
        self.router_retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.unrouteable = 0
        self.refused_draining = 0
        self.bad_requests = 0
        self.worker_deaths = 0
        self.worker_restarts = 0

    # -------------------------------------------------------------- lifecycle

    def request_shutdown(self) -> None:
        """Begin the rolling drain (idempotent; signal-handler safe)."""
        self._draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def run(self) -> None:
        """Spawn the fleet, route until a shutdown is requested, drain."""
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self._draining:
            self._shutdown_event.set()
        os.makedirs(self.config.run_dir, exist_ok=True)
        for slot in self.slots:
            self._spawn(slot)
        ready = await asyncio.gather(
            *(
                self._await_ready(slot, self.config.worker_start_deadline)
                for slot in self.slots
            )
        )
        if not any(ready):
            self._kill_all()
            raise RuntimeError("no fleet worker became ready")
        for slot, ok in zip(self.slots, ready):
            if not ok:
                self._schedule_restart(slot, "never became ready")

        limit = MAX_LINE_BYTES + 1024
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.socket_path, limit=limit
            )
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
            self.address = self._server.sockets[0].getsockname()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # hosted off the main thread; shutdown op still works
        print(
            f"repro fleet: router listening on {self.address} "
            f"({sum(1 for s in self.slots if s.alive())}/"
            f"{self.config.workers} workers ready)",
            file=sys.stderr,
        )
        monitor = asyncio.create_task(self._monitor())
        try:
            await self._shutdown_event.wait()
            await self._drain_router()
        finally:
            monitor.cancel()
            for task in list(self._restart_tasks):
                task.cancel()
            await self._shutdown_workers()
            if self.config.socket_path is not None:
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
        print(
            f"repro fleet: drained (routed {self.routed}, retried "
            f"{self.router_retries}, hedged {self.hedges}, healed "
            f"{self.worker_restarts} worker death(s)); workers stopped",
            file=sys.stderr,
        )

    # ------------------------------------------------------------- supervisor

    def _worker_command(self, slot: _Slot) -> list[str]:
        cfg = self.config
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            slot.socket_path,
            "--queue-limit",
            str(cfg.queue_limit),
            "--concurrency",
            str(cfg.concurrency),
            "--exact-limit",
            str(cfg.exact_limit),
            "--max-extra-atoms",
            str(cfg.max_extra_atoms),
            "--workers",
            str(cfg.pipeline_workers),
            "--cache-capacity",
            str(cfg.cache_capacity),
        ]
        if cfg.request_deadline is not None:
            command += ["--deadline", str(cfg.request_deadline)]
        if cfg.memory_limit is not None:
            command += ["--memory-limit", str(cfg.memory_limit)]
        if cfg.max_candidates is not None:
            command += ["--max-candidates", str(cfg.max_candidates)]
        if cfg.cache_max_bytes is not None:
            command += ["--cache-max-bytes", str(cfg.cache_max_bytes)]
        if cfg.cache_dir is not None:
            command += ["--cache-dir", cfg.cache_dir]
        if cfg.enable_test_ops:
            command += ["--enable-test-ops"]
        if slot.generation == 0:  # chaos arming: first incarnation only
            command += list(cfg.worker_fault_args.get(slot.index, ()))
        return command

    def _spawn(self, slot: _Slot) -> None:
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        try:
            os.unlink(slot.socket_path)
        except OSError:
            pass
        slot.proc = subprocess.Popen(
            self._worker_command(slot),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        slot.generation += 1
        slot.ready = False
        slot.probe_misses = 0

    async def _probe(self, slot: _Slot, op: str = "health") -> dict | None:
        """One liveness/stats probe on a fresh connection.

        Only a response counts as alive — a ``SIGSTOP``'d worker still
        *accepts* (the listener backlog is kernel state), so a connect is
        not a pong.  Returns the response payload, or ``None``.
        """
        timeout = self.config.health_timeout
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(
                    slot.socket_path, limit=MAX_LINE_BYTES + 1024
                ),
                timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(encode_message({"op": op}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                return None
            response = decode_message(line)
            return response if response.get("ok") else None
        except (OSError, asyncio.TimeoutError, ProtocolError):
            return None
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _await_ready(self, slot: _Slot, deadline: float) -> bool:
        end = time.monotonic() + deadline
        delay = 0.02
        while time.monotonic() < end:
            if slot.proc is None or slot.proc.poll() is not None:
                return False  # died while starting
            if await self._probe(slot) is not None:
                slot.ready = True
                slot.probe_misses = 0
                return True
            await asyncio.sleep(delay)
            delay = min(0.3, delay * 1.5)
        return False

    async def _monitor(self) -> None:
        """Detect deaths (waitpid + probe) and schedule restarts."""
        while not self._draining:
            await asyncio.sleep(self.config.health_interval)
            for slot in self.slots:
                if self._draining:
                    return
                if slot.degraded or slot.restarting or slot.proc is None:
                    continue
                code = slot.proc.poll()
                if code is not None:
                    self._schedule_restart(slot, f"exited with code {code}")
                    continue
                if await self._probe(slot) is not None:
                    slot.probe_misses = 0
                    continue
                slot.probe_misses += 1
                if slot.probe_misses >= self.config.health_misses:
                    # Hung, not dead (SIGSTOP, wedged loop): convict it.
                    slot.ready = False
                    try:
                        slot.proc.kill()
                    except OSError:
                        pass
                    self._schedule_restart(
                        slot,
                        f"unresponsive ({slot.probe_misses} probe misses; "
                        "no pong within the timeout)",
                    )

    def _schedule_restart(self, slot: _Slot, reason: str) -> None:
        if slot.restarting or slot.degraded:
            return
        slot.restarting = True
        slot.ready = False
        task = asyncio.get_running_loop().create_task(
            self._restart(slot, reason)
        )
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart(self, slot: _Slot, reason: str) -> None:
        """Heal one dead/hung slot: reap, backoff, respawn, re-probe.

        Loops until the worker is back (counted in ``worker_restarts``),
        the restart-storm breaker trips (structured degraded mode), or
        the fleet drains.
        """
        loop = asyncio.get_running_loop()
        try:
            while not self._draining:
                self.worker_deaths += 1
                logger.warning(
                    "fleet worker %d (gen %d) down: %s",
                    slot.index,
                    slot.generation,
                    reason,
                )
                proc = slot.proc
                if proc is not None:
                    if proc.poll() is None:
                        try:
                            proc.kill()
                        except OSError:
                            pass
                    await loop.run_in_executor(None, proc.wait)
                now = time.monotonic()
                window = slot.restart_times
                while window and now - window[0] > self.config.restart_window:
                    window.popleft()
                if len(window) >= self.config.max_restarts:
                    # The circuit breaker: a crash-looping worker is
                    # retired loudly, never silently respun forever.
                    slot.degraded = True
                    slot.degraded_reason = (
                        f"{len(window)} restarts within "
                        f"{self.config.restart_window}s (last: {reason})"
                    )
                    logger.error(
                        "fleet worker %d degraded: %s",
                        slot.index,
                        slot.degraded_reason,
                    )
                    return
                window.append(now)
                await asyncio.sleep(
                    backoff_delay(
                        len(window) - 1,
                        base=self.config.restart_backoff_base,
                        cap=self.config.restart_backoff_cap,
                    )
                )
                if self._draining:
                    return
                self._spawn(slot)
                if await self._await_ready(
                    slot, self.config.worker_start_deadline
                ):
                    self.worker_restarts += 1
                    logger.info(
                        "fleet worker %d healed (gen %d, pid %s)",
                        slot.index,
                        slot.generation,
                        slot.proc.pid if slot.proc else None,
                    )
                    return
                reason = "respawned worker never became ready"
        finally:
            slot.restarting = False

    def _kill_all(self) -> None:
        for slot in self.slots:
            if slot.proc is not None and slot.proc.poll() is None:
                try:
                    slot.proc.kill()
                except OSError:
                    pass

    async def _shutdown_workers(self) -> None:
        """Rolling drain: SIGTERM + await each worker one at a time."""
        loop = asyncio.get_running_loop()
        for slot in self.slots:
            proc = slot.proc
            slot.ready = False
            if proc is None or proc.poll() is not None:
                continue
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:
                continue
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, proc.wait), timeout=60.0
                )
            except asyncio.TimeoutError:
                logger.error(
                    "fleet worker %d did not drain; killing it", slot.index
                )
                proc.kill()
                await loop.run_in_executor(None, proc.wait)

    # ----------------------------------------------------------------- router

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer,
                        error_response(
                            None,
                            kind="bad-request",
                            message=f"line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if await self._handle_line(writer, line):
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _handle_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> bool:
        self.requests += 1
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.bad_requests += 1
            await self._send(
                writer, error_response(None, kind=exc.kind, message=str(exc))
            )
            return exc.fatal
        request_id = request.get("id")
        op = request["op"]
        if op in ("stats", "health"):
            payload = await self.stats_payload(probe_workers=op == "stats")
            await self._send(writer, ok_response(request_id, **payload))
            return False
        if op == "shutdown":
            await self._send(writer, ok_response(request_id, draining=True))
            self.request_shutdown()
            return False
        if self._draining:
            self.refused_draining += 1
            await self._send(
                writer,
                error_response(
                    request_id,
                    kind="shutting-down",
                    message="fleet is draining; no new work is admitted",
                ),
            )
            return False
        self._active += 1
        try:
            response = await self._dispatch(request)
            await self._send(writer, response)
        finally:
            self._active -= 1
        return False

    def _pick_slot(self, avoid: frozenset[int] | set[int]) -> _Slot | None:
        """Least-outstanding live worker, lowest index breaking ties."""
        candidates = [
            slot
            for slot in self.slots
            if slot.alive() and slot.index not in avoid
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda slot: (slot.outstanding, slot.index))

    async def _forward_once(self, slot: _Slot, request: dict) -> dict:
        """One forwarded request on one fresh backend connection."""
        slot.outstanding += 1
        self.routed += 1
        try:
            reader, writer = await asyncio.open_unix_connection(
                slot.socket_path, limit=MAX_LINE_BYTES + 1024
            )
            try:
                writer.write(encode_message(request))
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ConnectionError("worker closed the connection")
                return decode_message(line)  # ProtocolError on a garbled frame
            finally:
                try:
                    writer.close()
                except Exception:
                    pass
        finally:
            slot.outstanding -= 1

    async def _forward_hedged(self, primary_slot: _Slot, request: dict) -> dict:
        """Forward with straggler hedging; first response wins.

        Safe under the canonical result key: primary and hedge compute
        (or warm-hit) bit-identical answers, so dropping the loser loses
        nothing.  One hedge per attempt — fan-out is bounded at 2.
        """
        primary = asyncio.ensure_future(self._forward_once(primary_slot, request))
        tasks: dict[asyncio.Task, _Slot] = {primary: primary_slot}
        hedged = False
        last_error: Exception | None = None
        try:
            while tasks:
                timeout = (
                    self.config.hedge_after
                    if self.config.hedge_after is not None and not hedged
                    else None
                )
                done, _ = await asyncio.wait(
                    set(tasks),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # The primary is a straggler: duplicate it elsewhere.
                    hedged = True
                    other = self._pick_slot(
                        {slot.index for slot in tasks.values()}
                    )
                    if other is not None:
                        self.hedges += 1
                        tasks[
                            asyncio.ensure_future(
                                self._forward_once(other, request)
                            )
                        ] = other
                    continue
                for task in done:
                    tasks.pop(task)
                    try:
                        response = task.result()
                    except (ConnectionError, OSError, ProtocolError) as exc:
                        last_error = exc
                        continue
                    if hedged and task is not primary:
                        self.hedge_wins += 1
                    return response
            raise _ForwardFault(repr(last_error))
        finally:
            for task in tasks:
                task.cancel()
                task.add_done_callback(
                    lambda t: t.cancelled() or t.exception()
                )

    async def _dispatch(self, request: dict) -> dict:
        """Route one work op: balance, retry elsewhere, hedge stragglers."""
        request_id = request.get("id")
        avoid: set[int] = set()
        last_fault: _ForwardFault | None = None
        for attempt in range(self.config.retry_attempts):
            if attempt:
                self.router_retries += 1
                await asyncio.sleep(
                    backoff_delay(
                        attempt - 1,
                        base=self.config.retry_backoff_base,
                        cap=self.config.retry_backoff_cap,
                    )
                )
            # Prefer a worker this request has not failed on; a one-worker
            # fleet (or one mid-heal) may legitimately retry in place.
            slot = self._pick_slot(avoid) or self._pick_slot(frozenset())
            if slot is None:
                self.unrouteable += 1
                return error_response(
                    request_id,
                    kind="overloaded",
                    message=(
                        "no live fleet workers (supervisor healing or "
                        "degraded); retry later"
                    ),
                    degraded=all(
                        slot.degraded or not slot.alive()
                        for slot in self.slots
                    ),
                    retryable=True,
                )
            try:
                return await self._forward_hedged(slot, request)
            except _ForwardFault as fault:
                avoid.add(slot.index)
                last_fault = fault
        self.unrouteable += 1
        return error_response(
            request_id,
            kind="overloaded",
            message=(
                f"request failed on {self.config.retry_attempts} worker "
                f"attempt(s); last fault: {last_fault}"
            ),
            retryable=True,
        )

    # ------------------------------------------------------------------ drain

    async def _drain_router(self) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        while self._active:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=2.0)

    # ------------------------------------------------------------------ stats

    async def stats_payload(self, probe_workers: bool = False) -> dict:
        live = sum(1 for slot in self.slots if slot.alive())
        payload = {
            "protocol": PROTOCOL_VERSION,
            "role": "fleet",
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "workers_configured": self.config.workers,
            "live_workers": live,
            "degraded_workers": sum(1 for slot in self.slots if slot.degraded),
            "requests": self.requests,
            "routed": self.routed,
            "router_retries": self.router_retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "unrouteable": self.unrouteable,
            "refused_draining": self.refused_draining,
            "bad_requests": self.bad_requests,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "slots": [slot.summary() for slot in self.slots],
        }
        if probe_workers:
            worker_stats: dict[str, dict] = {}
            for slot in self.slots:
                if not slot.alive():
                    continue
                stats = await self._probe(slot, op="stats")
                if stats is not None:
                    worker_stats[str(slot.index)] = {
                        name: stats.get(name)
                        for name in (
                            "pid",
                            "requests",
                            "served",
                            "queue_depth",
                            "cache",
                            "cache_disk_entries",
                            "cache_resident_bytes",
                            "cache_max_bytes",
                        )
                    }
            payload["worker_stats"] = worker_stats
        return payload
