"""The resident approximation daemon.

One process hosts one engine (the process-wide
:func:`~repro.homomorphism.engine.default_engine`, whose ``hom_le`` /
canonical-key / index memos therefore survive across requests) behind an
asyncio front end speaking the JSON-lines protocol of
:mod:`repro.serve.protocol` over a unix or TCP stream socket.

Fault isolation is the design center — this is PR 6's robustness substrate
lifted into a serving layer, where anything that goes wrong is scoped to
*one request*:

* a request whose pipeline raises gets a structured ``internal`` error,
  the server lives on;
* a request whose pool workers die is healed inside
  :class:`~repro.parallel.ProcessExecutor` (respawn, then serial fallback
  past ``max_respawns``) — the *request* degrades to serial, the server is
  never poisoned;
* a request that exhausts its :class:`~repro.runtime.budget.RunBudget`
  (derived per request from the server's deadline/memory policy) is served
  as an explicitly-partial sound frontier (``exhausted`` set);
* a corrupt disk-cache entry is quarantined and recomputed
  (:mod:`repro.serve.cache`), never raised.

Admission control bounds the request queue (``queue_limit`` admitted at
once); excess load is *shed* with a structured ``overloaded`` response —
data, not a dropped connection.  ``SIGTERM``/``SIGINT`` (or the
``shutdown`` op) starts a graceful drain: the listener closes, new work is
refused with ``shutting-down``, in-flight requests run to completion and
their responses are written, then the cache index is flushed and
:meth:`ApproximationServer.run` returns.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.core import (
    ApproximationConfig,
    DEFAULT_CONFIG,
    PipelineStats,
    all_approximations,
    approximate,
    class_from_name,
)
from repro.cq import ConjunctiveQuery, parse_query
from repro.cq.parser import CQParseError
from repro.serve.cache import (
    ResultCache,
    canonical_representative,
    canonical_result_key,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.testing.faults import NETWORK_KINDS

__all__ = ["ServerConfig", "ApproximationServer"]


class _RequestError(Exception):
    """A request-scoped failure with a structured error kind."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass
class ServerConfig:
    """Knobs of one serving daemon.

    Exactly one of ``socket_path`` (unix socket) or ``host`` must be set.
    ``queue_limit`` bounds *admitted* requests (queued plus running);
    ``concurrency`` sizes the executor actually running pipelines.  The
    policy knobs (``request_deadline``, ``memory_limit``,
    ``max_candidates``, ``workers``, ``batch_timeout``) become each
    request's :class:`~repro.core.ApproximationConfig` — a client may ask
    for a *shorter* deadline than the server policy, never a longer one.

    ``enable_test_ops`` adds the ``sleep`` op (a request of controllable
    duration, which the lifecycle tests and fault drills need);
    ``fault_plan`` injects a :class:`~repro.testing.faults.FaultPlan`:
    ``kind="corrupt"`` plans go to the disk cache's write seam, the
    :data:`~repro.testing.faults.NETWORK_KINDS` arm the *response seam*
    (the ``at_check``-th work-op response is dropped, delayed, or garbled
    — the fleet router's retry/hedge drills), and every other kind wraps
    each request's query class in a
    :class:`~repro.testing.faults.FaultyClass` (the worker-kill drill).
    """

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    queue_limit: int = 32
    concurrency: int = 2
    request_deadline: float | None = None
    memory_limit: int | None = None
    max_candidates: int | None = None
    exact_limit: int = DEFAULT_CONFIG.exact_limit
    max_extra_atoms: int = DEFAULT_CONFIG.max_extra_atoms
    workers: int = 1
    batch_timeout: float | None = None
    cache_capacity: int = 1024
    cache_max_bytes: int | None = None
    cache_dir: str | None = None
    enable_test_ops: bool = False
    fault_plan: Any = None

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.host is None):
            raise ValueError("set exactly one of socket_path or host")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")


class ApproximationServer:
    """Resident engine + canonical result cache + admission control."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        plan = config.fault_plan
        corrupt_plan = plan if plan is not None and plan.kind == "corrupt" else None
        self._network_plan = (
            plan if plan is not None and plan.kind in NETWORK_KINDS else None
        )
        self._class_plan = (
            plan
            if plan is not None
            and plan.kind != "corrupt"
            and plan.kind not in NETWORK_KINDS
            else None
        )
        self._work_responses = 0
        self.cache = ResultCache(
            config.cache_capacity,
            config.cache_dir,
            max_bytes=config.cache_max_bytes,
            fault_plan=corrupt_plan,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.concurrency, thread_name_prefix="repro-serve"
        )
        self._active = 0
        self._draining = False
        self._shutdown_event: asyncio.Event | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._connections: set[asyncio.Task] = set()
        self.started_at = time.time()
        self.address: Any = None
        # Request-level counters for the stats/health endpoint.
        self.requests = 0
        self.served = 0
        self.load_shed = 0
        self.refused_draining = 0
        self.bad_requests = 0
        self.internal_errors = 0
        self.drained = 0
        self.fault_counters = {
            "pool_respawns": 0,
            "batch_timeouts": 0,
            "quarantined": 0,
            "serial_fallbacks": 0,
        }

    # -------------------------------------------------------------- lifecycle

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe).

        From a non-event-loop thread, schedule it with
        ``loop.call_soon_threadsafe(server.request_shutdown)``.
        """
        self._draining = True
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def run(self) -> None:
        """Serve until a shutdown is requested, then drain and return."""
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if self._draining:  # shutdown requested before start
            self._shutdown_event.set()
        limit = MAX_LINE_BYTES + 1024
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.socket_path, limit=limit
            )
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
            self.address = self._server.sockets[0].getsockname()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (tests/benchmarks hosting the server
                # in a background thread) or an unsupported platform; the
                # shutdown op and request_shutdown() still work.
                pass
        print(f"repro serve: listening on {self.address}", file=sys.stderr)
        try:
            await self._shutdown_event.wait()
            await self._drain()
        finally:
            self._executor.shutdown(wait=True)
            self.cache.flush()
            if self.config.socket_path is not None:
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
        print(
            f"repro serve: drained ({self.drained} request(s) completed "
            "during shutdown); cache index flushed",
            file=sys.stderr,
        )

    async def _drain(self) -> None:
        """Close the listener, let admitted requests finish, flush writers."""
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        while self._active:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=2.0)

    # ------------------------------------------------------------ connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Stream limit overrun: framing is gone; answer once,
                    # then hang up.
                    await self._send(
                        writer,
                        error_response(
                            None,
                            kind="bad-request",
                            message=f"line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                fatal = await self._handle_line(writer, line)
                if fatal:
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_message(payload))
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _handle_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> bool:
        """Dispatch one request line; returns whether to drop the connection."""
        self.requests += 1
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.bad_requests += 1
            await self._send(
                writer, error_response(None, kind=exc.kind, message=str(exc))
            )
            return exc.fatal
        request_id = request.get("id")
        op = request["op"]

        if op in ("stats", "health"):
            await self._send(writer, ok_response(request_id, **self.stats_payload()))
            return False

        if op == "shutdown":
            await self._send(writer, ok_response(request_id, draining=True))
            self.request_shutdown()
            return False

        if op == "sleep" and not self.config.enable_test_ops:
            self.bad_requests += 1
            await self._send(
                writer,
                error_response(
                    request_id,
                    kind="bad-request",
                    message="sleep is a test op (start the server with test ops enabled)",
                ),
            )
            return False

        # ---- admission control for the work-carrying ops ----
        if self._draining:
            self.refused_draining += 1
            await self._send(
                writer,
                error_response(
                    request_id,
                    kind="shutting-down",
                    message="server is draining; no new work is admitted",
                ),
            )
            return False
        if self._active >= self.config.queue_limit:
            self.load_shed += 1
            await self._send(
                writer,
                error_response(
                    request_id,
                    kind="overloaded",
                    message=(
                        f"request queue full ({self._active} admitted, "
                        f"limit {self.config.queue_limit}); retry later"
                    ),
                    queue_depth=self._active,
                    queue_limit=self.config.queue_limit,
                ),
            )
            return False

        self._active += 1
        try:
            loop = asyncio.get_running_loop()
            started = time.perf_counter()
            if op == "sleep":
                seconds = float(request.get("seconds", 0.1))
                await loop.run_in_executor(self._executor, time.sleep, seconds)
                response = ok_response(request_id, slept=seconds)
            else:  # approximate
                try:
                    fields = await loop.run_in_executor(
                        self._executor, self._serve_approximate, request
                    )
                    fields["seconds"] = round(time.perf_counter() - started, 6)
                    response = ok_response(request_id, **fields)
                    self.served += 1
                except _RequestError as exc:
                    if exc.kind == "bad-request":
                        self.bad_requests += 1
                    else:
                        self.internal_errors += 1
                    response = error_response(
                        request_id, kind=exc.kind, message=str(exc)
                    )
                except Exception as exc:  # fault isolation: request-scoped
                    self.internal_errors += 1
                    response = error_response(
                        request_id,
                        kind="internal",
                        message=f"{type(exc).__name__}: {exc}",
                    )
            fatal = await self._respond_work(writer, response)
            if self._draining:
                self.drained += 1
        finally:
            self._active -= 1
        return fatal

    async def _respond_work(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> bool:
        """Write one work-op response — the armed network faults' seam.

        Mirrors the fabric worker's ``_respond_shard`` discipline: the
        ``at_check``-th work-op response, token-claimed so it fires once
        across the whole fleet, is dropped (connection closed instead of
        answered), delayed, or garbled.  Returns whether the connection
        must close.
        """
        plan = self._network_plan
        if plan is not None:
            self._work_responses += 1
            if self._work_responses == plan.at_check and plan.claim():
                if plan.kind == "drop-connection":
                    return True  # close instead of answering
                if plan.kind == "delay-response":
                    await asyncio.sleep(plan.delay)
                else:  # "garble-frame"
                    writer.write(b"\xde\xad\xbe\xef not a frame\n")
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    return True
        await self._send(writer, response)
        return False

    # --------------------------------------------------------------- serving

    def _request_config(self, request: dict) -> ApproximationConfig:
        deadline = self.config.request_deadline
        asked = request.get("deadline")
        if asked is not None:
            try:
                asked = float(asked)
            except (TypeError, ValueError):
                raise _RequestError("bad-request", f"bad deadline {asked!r}")
            if asked <= 0:
                raise _RequestError("bad-request", "deadline must be positive")
            deadline = asked if deadline is None else min(asked, deadline)
        return ApproximationConfig(
            exact_limit=self.config.exact_limit,
            max_extra_atoms=self.config.max_extra_atoms,
            workers=self.config.workers,
            batch_timeout=self.config.batch_timeout,
            deadline=deadline,
            memory_limit=self.config.memory_limit,
            max_candidates=self.config.max_candidates,
        )

    def _serve_approximate(self, request: dict) -> dict:
        """Answer one approximate op (runs on the executor thread pool).

        Cache policy: the key is the canonical representative of the
        request tableau (its core, canonically renamed) plus every
        result-shaping knob, and the pipeline runs *on the representative*,
        so every hom-equivalent phrasing of a query gets the same
        bit-identical answer — cold or warm.  Only complete results are stored —
        partial (exhausted) and fault-degraded answers are served, flagged,
        and recomputed next time.
        """
        query_text = request.get("query")
        if not isinstance(query_text, str):
            raise _RequestError("bad-request", "approximate needs a 'query' string")
        try:
            query = parse_query(query_text)
        except CQParseError as exc:
            raise _RequestError("bad-request", f"unparseable query: {exc}")
        try:
            cls = class_from_name(str(request.get("cls", "TW1")))
        except ValueError as exc:
            raise _RequestError("bad-request", str(exc))
        method = request.get("method", "auto")
        if method not in ("auto", "exact", "greedy"):
            raise _RequestError("bad-request", f"unknown method {method!r}")
        serve_all = bool(request.get("all", False))

        tableau = query.tableau()
        knobs = (
            method,
            serve_all,
            self.config.exact_limit,
            self.config.max_extra_atoms,
        )
        key = canonical_result_key(tableau, cls, knobs)
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached, cached=True)

        core = canonical_representative(tableau)
        core_query = ConjunctiveQuery.from_tableau(core, prefix="v")
        config = self._request_config(request)
        cls_obj = cls
        if self._class_plan is not None:
            from repro.testing.faults import FaultyClass

            cls_obj = FaultyClass(cls, self._class_plan)
        stats = PipelineStats()
        faults: list = []
        try:
            if serve_all:
                results = all_approximations(
                    core_query, cls_obj, config, stats=stats, faults=faults
                )
            else:
                results = [
                    approximate(
                        core_query,
                        cls_obj,
                        method=method,
                        config=config,
                        stats=stats,
                        faults=faults,
                    )
                ]
        except ValueError as exc:
            # Caps and empty candidate spaces are client-actionable.
            raise _RequestError("bad-request", str(exc))

        self.fault_counters["pool_respawns"] += stats.pool_respawns
        self.fault_counters["batch_timeouts"] += stats.batch_timeouts
        self.fault_counters["quarantined"] += stats.quarantined
        self.fault_counters["serial_fallbacks"] += stats.serial_fallbacks

        value = {
            "approximations": [str(result) for result in results],
            "class": cls.name,
            "method": method,
            "all": serve_all,
            "exhausted": stats.exhausted,
            "quarantined": stats.quarantined,
            "pool_respawns": stats.pool_respawns,
            "serial_fallbacks": stats.serial_fallbacks,
            "faults": [fault.as_dict() for fault in faults],
        }
        if stats.exhausted:
            value["exhaustion_reason"] = stats.exhaustion_reason
        complete = not stats.exhausted and not faults and not stats.quarantined
        if complete:
            self.cache.put(key, value)
        return dict(value, cached=False)

    # ----------------------------------------------------------------- stats

    def stats_payload(self) -> dict:
        """The health/stats endpoint's body (also useful in-process)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "requests": self.requests,
            "served": self.served,
            "load_shed": self.load_shed,
            "refused_draining": self.refused_draining,
            "bad_requests": self.bad_requests,
            "internal_errors": self.internal_errors,
            "queue_depth": self._active,
            "queue_limit": self.config.queue_limit,
            "concurrency": self.config.concurrency,
            "cache": self.cache.stats.as_dict(),
            "cache_disk_entries": self.cache.disk_entries(),
            "cache_resident_bytes": self.cache.resident_bytes(),
            "cache_max_bytes": self.config.cache_max_bytes,
            "faults": dict(self.fault_counters),
        }
