"""The serving wire protocol: JSON lines over a stream socket.

One connection carries any number of requests; each request is a single
JSON object on its own ``\\n``-terminated line, and each gets exactly one
JSON-object response line, in request order.  Fields:

Request
    ``op`` (required) — ``"approximate"``, ``"stats"`` (alias
    ``"health"``), ``"shutdown"``, or (test builds only) ``"sleep"``.
    ``id`` (optional, any JSON scalar) — echoed verbatim on the response
    so clients can correlate pipelined requests.
    ``approximate`` ops add ``query`` (rule-notation CQ string, required),
    ``cls`` (class spec like ``"TW1"``, default ``"TW1"``), ``all``
    (bool: the full ``C-APPR_min`` set vs. one member), ``method``
    (``"auto"``/``"exact"``/``"greedy"``), and ``deadline`` (seconds; the
    server clamps it to its own policy).

Response
    ``ok`` (bool) and the echoed ``id``.  Success payloads carry
    op-specific fields (``approximations``, ``cached``, ``exhausted``,
    …); failures carry ``error = {"kind", "message"}`` where ``kind`` is
    one of ``"bad-request"`` (unparseable line or query), ``"overloaded"``
    (admission control shed the request — resubmit later),
    ``"shutting-down"`` (drain in progress), or ``"internal"``.

A malformed line still gets a structured ``bad-request`` response — the
server never answers garbage with a closed connection — but a line longer
than :data:`MAX_LINE_BYTES` terminates the connection after the error
response, since framing can no longer be trusted.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "parse_request",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request line.  Queries are strings over a small
#: vocabulary; a megabyte of JSON is not a query, it is a framing error.
MAX_LINE_BYTES = 1 << 20

#: The operations a server understands.  ``sleep`` only exists when the
#: server was started with test ops enabled (fault drills and lifecycle
#: tests need a request with a controllable duration).
KNOWN_OPS = ("approximate", "stats", "health", "shutdown", "sleep")


class ProtocolError(ValueError):
    """A request line that cannot be accepted.

    ``kind`` feeds the structured error response; ``fatal`` marks
    violations after which the byte stream itself is unusable (oversized
    line) and the connection should close once the error is sent.
    """

    def __init__(self, message: str, *, kind: str = "bad-request", fatal: bool = False):
        super().__init__(message)
        self.kind = kind
        self.fatal = fatal


def encode_message(payload: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(
    line: bytes | str, *, max_bytes: int = MAX_LINE_BYTES
) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on junk.

    ``max_bytes`` lets other users of this framing (the shard fabric
    ships pickled tableaux, which dwarf query strings) raise the line
    cap without loosening it for the serving front door.
    """
    if isinstance(line, bytes):
        if len(line) > max_bytes:
            raise ProtocolError(
                f"line exceeds {max_bytes} bytes", fatal=True
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"line is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"line is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload


def parse_request(
    line: bytes | str,
    *,
    known_ops: tuple[str, ...] = KNOWN_OPS,
    max_bytes: int = MAX_LINE_BYTES,
) -> dict[str, Any]:
    """Decode and shape-check one request frame.

    Returns the request dict with ``op`` guaranteed present and known.
    Op-specific field validation stays with the handler (the server knows
    which ops it enabled); this layer only enforces the envelope.
    ``known_ops``/``max_bytes`` let protocol dialects (the shard fabric)
    reuse the envelope with their own op vocabulary and line cap.
    """
    payload = decode_message(line, max_bytes=max_bytes)
    op = payload.get("op")
    if not isinstance(op, str) or op not in known_ops:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(known_ops)})"
        )
    return payload


def ok_response(request_id: Any = None, **fields: Any) -> dict[str, Any]:
    """A success frame: ``ok`` true, the echoed id, op-specific fields."""
    response: dict[str, Any] = {"ok": True, "id": request_id}
    response.update(fields)
    return response


def error_response(
    request_id: Any = None, *, kind: str, message: str, **fields: Any
) -> dict[str, Any]:
    """A failure frame with a structured ``error`` object.

    Load-shed and drain rejections go through here too: admission control
    answers with data, never by dropping the connection.
    """
    response: dict[str, Any] = {
        "ok": False,
        "id": request_id,
        "error": {"kind": kind, "message": message},
    }
    response.update(fields)
    return response
