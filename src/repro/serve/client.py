"""A small synchronous client for the serving daemon.

The protocol is JSON lines over a stream socket, so the client is just a
socket, a buffered reader, and :mod:`repro.serve.protocol`'s codec — no
async machinery.  One :class:`ServeClient` holds one connection and may
issue any number of requests on it; tests, the ``repro client`` CLI
subcommand, and the serving benchmark's replay loop all go through it.

:class:`ServeError` carries the structured error object of a failed
request (``kind`` of ``"overloaded"``, ``"shutting-down"``,
``"bad-request"``, or ``"internal"``), so callers can distinguish a
load-shed rejection — resubmit later — from a request that can never
succeed.

Resilience is opt-in via :class:`RetryPolicy`: a client constructed with
one reconnects and resends on connection-kind faults (refused connect,
dropped connection, garbled frame, timeout) with capped-exponential
jittered backoff, and honors ``overloaded``/``shutting-down`` rejections
as retryable-with-delay.  Resending is safe because results are
idempotent under the canonical result key — a request that was actually
served before its response was lost recomputes (or warm-hits) the same
bit-identical answer.  ``bad-request``/``internal`` never retry: they
would fail the same way again.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)

__all__ = [
    "RetryPolicy",
    "ServeClient",
    "ServeError",
    "connect",
    "wait_for_server",
]


class ServeError(RuntimeError):
    """A structured failure response from the server."""

    def __init__(self, error: dict, response: dict) -> None:
        kind = error.get("kind", "internal")
        message = error.get("message", "unknown error")
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.response = response


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ServeClient` survives transient failures.

    ``max_attempts`` bounds total tries (first attempt included).
    Connection-kind faults reconnect before resending; ``retry_kinds``
    rejections (structured, so the connection is still good) just wait.
    The delay before attempt *n*'s resend is
    ``min(backoff_cap, backoff_base * 2**n)``, jittered by up to
    ``jitter`` of itself so a fleet's worth of retrying clients does not
    reconverge on the same instant.
    """

    max_attempts: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retry_kinds: tuple[str, ...] = ("overloaded", "shutting-down")
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2**attempt))
        fraction = (rng or random).random()
        return base * (1.0 + self.jitter * fraction)


class ServeClient:
    """One connection to a serving daemon.

    Construct with either ``socket_path`` (unix socket) or ``host``/
    ``port``.  Usable as a context manager.  Not thread-safe — requests on
    one connection are strictly in-order; give each thread its own client.

    Without ``retry`` the constructor connects eagerly and any transport
    failure raises immediately (the historical contract, which
    :func:`wait_for_server` relies on).  With a :class:`RetryPolicy` the
    connection is lazy and every request runs the retry loop described in
    the module docstring.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        *,
        timeout: float | None = 60.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError("set exactly one of socket_path or host/port")
        if host is not None and port is None:
            raise ValueError("host needs a port")
        self._target = (socket_path, host, port)
        self._timeout = timeout
        self._retry = retry
        self._rng = random.Random()
        self._sock: socket.socket | None = None
        self._reader = None
        self.retries = 0  # connection-kind resends + retryable rejections
        if retry is None:
            self._connect()

    # ------------------------------------------------------------- transport

    def _connect(self) -> None:
        socket_path, host, port = self._target
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection((host, port), timeout=self._timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request_once(self, payload: dict[str, Any]) -> dict:
        if self._sock is None:
            self._connect()
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(encode_message(payload))
        line = self._reader.readline(MAX_LINE_BYTES + 1024)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_message(line)

    def request(self, payload: dict[str, Any], *, check: bool = True) -> dict:
        """Send one request, block for its response line.

        With ``check`` (the default) a failure response raises
        :class:`ServeError`; without it, the raw response dict is returned
        either way (the benchmark's load-shed drill wants to *count*
        rejections, not catch them).  A retry policy is applied first in
        both modes — ``check=False`` still retries transport faults, it
        just does not raise on a final structured rejection.
        """
        policy = self._retry
        attempt = 0
        while True:
            try:
                response = self._request_once(payload)
            except (ProtocolError, ConnectionError, OSError):
                # Framing gone or peer gone: the connection is untrusted
                # either way.  Reconnect-and-resend is idempotence-safe.
                self._disconnect()
                if policy is None or attempt + 1 >= policy.max_attempts:
                    raise
                time.sleep(policy.delay(attempt, self._rng))
                attempt += 1
                self.retries += 1
                continue
            if not response.get("ok"):
                kind = response.get("error", {}).get("kind")
                if (
                    policy is not None
                    and kind in policy.retry_kinds
                    and attempt + 1 < policy.max_attempts
                ):
                    time.sleep(policy.delay(attempt, self._rng))
                    attempt += 1
                    self.retries += 1
                    continue
                if check:
                    raise ServeError(response.get("error", {}), response)
            return response

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------------- convenience

    def approximate(
        self,
        query: str,
        cls: str = "TW1",
        *,
        all_: bool = False,
        method: str = "auto",
        deadline: float | None = None,
        request_id: Any = None,
        check: bool = True,
    ) -> dict:
        payload: dict[str, Any] = {
            "op": "approximate",
            "query": query,
            "cls": cls,
            "all": all_,
            "method": method,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload, check=check)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain (the in-band alternative to SIGTERM)."""
        return self.request({"op": "shutdown"})

    def sleep(self, seconds: float, *, check: bool = True) -> dict:
        """Occupy one executor slot for ``seconds`` (test servers only)."""
        return self.request(
            {"op": "sleep", "seconds": seconds}, check=check
        )


def connect(
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    *,
    timeout: float | None = 60.0,
    retry: RetryPolicy | None = None,
) -> ServeClient:
    """Alias for the :class:`ServeClient` constructor."""
    return ServeClient(socket_path, host, port, timeout=timeout, retry=retry)


def wait_for_server(
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    *,
    deadline: float = 10.0,
) -> None:
    """Block until a daemon accepts connections (tests/benchmarks starting
    one in a subprocess or thread race its listener coming up).

    Probes with capped-exponential *jittered* backoff rather than a fixed
    poll: a fleet supervisor waits on N workers at once, and fixed-period
    probers fire in lockstep against freshly-forked pythons — jitter
    spreads them, and the growing period stops a slow cold start from
    being hammered.
    """
    last: Exception | None = None
    rng = random.Random()
    delay = 0.01
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            client = ServeClient(socket_path, host, port, timeout=deadline)
        except (OSError, ConnectionError) as exc:
            last = exc
            time.sleep(delay * (0.5 + rng.random()))
            delay = min(0.25, delay * 1.6)
            continue
        client.close()
        return
    raise TimeoutError(f"no server at {socket_path or (host, port)}: {last}")
