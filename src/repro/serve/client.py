"""A small synchronous client for the serving daemon.

The protocol is JSON lines over a stream socket, so the client is just a
socket, a buffered reader, and :mod:`repro.serve.protocol`'s codec — no
async machinery.  One :class:`ServeClient` holds one connection and may
issue any number of requests on it; tests, the ``repro client`` CLI
subcommand, and the serving benchmark's replay loop all go through it.

:class:`ServeError` carries the structured error object of a failed
request (``kind`` of ``"overloaded"``, ``"shutting-down"``,
``"bad-request"``, or ``"internal"``), so callers can distinguish a
load-shed rejection — resubmit later — from a request that can never
succeed.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.serve.protocol import MAX_LINE_BYTES, decode_message, encode_message

__all__ = ["ServeClient", "ServeError", "connect", "wait_for_server"]


class ServeError(RuntimeError):
    """A structured failure response from the server."""

    def __init__(self, error: dict, response: dict) -> None:
        kind = error.get("kind", "internal")
        message = error.get("message", "unknown error")
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.response = response


class ServeClient:
    """One connection to a serving daemon.

    Construct with either ``socket_path`` (unix socket) or ``host``/
    ``port``.  Usable as a context manager.  Not thread-safe — requests on
    one connection are strictly in-order; give each thread its own client.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        *,
        timeout: float | None = 60.0,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError("set exactly one of socket_path or host/port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("host needs a port")
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------- transport

    def request(self, payload: dict[str, Any], *, check: bool = True) -> dict:
        """Send one request, block for its response line.

        With ``check`` (the default) a failure response raises
        :class:`ServeError`; without it, the raw response dict is returned
        either way (the benchmark's load-shed drill wants to *count*
        rejections, not catch them).
        """
        self._sock.sendall(encode_message(payload))
        line = self._reader.readline(MAX_LINE_BYTES + 1024)
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        if check and not response.get("ok"):
            raise ServeError(response.get("error", {}), response)
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------------- convenience

    def approximate(
        self,
        query: str,
        cls: str = "TW1",
        *,
        all_: bool = False,
        method: str = "auto",
        deadline: float | None = None,
        request_id: Any = None,
        check: bool = True,
    ) -> dict:
        payload: dict[str, Any] = {
            "op": "approximate",
            "query": query,
            "cls": cls,
            "all": all_,
            "method": method,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload, check=check)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to drain (the in-band alternative to SIGTERM)."""
        return self.request({"op": "shutdown"})

    def sleep(self, seconds: float, *, check: bool = True) -> dict:
        """Occupy one executor slot for ``seconds`` (test servers only)."""
        return self.request(
            {"op": "sleep", "seconds": seconds}, check=check
        )


def connect(
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    *,
    timeout: float | None = 60.0,
) -> ServeClient:
    """Alias for the :class:`ServeClient` constructor."""
    return ServeClient(socket_path, host, port, timeout=timeout)


def wait_for_server(
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    *,
    deadline: float = 10.0,
) -> None:
    """Block until a daemon accepts connections (tests/benchmarks starting
    one in a subprocess or thread race its listener coming up)."""
    last: Exception | None = None
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            client = ServeClient(socket_path, host, port, timeout=deadline)
        except (OSError, ConnectionError) as exc:
            last = exc
            time.sleep(0.02)
            continue
        client.close()
        return
    raise TimeoutError(f"no server at {socket_path or (host, port)}: {last}")
