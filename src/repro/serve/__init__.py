"""Approximation-as-a-service: the resident serving layer.

``repro serve`` turns the one-shot approximation pipeline into a daemon:
a single long-lived process whose engine memos (``hom_le``, canonical
keys, refinement indexes) accumulate across requests, fronted by an
asyncio socket server and backed by a crash-safe canonical result cache.

**Protocol note** — the wire format is JSON lines over a unix or TCP
stream socket (:mod:`repro.serve.protocol`): each request is one JSON
object per ``\\n``-terminated line carrying ``op`` (``approximate``,
``stats``/``health``, ``shutdown``, test-only ``sleep``) and an optional
``id`` echoed on the response; each response is one JSON object with
``ok`` plus either op-specific payload fields or a structured
``error = {"kind", "message"}``.  Error kinds are part of the contract:
``overloaded`` (admission control shed the request), ``shutting-down``
(drain in progress), ``bad-request``, ``internal``.  Rejections are
always data on the wire — the server never expresses backpressure by
dropping a connection.

Layout:

* :mod:`repro.serve.protocol` — framing, envelope validation, response
  constructors;
* :mod:`repro.serve.cache` — the two-tier (memory LRU + atomic disk)
  result cache keyed by canonical core form, with quarantine-on-corruption;
* :mod:`repro.serve.server` — :class:`ApproximationServer`: admission
  control, per-request budgets, fault isolation, graceful drain;
* :mod:`repro.serve.client` — the synchronous client used by the CLI,
  the tests, and the serving benchmark, with an opt-in
  :class:`RetryPolicy` (reconnect + capped jittered backoff on
  connection faults; ``overloaded``/``shutting-down`` retried after a
  delay);
* :mod:`repro.serve.fleet` — ``repro fleet``: a supervisor running N
  server worker processes over one shared disk cache tier (crash
  detection, capped-backoff restarts behind a restart-storm breaker)
  and an asyncio router (least-outstanding balancing, retry-elsewhere
  on connection faults, straggler hedging, rolling SIGTERM drain).
"""

from repro.serve.cache import (
    CACHE_VERSION,
    CacheStats,
    ResultCache,
    canonical_representative,
    canonical_result_key,
)
from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    ServeError,
    connect,
    wait_for_server,
)
from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import ApproximationServer, ServerConfig

__all__ = [
    "ApproximationServer",
    "CACHE_VERSION",
    "CacheStats",
    "Fleet",
    "FleetConfig",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "RetryPolicy",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "canonical_representative",
    "canonical_result_key",
    "connect",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
    "wait_for_server",
]
