"""Named-column relations (sets of variable bindings) and their algebra.

The evaluation algorithms manipulate *bindings relations*: relations whose
columns are query variables.  The module provides the relational-algebra
kernel — selection of an atom pattern against a database, natural join,
semijoin and projection — all hash-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.cq.query import Atom
from repro.cq.structure import Structure
from repro.evaluation.stats import EvalStats

Value = Hashable
Row = tuple


@dataclass(frozen=True)
class Bindings:
    """A relation over named columns (query variables)."""

    columns: tuple[str, ...]
    rows: frozenset[Row]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in {self.columns!r}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError("row arity does not match columns")

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def column_index(self) -> dict[str, int]:
        return {column: i for i, column in enumerate(self.columns)}

    def values_of(self, column: str) -> set[Value]:
        index = self.column_index()[column]
        return {row[index] for row in self.rows}

    def as_dicts(self) -> Iterable[dict[str, Value]]:
        for row in self.rows:
            yield dict(zip(self.columns, row))


def unit() -> Bindings:
    """The relation with no columns and a single empty row (join identity)."""
    return Bindings((), frozenset({()}))


def empty(columns: Sequence[str] = ()) -> Bindings:
    return Bindings(tuple(columns), frozenset())


def atom_bindings(db: Structure, atom: Atom, stats: EvalStats | None = None) -> Bindings:
    """The bindings of one atom against the database.

    Handles repeated variables (``E(x, x)`` selects the diagonal).  Columns
    are the atom's distinct variables in order of first occurrence.
    """
    columns = tuple(dict.fromkeys(atom.args))
    rows: set[Row] = set()
    scanned = 0
    for fact in db.tuples(atom.relation):
        scanned += 1
        binding: dict[str, Value] = {}
        for variable, value in zip(atom.args, fact):
            if binding.setdefault(variable, value) != value:
                break
        else:
            rows.add(tuple(binding[c] for c in columns))
    if stats is not None:
        stats.tuples_scanned += scanned
        stats.saw_intermediate(len(rows))
    return Bindings(columns, frozenset(rows))


def project(b: Bindings, columns: Sequence[str], stats: EvalStats | None = None) -> Bindings:
    """Project onto the given columns (which must exist)."""
    columns = tuple(columns)
    index = b.column_index()
    missing = [c for c in columns if c not in index]
    if missing:
        raise ValueError(f"cannot project onto absent columns {missing!r}")
    positions = [index[c] for c in columns]
    rows = frozenset(tuple(row[p] for p in positions) for row in b.rows)
    if stats is not None:
        stats.saw_intermediate(len(rows))
    return Bindings(columns, rows)


def join(a: Bindings, b: Bindings, stats: EvalStats | None = None) -> Bindings:
    """Natural (hash) join on the shared columns."""
    shared = [c for c in a.columns if c in set(b.columns)]
    a_index = a.column_index()
    b_index = b.column_index()
    b_extra = [c for c in b.columns if c not in a_index]

    table: dict[Row, list[Row]] = {}
    for row in b.rows:
        key = tuple(row[b_index[c]] for c in shared)
        table.setdefault(key, []).append(row)

    out_columns = a.columns + tuple(b_extra)
    rows: set[Row] = set()
    for row in a.rows:
        key = tuple(row[a_index[c]] for c in shared)
        for match in table.get(key, ()):
            rows.add(row + tuple(match[b_index[c]] for c in b_extra))
    if stats is not None:
        stats.joins += 1
        stats.tuples_scanned += len(a.rows) + len(b.rows)
        stats.saw_intermediate(len(rows))
    return Bindings(out_columns, frozenset(rows))


def semijoin(a: Bindings, b: Bindings, stats: EvalStats | None = None) -> Bindings:
    """``a ⋉ b``: the rows of ``a`` that join with some row of ``b``."""
    shared = [c for c in a.columns if c in set(b.columns)]
    if not shared:
        if b.is_empty:
            return empty(a.columns)
        return a
    a_index = a.column_index()
    b_index = b.column_index()
    keys = {tuple(row[b_index[c]] for c in shared) for row in b.rows}
    rows = frozenset(
        row for row in a.rows if tuple(row[a_index[c]] for c in shared) in keys
    )
    if stats is not None:
        stats.semijoins += 1
        stats.tuples_scanned += len(a.rows) + len(b.rows)
    return Bindings(a.columns, rows)


def project_answer(b: Bindings, head: Sequence[str]) -> frozenset[Row]:
    """Project rows onto a head tuple that may repeat variables.

    Unlike :func:`project` this returns raw rows (not a relation), since a
    relation cannot have duplicate columns.
    """
    index = b.column_index()
    missing = [c for c in head if c not in index]
    if missing:
        raise ValueError(f"head variables {missing!r} not present")
    positions = [index[c] for c in head]
    return frozenset(tuple(row[p] for p in positions) for row in b.rows)


def product_extend(
    b: Bindings,
    new_columns: Sequence[str],
    candidates: dict[str, set[Value]],
    stats: EvalStats | None = None,
) -> Bindings:
    """Extend a relation with unconstrained columns over candidate values.

    Used by the bounded-treewidth evaluator for bag variables not covered by
    any atom assigned to the bag; the blow-up is bounded by ``|adom|^(k+1)``,
    which is exactly the theoretical cost of treewidth-``k`` evaluation.
    """
    result = b
    for column in new_columns:
        values = candidates[column]
        rows = frozenset(
            row + (value,) for row in result.rows for value in values
        )
        result = Bindings(result.columns + (column,), rows)
        if stats is not None:
            stats.saw_intermediate(len(rows))
    return result
