"""The evaluation dispatcher.

``evaluate(query, db)`` picks the cheapest applicable strategy:

* acyclic queries → Yannakakis (``O(|D| · |Q|)``-style),
* bounded hypertree width → hypertree evaluation (``|D|^k``),
* bounded treewidth of ``G(Q)`` → junction-tree evaluation (``|adom|^(k+1)``),
* otherwise → backtracking.

The explicit ``method`` argument selects a strategy unconditionally; the
benchmarks use that to contrast the paper's complexity regimes.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.kernels import DEFAULT_ENGINE
from repro.evaluation.naive import (
    backtracking_evaluate,
    hom_evaluate,
    naive_join_evaluate,
)
from repro.evaluation.stats import EvalStats
from repro.evaluation.treewidth_eval import treewidth_evaluate
from repro.evaluation.hypertree_eval import hypertree_evaluate
from repro.evaluation.yannakakis import yannakakis_evaluate
from repro.hypergraphs.gyo import is_acyclic_query
from repro.hypergraphs.treewidth import treewidth_exact

Answer = frozenset[tuple]
Method = Literal[
    "auto", "yannakakis", "treewidth", "hypertree", "backtracking", "naive", "hom"
]

#: Treewidth up to which the auto dispatcher uses junction trees.
AUTO_TREEWIDTH_LIMIT = 3


def evaluate(
    query: ConjunctiveQuery,
    db: Structure,
    *,
    method: Method = "auto",
    stats: EvalStats | None = None,
    engine: str = DEFAULT_ENGINE,
) -> Answer:
    """Evaluate ``query`` on ``db``; returns the set of answer tuples.

    A Boolean query returns ``{()}`` for true and ``{}`` for false, matching
    the convention of Section 2.  ``engine`` selects the relational kernels
    (``"columnar"`` hash-batch engine, or ``"tuple"`` — the original
    set-of-tuples oracle); ``backtracking`` and ``hom`` have no
    materialized relations and ignore it.
    """
    strategies: dict[str, Callable[[], Answer]] = {
        "yannakakis": lambda: yannakakis_evaluate(query, db, stats, engine=engine),
        "treewidth": lambda: treewidth_evaluate(query, db, None, stats, engine=engine),
        "hypertree": lambda: hypertree_evaluate(query, db, None, stats, engine=engine),
        "backtracking": lambda: backtracking_evaluate(query, db, stats),
        "naive": lambda: naive_join_evaluate(query, db, stats, engine=engine),
        "hom": lambda: hom_evaluate(query, db),
    }
    if method != "auto":
        if method not in strategies:
            raise ValueError(f"unknown method {method!r}")
        return strategies[method]()

    if is_acyclic_query(query):
        return yannakakis_evaluate(query, db, stats, engine=engine)
    width = treewidth_exact(query.graph())
    if width <= AUTO_TREEWIDTH_LIMIT:
        return treewidth_evaluate(query, db, width, stats, engine=engine)
    return backtracking_evaluate(query, db, stats)


def boolean_answer(answers: Answer) -> bool:
    """Interpret an answer set of a Boolean query."""
    return bool(answers)


def is_in_answer(
    query: ConjunctiveQuery,
    db: Structure,
    candidate: tuple,
    *,
    method: Method = "auto",
    engine: str = DEFAULT_ENGINE,
) -> bool:
    """Membership test ``candidate ∈ Q(D)`` (the paper's decision problem)."""
    if len(candidate) != len(query.head):
        raise ValueError("candidate arity differs from the query head")
    return candidate in evaluate(query, db, method=method, engine=engine)
