"""Soft numpy dependency for the columnar evaluation kernels.

numpy is an *optional extra* (``pip install repro[fast]``): the columnar
engine runs on a pure-python fallback when it is absent, and every kernel
must produce identical answers on both backends (the differential suite
parametrizes over them).  This module is the single import point — kernels
ask :func:`active_numpy` for the module and get ``None`` when the python
backend is in force, either because numpy is missing or because a caller
(or the ``REPRO_EVAL_BACKEND`` environment variable) forced it off.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised through both backend parametrizations
    import numpy as _numpy
except ImportError:  # pragma: no cover - depends on the environment
    _numpy = None

BACKENDS = ("auto", "numpy", "python")

#: Programmatic override (set via :func:`set_backend`); ``None`` defers to
#: the ``REPRO_EVAL_BACKEND`` environment variable, then to availability.
_forced: str | None = None


def numpy_available() -> bool:
    """Whether the numpy fast path can be selected at all."""
    return _numpy is not None


def set_backend(name: str | None) -> None:
    """Force the columnar backend (``"numpy"``/``"python"``/``"auto"``).

    ``None`` or ``"auto"`` restores availability-based selection.  Forcing
    ``"numpy"`` with numpy missing raises immediately rather than failing
    deep inside a kernel.
    """
    global _forced
    if name is None:
        _forced = None
        return
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r} (use one of {BACKENDS})")
    if name == "numpy" and _numpy is None:
        raise RuntimeError(
            "numpy backend requested but numpy is not installed "
            "(pip install repro[fast])"
        )
    _forced = None if name == "auto" else name


def backend_name() -> str:
    """The backend currently in force: ``"numpy"`` or ``"python"``."""
    choice = _forced
    if choice is None:
        choice = os.environ.get("REPRO_EVAL_BACKEND", "").strip().lower() or "auto"
        if choice not in BACKENDS:
            raise ValueError(
                f"REPRO_EVAL_BACKEND={choice!r} is not one of {BACKENDS}"
            )
    if choice == "numpy":
        if _numpy is None:
            raise RuntimeError(
                "REPRO_EVAL_BACKEND=numpy but numpy is not installed "
                "(pip install repro[fast])"
            )
        return "numpy"
    if choice == "python":
        return "python"
    return "numpy" if _numpy is not None else "python"


def active_numpy():
    """The numpy module when the numpy backend is in force, else ``None``."""
    return _numpy if backend_name() == "numpy" else None
