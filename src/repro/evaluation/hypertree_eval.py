"""Bounded hypertree-width CQ evaluation (Gottlob–Leone–Scarcello).

For a CQ with a width-``k`` hypertree decomposition ``<T, χ, λ>``, each node
is materialized as the join of its ≤ k guard atoms projected to its bag —
a relation of size at most ``|D|^k`` — and the nodes are then joined along
the decomposition tree.  This is the evaluation algorithm that makes
HTW(k)/GHTW(k) approximations pay off (Section 6).
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.kernels import DEFAULT_ENGINE, make_kernel
from repro.evaluation.stats import EvalStats
from repro.evaluation.treejoin import tree_join_evaluate
from repro.hypergraphs.hypergraph import hypergraph_of_query
from repro.hypergraphs.hypertree import hypertree_decomposition
from repro.hypergraphs.ghw import generalized_hypertree_decomposition

Answer = frozenset[tuple]


def hypertree_evaluate(
    query: ConjunctiveQuery,
    db: Structure,
    k: int | None = None,
    stats: EvalStats | None = None,
    *,
    generalized: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> Answer:
    """Evaluate along a (generalized) hypertree decomposition of ``H(Q)``.

    ``k`` defaults to the smallest width found (searched upward from 1).
    """
    hypergraph = hypergraph_of_query(query)
    builder = (
        generalized_hypertree_decomposition if generalized else hypertree_decomposition
    )
    if k is None:
        decomposition = None
        for width in range(1, max(len(hypergraph.edges), 1) + 1):
            decomposition = builder(hypergraph, width)
            if decomposition is not None:
                break
    else:
        decomposition = builder(hypergraph, k)
    if decomposition is None:
        raise ValueError(f"no hypertree decomposition of width ≤ {k}")

    atoms_by_edge: dict[frozenset, list] = {}
    for atom in query.atoms:
        atoms_by_edge.setdefault(atom.variables, []).append(atom)

    kernel = make_kernel(engine, stats)
    tree = decomposition.tree.to_undirected()
    node_bindings: dict[Hashable, object] = {}
    for node in tree.nodes:
        bag = decomposition.chi[node]
        current = kernel.unit()
        for edge in decomposition.guards[node]:
            for atom in atoms_by_edge.get(edge, ()):
                current = kernel.join(current, kernel.atom_bindings(db, atom))
        keep = [c for c in current.columns if c in bag]
        current = kernel.project(current, keep)
        node_bindings[node] = current

    # Every atom must be enforced at some node whose bag covers its
    # variables: a node's guard covers its bag, but an atom's hyperedge need
    # not belong to any guard, so the constraint is applied here explicitly.
    for atom in query.atoms:
        holder = next(
            node for node in tree.nodes
            if atom.variables <= decomposition.chi[node]
        )
        node_bindings[holder] = kernel.semijoin(
            node_bindings[holder], kernel.atom_bindings(db, atom)
        )

    return tree_join_evaluate(tree, node_bindings, query.head, stats, kernel=kernel)
