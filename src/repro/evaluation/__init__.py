"""Query evaluation: Yannakakis, junction trees, hypertrees, baselines."""

from repro.evaluation.stats import EvalStats
from repro.evaluation.backend import (
    BACKENDS,
    backend_name,
    numpy_available,
    set_backend,
)
from repro.evaluation.columnar import ColumnarBindings, ColumnarKernel
from repro.evaluation.kernels import (
    DEFAULT_ENGINE,
    ENGINES,
    TupleKernel,
    make_kernel,
)
from repro.evaluation.relation import (
    Bindings,
    atom_bindings,
    empty,
    join,
    product_extend,
    project,
    project_answer,
    semijoin,
    unit,
)
from repro.evaluation.naive import (
    backtracking_evaluate,
    hom_evaluate,
    naive_join_evaluate,
)
from repro.evaluation.treejoin import tree_join_evaluate
from repro.evaluation.yannakakis import (
    CyclicQueryError,
    atom_join_tree,
    yannakakis_boolean,
    yannakakis_evaluate,
)
from repro.evaluation.treewidth_eval import treewidth_evaluate
from repro.evaluation.hypertree_eval import hypertree_evaluate
from repro.evaluation.engine import (
    AUTO_TREEWIDTH_LIMIT,
    boolean_answer,
    evaluate,
    is_in_answer,
)

__all__ = [
    "AUTO_TREEWIDTH_LIMIT",
    "BACKENDS",
    "Bindings",
    "ColumnarBindings",
    "ColumnarKernel",
    "CyclicQueryError",
    "DEFAULT_ENGINE",
    "ENGINES",
    "EvalStats",
    "TupleKernel",
    "atom_bindings",
    "backend_name",
    "atom_join_tree",
    "backtracking_evaluate",
    "boolean_answer",
    "empty",
    "evaluate",
    "hom_evaluate",
    "hypertree_evaluate",
    "is_in_answer",
    "join",
    "make_kernel",
    "naive_join_evaluate",
    "numpy_available",
    "product_extend",
    "project",
    "project_answer",
    "semijoin",
    "set_backend",
    "tree_join_evaluate",
    "treewidth_evaluate",
    "unit",
    "yannakakis_boolean",
    "yannakakis_evaluate",
]
