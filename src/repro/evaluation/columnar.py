"""Column-major relations and hash-based operator kernels.

The tuple-at-a-time :class:`~repro.evaluation.relation.Bindings` stores a
relation as a ``frozenset`` of row tuples — fine for unit tests, hopeless
past ~10^4 tuples: every join probes a dict one row at a time through the
interpreter.  This module stores a relation as *parallel value columns*
(:class:`ColumnarBindings`) and implements ``join`` / ``semijoin`` /
``project`` as batched hash kernels:

* **numpy backend** (optional extra ``repro[fast]``): columns are int64
  arrays (values dictionary-encoded unless the active domain is already
  int64-safe), multi-column join keys are collapsed to 1-D via a void
  view over the contiguous row matrix, and per-side group indexes
  (``np.unique(..., return_inverse=True)``) are cached on the relation so
  repeated semijoins against the same key — the Yannakakis sweeps — hash
  each side once.  Join emission is the classic
  argsort/bincount/offsets/``np.repeat`` gather; no python-level loop
  touches a row.
* **python backend**: columns are plain lists and the cached per-key
  index is a ``dict key -> row indexes``.  Same operator semantics,
  identical answers — the differential suite pins both backends to the
  tuple oracle bit for bit.

Deduplication discipline: ``scan`` (atom bindings over a set of facts)
and ``project`` are the only dedup points.  Joins of duplicate-free
inputs are duplicate-free, so join/semijoin never pay a dedup pass.
"""

from __future__ import annotations

from itertools import chain

from .backend import active_numpy
from .stats import EvalStats


class ValueCodec:
    """Dictionary encoding between domain values and dense int codes.

    Only instantiated when the database domain is not already int64-safe
    (strings, tuples, bools, big ints); the common integer-domain case
    skips encoding entirely and the arrays hold the values themselves.
    """

    __slots__ = ("encode", "decode")

    def __init__(self) -> None:
        self.encode: dict = {}
        self.decode: list = []

    def code(self, value) -> int:
        got = self.encode.get(value)
        if got is None:
            got = len(self.decode)
            self.encode[value] = got
            self.decode.append(value)
        return got


class ColumnarBindings:
    """A relation as parallel value columns plus lazy per-key indexes.

    ``data[i]`` holds the values of ``columns[i]`` for every row; rows are
    duplicate-free.  ``length`` is explicit so zero-column relations (the
    unit relation and boolean intermediates) keep their cardinality.
    ``_indexes`` caches hash/group indexes keyed by column subset — built
    on first use by a kernel, reused across the up/down semijoin sweeps.
    """

    __slots__ = ("columns", "data", "length", "_indexes")

    def __init__(self, columns, data, length: int) -> None:
        self.columns = tuple(columns)
        self.data = list(data)
        self.length = length
        self._indexes: dict = {}

    def __len__(self) -> int:
        return self.length

    @property
    def is_empty(self) -> bool:
        return self.length == 0

    def column_index(self) -> dict:
        return {name: pos for pos, name in enumerate(self.columns)}


class ColumnarKernel:
    """Operator kernels over :class:`ColumnarBindings`.

    The backend (numpy vs pure python) is fixed at construction from
    :func:`repro.evaluation.backend.active_numpy`; one kernel instance is
    meant to serve one evaluation over one database, so the value codec
    (or the identity-encoding decision) is owned per instance.
    """

    engine = "columnar"

    #: Magnitude bound under which raw ints are stored without encoding.
    _INT64_LIMIT = 2**62

    def __init__(self, stats: EvalStats | None = None) -> None:
        self.stats = stats
        self._np = active_numpy()
        #: None until the first database is seen; then True (identity
        #: int64 encoding) or False (dictionary encoding via ``_codec``).
        self._identity: bool | None = None
        self._codec: ValueCodec | None = None

    # ------------------------------------------------------------------
    # encoding

    def _decide_encoding(self, db) -> None:
        if self._identity is not None:
            return
        if self._np is None:
            # python backend stores raw values; no encoding ever needed
            self._identity = True
            return
        limit = self._INT64_LIMIT
        identity = True
        for value in db.domain:
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or not -limit <= value < limit
            ):
                identity = False
                break
        self._identity = identity
        if not identity:
            self._codec = ValueCodec()

    def _encode_value(self, value):
        if self._codec is not None:
            return self._codec.code(value)
        return value

    def _decode_column(self, column) -> list:
        values = column.tolist() if self._np is not None else list(column)
        if self._codec is not None:
            decode = self._codec.decode
            return [decode[code] for code in values]
        return values

    # ------------------------------------------------------------------
    # constructors

    def unit(self) -> ColumnarBindings:
        return ColumnarBindings((), [], 1)

    def empty(self, columns=()) -> ColumnarBindings:
        np_ = self._np
        if np_ is not None:
            data = [np_.empty(0, dtype=np_.int64) for _ in columns]
        else:
            data = [[] for _ in columns]
        return ColumnarBindings(columns, data, 0)

    def atom_bindings(self, db, atom) -> ColumnarBindings:
        """Scan one atom's facts into columns, filtering repeated variables."""
        self._decide_encoding(db)
        rows = db.tuples(atom.relation)
        scanned = len(rows)
        if self.stats is not None:
            self.stats.tuples_scanned += scanned
        arity = len(atom.args)
        columns = tuple(dict.fromkeys(atom.args))
        first = {}
        for pos, var in enumerate(atom.args):
            first.setdefault(var, pos)
        repeats = [
            (first[var], pos)
            for pos, var in enumerate(atom.args)
            if first[var] != pos
        ]
        if arity == 0:
            out = ColumnarBindings((), [], 1 if scanned else 0)
        elif scanned == 0:
            out = self.empty(columns)
        elif self._np is not None:
            out = self._scan_np(rows, arity, columns, first, repeats)
        else:
            out = self._scan_py(rows, columns, first, repeats)
        if self.stats is not None:
            self.stats.record_op("scan", scanned=scanned, emitted=out.length)
            self.stats.saw_intermediate(out.length)
        return out

    def _scan_np(self, rows, arity, columns, first, repeats) -> ColumnarBindings:
        np_ = self._np
        count = len(rows)
        if self._codec is not None:
            code = self._codec.code
            flat = np_.fromiter(
                (code(value) for row in rows for value in row),
                dtype=np_.int64,
                count=count * arity,
            )
        else:
            flat = np_.fromiter(
                chain.from_iterable(rows), dtype=np_.int64, count=count * arity
            )
        matrix = flat.reshape(count, arity)
        if repeats:
            mask = None
            for first_pos, pos in repeats:
                eq = matrix[:, first_pos] == matrix[:, pos]
                mask = eq if mask is None else mask & eq
            matrix = matrix[mask]
        data = [np_.ascontiguousarray(matrix[:, first[name]]) for name in columns]
        return ColumnarBindings(columns, data, matrix.shape[0])

    def _scan_py(self, rows, columns, first, repeats) -> ColumnarBindings:
        data = [[] for _ in columns]
        positions = [first[name] for name in columns]
        for row in rows:
            if repeats and any(row[a] != row[b] for a, b in repeats):
                continue
            for out, pos in zip(data, positions):
                out.append(row[pos])
        return ColumnarBindings(columns, data, len(data[0]) if data else 0)

    # ------------------------------------------------------------------
    # key indexes

    def _key1d(self, rel: ColumnarBindings, cols: tuple):
        """Collapse the key columns to one 1-D array (void view if multi)."""
        np_ = self._np
        index = rel.column_index()
        arrays = [rel.data[index[name]] for name in cols]
        if len(arrays) == 1:
            return arrays[0]
        stacked = np_.ascontiguousarray(np_.stack(arrays, axis=1))
        void = np_.dtype((np_.void, stacked.dtype.itemsize * len(arrays)))
        return stacked.view(void).reshape(-1)

    def _groups_np(self, rel: ColumnarBindings, cols: tuple):
        """Cached ``(unique_keys, inverse, built_rows)`` for the numpy path.

        ``built_rows`` is ``rel.length`` when this call built the index and
        0 on a cache hit — callers charge it as ``rows_hashed``.
        """
        cache_key = ("groups", cols)
        got = rel._indexes.get(cache_key)
        if got is not None:
            return got[0], got[1], 0
        uniq, inverse = self._np.unique(self._key1d(rel, cols), return_inverse=True)
        got = (uniq, inverse.reshape(-1))
        rel._indexes[cache_key] = got
        return got[0], got[1], rel.length

    def _uniq_np(self, rel: ColumnarBindings, cols: tuple):
        """Cached ``(unique_keys, built_rows)`` — the semijoin build side.

        Cheaper than :meth:`_groups_np` (no inverse array); reuses a full
        group index when one is already cached for the same key.
        """
        groups = rel._indexes.get(("groups", cols))
        if groups is not None:
            return groups[0], 0
        cache_key = ("uniq", cols)
        got = rel._indexes.get(cache_key)
        if got is not None:
            return got, 0
        uniq = self._np.unique(self._key1d(rel, cols))
        rel._indexes[cache_key] = uniq
        return uniq, rel.length

    #: Largest direct-address table span relative to the keyed row count.
    _LUT_SPAN_FACTOR = 16
    _LUT_SPAN_MIN = 1 << 20

    def _lut_span_ok(self, base: int, high: int, length: int) -> bool:
        span = high - base
        return span <= max(self._LUT_SPAN_MIN, self._LUT_SPAN_FACTOR * length)

    def _member_table_np(self, rel: ColumnarBindings, cols: tuple):
        """Cached key-membership structure for the semijoin build side.

        Single-column integer keys with a bounded value span get a
        direct-address boolean table (O(rows) scatter, O(1) probes — no
        sort anywhere); everything else falls back to sorted unique keys.
        Returns ``(("lut", base, table) | ("sorted", uniq), built_rows)``.
        """
        cache_key = ("member", cols)
        got = rel._indexes.get(cache_key)
        if got is not None:
            return got, 0
        np_ = self._np
        keys = self._key1d(rel, cols)
        entry = None
        if keys.dtype.kind == "i":
            base = int(keys.min())
            high = int(keys.max())
            if self._lut_span_ok(base, high, rel.length):
                table = np_.zeros(high - base + 1, dtype=bool)
                table[keys - base] = True
                entry = ("lut", base, table)
        if entry is None:
            uniq, _ = self._uniq_np(rel, cols)
            entry = ("sorted", uniq, None)
        rel._indexes[cache_key] = entry
        return entry, rel.length

    def _probe_membership_np(self, entry, keys):
        """Boolean mask of ``keys`` present in a ``_member_table_np`` entry."""
        np_ = self._np
        kind, first, second = entry
        if kind == "lut":
            base, table = first, second
            offsets = keys - base
            in_range = (offsets >= 0) & (offsets < len(table))
            return in_range & table[np_.clip(offsets, 0, len(table) - 1)]
        uniq = first
        pos = np_.searchsorted(uniq, keys)
        pos_c = np_.minimum(pos, len(uniq) - 1)
        return uniq[pos_c] == keys

    def _hash_index_py(self, rel: ColumnarBindings, cols: tuple):
        """Cached ``(dict key -> row indexes, built_rows)`` for python."""
        cache_key = ("hash", cols)
        got = rel._indexes.get(cache_key)
        if got is not None:
            return got, 0
        index = rel.column_index()
        arrays = [rel.data[index[name]] for name in cols]
        got = {}
        for row, key in enumerate(zip(*arrays)):
            got.setdefault(key, []).append(row)
        rel._indexes[cache_key] = got
        return got, rel.length

    # ------------------------------------------------------------------
    # operators

    def join(self, a: ColumnarBindings, b: ColumnarBindings) -> ColumnarBindings:
        a_cols = set(a.columns)
        shared = tuple(name for name in a.columns if name in set(b.columns))
        b_extra = tuple(name for name in b.columns if name not in a_cols)
        out_columns = a.columns + b_extra
        stats = self.stats
        if stats is not None:
            stats.joins += 1
        hashed = 0
        if a.length == 0 or b.length == 0:
            out = self.empty(out_columns)
        elif not shared:
            out = self._cross(a, b, b_extra, out_columns)
        elif self._np is not None:
            out, hashed = self._join_np(a, b, shared, b_extra, out_columns)
        else:
            out, hashed = self._join_py(a, b, shared, b_extra, out_columns)
        if stats is not None:
            stats.record_op(
                "join",
                scanned=a.length + b.length,
                hashed=hashed,
                emitted=out.length,
            )
            stats.saw_intermediate(out.length)
        return out

    def _cross(self, a, b, b_extra, out_columns) -> ColumnarBindings:
        b_index = b.column_index()
        np_ = self._np
        if np_ is not None:
            data = [np_.repeat(col, b.length) for col in a.data]
            data += [np_.tile(b.data[b_index[name]], a.length) for name in b_extra]
        else:
            data = [
                [value for value in col for _ in range(b.length)] for col in a.data
            ]
            data += [b.data[b_index[name]] * a.length for name in b_extra]
        return ColumnarBindings(out_columns, data, a.length * b.length)

    def _join_np(self, a, b, shared, b_extra, out_columns):
        np_ = self._np
        keys_a = self._key1d(a, shared)
        uniq_b, inv_b, hashed = self._groups_np(b, shared)
        # Probe a's rows directly against b's group index: only the build
        # side pays for sorting.  Integer keys with a bounded span probe
        # through a direct-address group table instead of binary search.
        b_group_of_a = None
        if uniq_b.dtype.kind == "i" and len(uniq_b):
            cache_key = ("grouplut", shared)
            lut_entry = b._indexes.get(cache_key)
            if lut_entry is None:
                base = int(uniq_b[0])
                high = int(uniq_b[-1])
                if self._lut_span_ok(base, high, len(uniq_b)):
                    table = np_.full(high - base + 1, -1, dtype=np_.intp)
                    table[uniq_b - base] = np_.arange(len(uniq_b))
                    lut_entry = (base, table)
                    b._indexes[cache_key] = lut_entry
            if lut_entry is not None:
                base, table = lut_entry
                offsets = keys_a - base
                in_range = (offsets >= 0) & (offsets < len(table))
                b_group_of_a = np_.where(
                    in_range, table[np_.clip(offsets, 0, len(table) - 1)], -1
                )
        if b_group_of_a is None:
            pos = np_.searchsorted(uniq_b, keys_a)
            pos_c = np_.minimum(pos, len(uniq_b) - 1)
            valid = uniq_b[pos_c] == keys_a
            b_group_of_a = np_.where(valid, pos_c, -1)
        order = np_.argsort(inv_b, kind="stable")
        counts = np_.bincount(inv_b, minlength=len(uniq_b))
        offsets = np_.concatenate(([0], np_.cumsum(counts)[:-1]))
        safe_group = np_.maximum(b_group_of_a, 0)
        per_a = np_.where(b_group_of_a >= 0, counts[safe_group], 0)
        total = int(per_a.sum())
        if total == 0:
            return self.empty(out_columns), hashed
        left = np_.repeat(np_.arange(a.length), per_a)
        starts = np_.repeat(offsets[safe_group], per_a)
        cum = np_.concatenate(([0], np_.cumsum(per_a)[:-1]))
        within = np_.arange(total) - np_.repeat(cum, per_a)
        right = order[starts + within]
        b_index = b.column_index()
        data = [col[left] for col in a.data]
        data += [b.data[b_index[name]][right] for name in b_extra]
        return ColumnarBindings(out_columns, data, total), hashed

    def _join_py(self, a, b, shared, b_extra, out_columns):
        index, hashed = self._hash_index_py(b, shared)
        a_index = a.column_index()
        key_cols = [a.data[a_index[name]] for name in shared]
        left_rows = []
        right_rows = []
        for row, key in enumerate(zip(*key_cols)):
            matches = index.get(key)
            if matches:
                for other in matches:
                    left_rows.append(row)
                    right_rows.append(other)
        b_index = b.column_index()
        data = [[col[i] for i in left_rows] for col in a.data]
        data += [
            [b.data[b_index[name]][j] for j in right_rows] for name in b_extra
        ]
        return ColumnarBindings(out_columns, data, len(left_rows)), hashed

    def semijoin(self, a: ColumnarBindings, b: ColumnarBindings) -> ColumnarBindings:
        shared = tuple(name for name in a.columns if name in set(b.columns))
        stats = self.stats
        if stats is not None:
            stats.semijoins += 1
        hashed = 0
        if not shared:
            out = self.empty(a.columns) if b.length == 0 else a
        elif a.length == 0:
            out = a
        elif b.length == 0:
            out = self.empty(a.columns)
        elif self._np is not None:
            out, hashed = self._semijoin_np(a, b, shared)
        else:
            out, hashed = self._semijoin_py(a, b, shared)
        if stats is not None:
            stats.record_op(
                "semijoin",
                scanned=a.length,
                hashed=hashed,
                emitted=out.length,
            )
            stats.saw_intermediate(out.length)
        return out

    def _semijoin_np(self, a, b, shared):
        keys_a = self._key1d(a, shared)
        entry, hashed = self._member_table_np(b, shared)
        mask = self._probe_membership_np(entry, keys_a)
        total = int(mask.sum())
        if total == a.length:
            return a, hashed
        data = [col[mask] for col in a.data]
        return ColumnarBindings(a.columns, data, total), hashed

    def _semijoin_py(self, a, b, shared):
        index, hashed = self._hash_index_py(b, shared)
        a_index = a.column_index()
        key_cols = [a.data[a_index[name]] for name in shared]
        keep = [
            row for row, key in enumerate(zip(*key_cols)) if key in index
        ]
        if len(keep) == a.length:
            return a, hashed
        data = [[col[i] for i in keep] for col in a.data]
        return ColumnarBindings(a.columns, data, len(keep)), hashed

    def project(self, rel: ColumnarBindings, columns) -> ColumnarBindings:
        columns = tuple(columns)
        index = rel.column_index()
        missing = [name for name in columns if name not in index]
        if missing:
            raise ValueError(f"cannot project onto absent columns {missing!r}")
        stats = self.stats
        if not columns:
            out = ColumnarBindings((), [], 1 if rel.length else 0)
        elif rel.length == 0:
            out = self.empty(columns)
        elif self._np is not None:
            np_ = self._np
            arrays = [rel.data[index[name]] for name in columns]
            if len(arrays) == 1:
                data = [np_.unique(arrays[0])]
                out = ColumnarBindings(columns, data, len(data[0]))
            else:
                stacked = np_.ascontiguousarray(np_.stack(arrays, axis=1))
                uniq = np_.unique(stacked, axis=0)
                data = [np_.ascontiguousarray(uniq[:, i]) for i in range(len(columns))]
                out = ColumnarBindings(columns, data, uniq.shape[0])
        else:
            arrays = [rel.data[index[name]] for name in columns]
            rows = set(zip(*arrays))
            if rows:
                data = [list(col) for col in zip(*rows)]
            else:
                data = [[] for _ in columns]
            out = ColumnarBindings(columns, data, len(rows))
        if stats is not None:
            stats.record_op("project", scanned=rel.length, emitted=out.length)
            stats.saw_intermediate(out.length)
        return out

    def product_extend(self, rel: ColumnarBindings, new_columns, candidates):
        """Extend with the cross product of candidate values per new column."""
        np_ = self._np
        out_columns = list(rel.columns)
        data = list(rel.data)
        length = rel.length
        stats = self.stats
        for name in new_columns:
            if name in out_columns:
                raise ValueError(f"column {name!r} already bound")
            values = [self._encode_value(value) for value in candidates[name]]
            width = len(values)
            scanned = length
            if np_ is not None:
                column = np_.asarray(values, dtype=np_.int64)
                data = [np_.repeat(col, width) for col in data]
                data.append(np_.tile(column, length))
            else:
                data = [
                    [value for value in col for _ in range(width)] for col in data
                ]
                data.append(values * length)
            out_columns.append(name)
            length *= width
            if stats is not None:
                stats.record_op("extend", scanned=scanned, emitted=length)
                stats.saw_intermediate(length)
        return ColumnarBindings(tuple(out_columns), data, length)

    def project_answer(self, rel: ColumnarBindings, head) -> frozenset:
        """Decode the head columns into the answer set of python tuples."""
        head = tuple(head)
        if not head:
            answers = frozenset({()}) if rel.length else frozenset()
        elif rel.length == 0:
            answers = frozenset()
        else:
            index = rel.column_index()
            decoded = [self._decode_column(rel.data[index[name]]) for name in head]
            answers = frozenset(zip(*decoded))
        if self.stats is not None:
            self.stats.record_op(
                "project", scanned=rel.length, emitted=len(answers)
            )
        return answers

    def values_of(self, rel: ColumnarBindings, column: str) -> set:
        index = rel.column_index()
        return set(self._decode_column(rel.data[index[column]]))
