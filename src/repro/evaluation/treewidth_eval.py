"""Bounded-treewidth CQ evaluation via junction trees.

For a CQ of treewidth ``k`` the primal graph has a width-``k`` tree
decomposition; every atom's variables form a clique, hence fit inside some
bag.  Each bag is materialized as a relation of size at most
``|adom|^(k+1)`` (the theoretical cost of treewidth-based evaluation
[Chekuri–Rajaraman, Flum–Frick–Grohe]), and the bags are joined along the
decomposition tree with the acyclic tree-join skeleton.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.kernels import DEFAULT_ENGINE, make_kernel
from repro.evaluation.stats import EvalStats
from repro.evaluation.treejoin import tree_join_evaluate
from repro.hypergraphs.treewidth import tree_decomposition, treewidth_exact

Answer = frozenset[tuple]
Value = Hashable


def _variable_candidates(
    query: ConjunctiveQuery, db: Structure, kernel
) -> dict[str, set[Value]]:
    """Per-variable candidate values: the intersection over the atoms using
    the variable of their projections (a sound unary filter)."""
    candidates: dict[str, set[Value]] = {}
    for atom in query.atoms:
        bindings = kernel.atom_bindings(db, atom)
        for variable in bindings.columns:
            values = kernel.values_of(bindings, variable)
            if variable in candidates:
                candidates[variable] &= values
            else:
                candidates[variable] = values
    return candidates


def treewidth_evaluate(
    query: ConjunctiveQuery,
    db: Structure,
    k: int | None = None,
    stats: EvalStats | None = None,
    *,
    engine: str = DEFAULT_ENGINE,
) -> Answer:
    """Evaluate via a width-``k`` tree decomposition of ``G(Q)``.

    ``k`` defaults to the exact treewidth of the query.
    """
    graph = query.graph()
    if k is None:
        k = max(treewidth_exact(graph), 0)
    decomposition = tree_decomposition(graph, k)
    if decomposition is None:
        raise ValueError(f"query treewidth exceeds {k}")

    kernel = make_kernel(engine, stats)
    candidates = _variable_candidates(query, db, kernel)
    if any(not values for values in candidates.values()):
        return frozenset()

    # Assign every atom to a bag containing its variables.
    bag_atoms: dict[Hashable, list] = {node: [] for node in decomposition.tree.nodes}
    for atom in query.atoms:
        holder = next(
            node
            for node, bag in decomposition.bags.items()
            if atom.variables <= bag
        )
        bag_atoms[holder].append(atom)

    bag_bindings: dict[Hashable, object] = {}
    for node in decomposition.tree.nodes:
        bag = decomposition.bags[node]
        current = kernel.unit()
        for atom in bag_atoms[node]:
            current = kernel.join(current, kernel.atom_bindings(db, atom))
        uncovered = sorted(
            (v for v in bag if v not in set(current.columns)), key=repr
        )
        current = kernel.product_extend(current, uncovered, candidates)
        bag_bindings[node] = kernel.project(current, sorted(bag, key=repr))

    return tree_join_evaluate(
        decomposition.tree, bag_bindings, query.head, stats, kernel=kernel
    )
