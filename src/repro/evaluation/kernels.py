"""Engine selection: the columnar kernels vs the tuple-at-a-time oracle.

Every evaluator routes its relational algebra through a *kernel* object —
either :class:`~repro.evaluation.columnar.ColumnarKernel` (column-major
batches, hash semi-joins, optional numpy fast path; the default) or
:class:`TupleKernel`, a thin wrapper over the original
:mod:`repro.evaluation.relation` set-of-tuples algebra.  The tuple path is
deliberately kept alive as the differential oracle: the columnar engine
must produce bit-equal answers on every query/database, and the test
suite pins that across all four evaluators and both columnar backends.
"""

from __future__ import annotations

from repro.evaluation import relation
from repro.evaluation.columnar import ColumnarBindings, ColumnarKernel
from repro.evaluation.stats import EvalStats

ENGINES = ("columnar", "tuple")

#: The engine evaluators use when none is requested.
DEFAULT_ENGINE = "columnar"


class TupleKernel:
    """The original set-of-tuples algebra behind the kernel interface.

    Delegates to :mod:`repro.evaluation.relation` (leaving its legacy
    counter semantics untouched) and layers the per-operator
    ``record_op`` ledger on top, so ``--stats`` output is comparable
    across engines.
    """

    engine = "tuple"

    def __init__(self, stats: EvalStats | None = None) -> None:
        self.stats = stats

    def unit(self):
        return relation.unit()

    def empty(self, columns=()):
        return relation.empty(columns)

    def atom_bindings(self, db, atom):
        scanned = len(db.tuples(atom.relation))
        out = relation.atom_bindings(db, atom, self.stats)
        if self.stats is not None:
            self.stats.record_op("scan", scanned=scanned, emitted=len(out))
        return out

    def join(self, a, b):
        out = relation.join(a, b, self.stats)
        if self.stats is not None:
            self.stats.record_op(
                "join",
                scanned=len(a) + len(b),
                hashed=len(b),
                emitted=len(out),
            )
        return out

    def semijoin(self, a, b):
        out = relation.semijoin(a, b, self.stats)
        if self.stats is not None:
            self.stats.record_op(
                "semijoin",
                scanned=len(a),
                hashed=len(b),
                emitted=len(out),
            )
        return out

    def project(self, rel, columns):
        out = relation.project(rel, columns, self.stats)
        if self.stats is not None:
            self.stats.record_op("project", scanned=len(rel), emitted=len(out))
        return out

    def product_extend(self, rel, new_columns, candidates):
        out = relation.product_extend(rel, new_columns, candidates, self.stats)
        if self.stats is not None and new_columns:
            self.stats.record_op("extend", scanned=len(rel), emitted=len(out))
        return out

    def project_answer(self, rel, head):
        out = relation.project_answer(rel, head)
        if self.stats is not None:
            self.stats.record_op("project", scanned=len(rel), emitted=len(out))
        return out

    def values_of(self, rel, column):
        return rel.values_of(column)


def make_kernel(engine: str = DEFAULT_ENGINE, stats: EvalStats | None = None):
    """Instantiate the kernel for ``engine`` (``"columnar"``/``"tuple"``)."""
    if engine == "columnar":
        return ColumnarKernel(stats)
    if engine == "tuple":
        return TupleKernel(stats)
    raise ValueError(f"unknown engine {engine!r} (use one of {ENGINES})")


__all__ = [
    "ColumnarBindings",
    "ColumnarKernel",
    "DEFAULT_ENGINE",
    "ENGINES",
    "TupleKernel",
    "make_kernel",
]
