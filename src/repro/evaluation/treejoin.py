"""The shared Yannakakis-style tree algorithm.

Yannakakis evaluation, bounded-treewidth evaluation and hypertree evaluation
all reduce to the same skeleton: a tree whose nodes carry bindings relations,
processed with an upward semijoin sweep, a downward semijoin sweep, and a
final upward join-project that keeps only head variables plus connectors.
This module implements that skeleton once, over an operator *kernel*
(columnar or tuple-at-a-time — see :mod:`repro.evaluation.kernels`); the
node relations must come from the same kernel.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.evaluation.stats import EvalStats

Answer = frozenset[tuple]


def tree_join_evaluate(
    tree: nx.Graph,
    bindings: Mapping[Hashable, object],
    head: Sequence[str],
    stats: EvalStats | None = None,
    *,
    kernel=None,
) -> Answer:
    """Evaluate an acyclic join of ``bindings`` along ``tree``.

    ``tree`` must be a tree (or a single node) whose node set equals the keys
    of ``bindings``; the bindings must satisfy the join-tree property (shared
    variables of two nodes appear along the path between them).  ``head``
    variables must each occur in some node.  ``kernel`` defaults to the
    tuple-at-a-time algebra for backward compatibility with callers holding
    plain :class:`~repro.evaluation.relation.Bindings`.
    """
    if kernel is None:
        from repro.evaluation.kernels import TupleKernel

        kernel = TupleKernel(stats)

    nodes = list(tree.nodes)
    if set(nodes) != set(bindings):
        raise ValueError("tree nodes and bindings keys differ")
    if not nodes:
        return frozenset({()}) if not head else frozenset()

    head = tuple(head)
    local: dict[Hashable, object] = dict(bindings)
    root = nodes[0]
    order = list(nx.dfs_postorder_nodes(tree, source=root))
    parent: dict[Hashable, Hashable] = {
        child: par for par, child in nx.bfs_edges(tree, source=root)
    }

    # Upward semijoin sweep: after it, the root is consistent downward.
    for node in order:
        if node == root:
            continue
        par = parent[node]
        local[par] = kernel.semijoin(local[par], local[node])
        if local[par].is_empty:
            return frozenset()

    # Downward sweep: full reduction (global consistency).
    for node in reversed(order):
        for child in tree.neighbors(node):
            if parent.get(child) == node:
                local[child] = kernel.semijoin(local[child], local[node])

    # Final upward join, projecting to head variables plus the connector to
    # the parent — the Yannakakis answer-computation pass.
    head_set = set(head)
    results: dict[Hashable, object] = {}

    for node in order:
        current = local[node]
        for child in tree.neighbors(node):
            if parent.get(child) == node:
                current = kernel.join(current, results[child])
        if node == root:
            keep = [c for c in current.columns if c in head_set]
        else:
            parent_columns = set(local[parent[node]].columns)
            keep = [
                c
                for c in current.columns
                if c in head_set or c in parent_columns
            ]
        results[node] = kernel.project(current, keep)

    final = results[root]
    missing = head_set - set(final.columns)
    if missing:
        raise ValueError(
            f"head variables {sorted(map(repr, missing))} not covered by the tree"
        )
    return kernel.project_answer(final, head)
