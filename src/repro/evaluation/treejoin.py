"""The shared Yannakakis-style tree algorithm.

Yannakakis evaluation, bounded-treewidth evaluation and hypertree evaluation
all reduce to the same skeleton: a tree whose nodes carry bindings relations,
processed with an upward semijoin sweep, a downward semijoin sweep, and a
final upward join-project that keeps only head variables plus connectors.
This module implements that skeleton once.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.evaluation.relation import Bindings, join, project, project_answer, semijoin
from repro.evaluation.stats import EvalStats

Answer = frozenset[tuple]


def tree_join_evaluate(
    tree: nx.Graph,
    bindings: Mapping[Hashable, Bindings],
    head: Sequence[str],
    stats: EvalStats | None = None,
) -> Answer:
    """Evaluate an acyclic join of ``bindings`` along ``tree``.

    ``tree`` must be a tree (or a single node) whose node set equals the keys
    of ``bindings``; the bindings must satisfy the join-tree property (shared
    variables of two nodes appear along the path between them).  ``head``
    variables must each occur in some node.
    """
    nodes = list(tree.nodes)
    if set(nodes) != set(bindings):
        raise ValueError("tree nodes and bindings keys differ")
    if not nodes:
        return frozenset({()}) if not head else frozenset()

    head = tuple(head)
    local: dict[Hashable, Bindings] = dict(bindings)
    root = nodes[0]
    order = list(nx.dfs_postorder_nodes(tree, source=root))
    parent: dict[Hashable, Hashable] = {
        child: par for par, child in nx.bfs_edges(tree, source=root)
    }

    # Upward semijoin sweep: after it, the root is consistent downward.
    for node in order:
        if node == root:
            continue
        par = parent[node]
        local[par] = semijoin(local[par], local[node], stats)
        if local[par].is_empty:
            return frozenset()

    # Downward sweep: full reduction (global consistency).
    for node in reversed(order):
        for child in tree.neighbors(node):
            if parent.get(child) == node:
                local[child] = semijoin(local[child], local[node], stats)

    # Final upward join, projecting to head variables plus the connector to
    # the parent — the Yannakakis answer-computation pass.
    head_set = set(head)
    results: dict[Hashable, Bindings] = {}

    for node in order:
        current = local[node]
        for child in tree.neighbors(node):
            if parent.get(child) == node:
                current = join(current, results[child], stats)
        if node == root:
            keep = [c for c in current.columns if c in head_set]
        else:
            parent_columns = set(local[parent[node]].columns)
            keep = [
                c
                for c in current.columns
                if c in head_set or c in parent_columns
            ]
        results[node] = project(current, keep, stats)

    final = results[root]
    missing = head_set - set(final.columns)
    if missing:
        raise ValueError(
            f"head variables {sorted(map(repr, missing))} not covered by the tree"
        )
    return project_answer(final, head)
