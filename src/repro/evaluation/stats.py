"""Instrumentation counters for the evaluation engine.

The benchmarks of the reproduction report these counters alongside wall-clock
time: they expose the ``|D|^O(|Q|)`` vs ``O(|D| · |Q'|)`` shapes of the
introduction's complexity comparison independently of interpreter noise.

The columnar engine reports *per-operator* row counters on top of the
legacy totals: every kernel invocation records how many rows it scanned
(read from inputs), hashed (pushed through a hash/group index build), and
emitted (wrote to its output) under its operator name (``scan``, ``join``,
``semijoin``, ``project``, ``extend``) — the machine-readable shape of a
query plan profile, surfaced by ``repro evaluate --stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The per-operator counter names tracked by :meth:`EvalStats.record_op`.
OP_COUNTERS = ("calls", "rows_scanned", "rows_hashed", "rows_emitted")


@dataclass
class EvalStats:
    """Mutable counters filled in by the evaluation algorithms."""

    tuples_scanned: int = 0
    intermediate_max: int = 0
    joins: int = 0
    semijoins: int = 0
    #: Rows pushed through a hash-index / group-code build across all
    #: operators (the probe-side rows of every hash join and semijoin).
    rows_hashed: int = 0
    #: Rows written to operator outputs across all operators.
    rows_emitted: int = 0
    #: Per-operator breakdown: operator name -> counter dict
    #: (``calls``/``rows_scanned``/``rows_hashed``/``rows_emitted``).
    operators: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def saw_intermediate(self, size: int) -> None:
        if size > self.intermediate_max:
            self.intermediate_max = size

    def record_op(
        self,
        op: str,
        *,
        scanned: int = 0,
        hashed: int = 0,
        emitted: int = 0,
    ) -> None:
        """Charge one operator invocation to the per-operator ledgers.

        Updates the operator's bucket and the cross-operator totals
        (``rows_hashed``/``rows_emitted``); the legacy totals
        (``tuples_scanned``, ``joins``, ``semijoins``, ``intermediate_max``)
        stay the callers' responsibility so historical counting semantics
        are untouched.
        """
        bucket = self.operators.setdefault(op, dict.fromkeys(OP_COUNTERS, 0))
        bucket["calls"] += 1
        bucket["rows_scanned"] += scanned
        bucket["rows_hashed"] += hashed
        bucket["rows_emitted"] += emitted
        self.rows_hashed += hashed
        self.rows_emitted += emitted

    def merge(self, other: "EvalStats") -> None:
        self.tuples_scanned += other.tuples_scanned
        self.intermediate_max = max(self.intermediate_max, other.intermediate_max)
        self.joins += other.joins
        self.semijoins += other.semijoins
        self.rows_hashed += other.rows_hashed
        self.rows_emitted += other.rows_emitted
        for op, theirs in other.operators.items():
            bucket = self.operators.setdefault(op, dict.fromkeys(OP_COUNTERS, 0))
            for name in OP_COUNTERS:
                bucket[name] += theirs.get(name, 0)
        self.notes.extend(other.notes)

    def as_dict(self) -> dict:
        """A JSON-ready snapshot (the CLI's ``--stats`` payload)."""
        return {
            "tuples_scanned": self.tuples_scanned,
            "intermediate_max": self.intermediate_max,
            "joins": self.joins,
            "semijoins": self.semijoins,
            "rows_hashed": self.rows_hashed,
            "rows_emitted": self.rows_emitted,
            "operators": {
                op: dict(bucket) for op, bucket in sorted(self.operators.items())
            },
            "notes": list(self.notes),
        }
