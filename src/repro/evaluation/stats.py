"""Instrumentation counters for the evaluation engine.

The benchmarks of the reproduction report these counters alongside wall-clock
time: they expose the ``|D|^O(|Q|)`` vs ``O(|D| · |Q'|)`` shapes of the
introduction's complexity comparison independently of interpreter noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EvalStats:
    """Mutable counters filled in by the evaluation algorithms."""

    tuples_scanned: int = 0
    intermediate_max: int = 0
    joins: int = 0
    semijoins: int = 0
    notes: list[str] = field(default_factory=list)

    def saw_intermediate(self, size: int) -> None:
        if size > self.intermediate_max:
            self.intermediate_max = size

    def merge(self, other: "EvalStats") -> None:
        self.tuples_scanned += other.tuples_scanned
        self.intermediate_max = max(self.intermediate_max, other.intermediate_max)
        self.joins += other.joins
        self.semijoins += other.semijoins
        self.notes.extend(other.notes)
