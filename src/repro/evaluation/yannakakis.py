"""Yannakakis' algorithm for acyclic conjunctive queries.

For an acyclic CQ the GYO reduction yields a join tree over the atoms; a
full-reducer semijoin program followed by a join-project sweep evaluates the
query with combined complexity polynomial in ``|D|`` and ``|Q|`` — the
target complexity of the paper's acyclic approximations (checking
``ā ∈ Q'(D)`` costs ``O(|D| · |Q'|)``).
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.kernels import DEFAULT_ENGINE, make_kernel
from repro.evaluation.stats import EvalStats
from repro.evaluation.treejoin import tree_join_evaluate
from repro.hypergraphs.gyo import gyo_join_tree

Answer = frozenset[tuple]


class CyclicQueryError(ValueError):
    """Raised when Yannakakis is applied to a cyclic query."""


def atom_join_tree(query: ConjunctiveQuery):
    """The GYO join tree over atom indices, or ``None`` for cyclic queries."""
    labelled = [
        (index, atom.variables) for index, atom in enumerate(query.atoms)
    ]
    return gyo_join_tree(labelled)


def yannakakis_evaluate(
    query: ConjunctiveQuery,
    db: Structure,
    stats: EvalStats | None = None,
    *,
    engine: str = DEFAULT_ENGINE,
) -> Answer:
    """Evaluate an acyclic CQ with the full-reducer algorithm."""
    tree = atom_join_tree(query)
    if tree is None:
        raise CyclicQueryError(f"query is not acyclic: {query}")
    kernel = make_kernel(engine, stats)
    bindings = {
        index: kernel.atom_bindings(db, atom)
        for index, atom in enumerate(query.atoms)
    }
    return tree_join_evaluate(tree, bindings, query.head, stats, kernel=kernel)


def yannakakis_boolean(
    query: ConjunctiveQuery,
    db: Structure,
    stats: EvalStats | None = None,
    *,
    engine: str = DEFAULT_ENGINE,
) -> bool:
    """Boolean acyclic evaluation (true iff the answer is non-empty)."""
    if not query.is_boolean:
        raise ValueError("yannakakis_boolean expects a Boolean query")
    return bool(yannakakis_evaluate(query, db, stats, engine=engine))
