"""Baseline CQ evaluation: materialized joins and backtracking.

``naive_join_evaluate`` is the textbook left-to-right join plan with fully
materialized intermediates — its combined complexity is ``|D|^O(|Q|)``, the
cost the paper's approximations are designed to avoid.

``backtracking_evaluate`` is the tuple-at-a-time counterpart (still
worst-case exponential in ``|Q|``, but with no materialization), and
``hom_evaluate`` answers through the homomorphism engine — the semantic
reference implementation (``ā ∈ Q(D)`` iff ``(T_Q, x̄) → (D, ā)``).
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.kernels import DEFAULT_ENGINE, make_kernel
from repro.evaluation.stats import EvalStats

Value = Hashable
Answer = frozenset[tuple]


def _ordered_atoms(query: ConjunctiveQuery) -> list[Atom]:
    """Greedy connectivity order: prefer atoms sharing variables with the
    prefix (avoids obvious cartesian products without real optimization)."""
    remaining = list(query.atoms)
    ordered: list[Atom] = []
    seen: set[str] = set()
    while remaining:
        connected = [a for a in remaining if a.variables & seen]
        chosen = connected[0] if connected else remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
        seen |= chosen.variables
    return ordered


def naive_join_evaluate(
    query: ConjunctiveQuery,
    db: Structure,
    stats: EvalStats | None = None,
    *,
    engine: str = DEFAULT_ENGINE,
) -> Answer:
    """Left-to-right materialized join — the ``|D|^O(|Q|)`` baseline."""
    kernel = make_kernel(engine, stats)
    current = kernel.unit()
    for atom in _ordered_atoms(query):
        current = kernel.join(current, kernel.atom_bindings(db, atom))
        if current.is_empty:
            return frozenset()
    return kernel.project_answer(current, query.head)


def backtracking_evaluate(
    query: ConjunctiveQuery, db: Structure, stats: EvalStats | None = None
) -> Answer:
    """Tuple-at-a-time backtracking with per-relation indexes."""
    atoms = _ordered_atoms(query)
    answers: set[tuple] = set()

    def extend(index: int, binding: dict[str, Value]) -> None:
        if index == len(atoms):
            answers.add(tuple(binding[v] for v in query.head))
            return
        atom = atoms[index]
        for fact in db.tuples(atom.relation):
            if stats is not None:
                stats.tuples_scanned += 1
            local = dict(binding)
            for variable, value in zip(atom.args, fact):
                if local.setdefault(variable, value) != value:
                    break
            else:
                extend(index + 1, local)

    extend(0, {})
    if stats is not None:
        stats.saw_intermediate(len(answers))
    return frozenset(answers)


def hom_evaluate(query: ConjunctiveQuery, db: Structure) -> Answer:
    """Reference semantics: answers are images of the distinguished tuple
    under homomorphisms ``T_Q → D``.

    Runs through the shared homomorphism engine, so repeated evaluations
    against the same database reuse its inverted tuple indexes.
    """
    from repro.homomorphism.engine import default_engine

    tableau = query.tableau()
    return frozenset(
        tuple(hom[v] for v in tableau.distinguished)
        for hom in default_engine().iter_homomorphisms(tableau.structure, db)
    )
