"""Set partitions, enumerated via restricted growth strings.

The approximation algorithms of the paper enumerate homomorphic images of a
tableau.  Every homomorphic image of a structure is (isomorphic to) a quotient
by the kernel of the homomorphism, so enumerating images amounts to
enumerating set partitions of the domain (Theorem 4.1 of the paper).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Iterator, Sequence


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """Number of set partitions of an ``n``-element set.

    Computed with the Bell triangle.  ``bell_number(0) == 1``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    row = [1]
    for _ in range(n):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[0]


def rgs_codes(
    n: int, *, prefix: Sequence[int] = ()
) -> Iterator[tuple[int, ...]]:
    """Restricted growth strings of length ``n`` in lexicographic order.

    A restricted growth string satisfies ``a[0] = 0`` and
    ``a[i] <= max(a[0..i-1]) + 1``; strings of length ``n`` are in bijection
    with set partitions of an ``n``-element set.  With ``prefix`` the first
    ``len(prefix)`` positions are held fixed and only the completions are
    enumerated — this is the sharding primitive of the parallel approximation
    pipeline: distinct prefixes enumerate disjoint slices of the partition
    stream, and the union over all prefixes of a given depth is the full
    stream, still in global lexicographic order when prefixes are visited in
    lexicographic order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    prefix = tuple(prefix)
    if len(prefix) > n:
        raise ValueError(f"prefix of length {len(prefix)} exceeds n={n}")
    for i, code in enumerate(prefix):
        bound = max(prefix[:i], default=-1) + 1
        if code < 0 or code > bound:
            raise ValueError(f"{prefix!r} is not a restricted growth string")
    if n == 0:
        yield ()
        return
    fixed = len(prefix)
    codes = list(prefix) + [0] * (n - fixed)
    while True:
        yield tuple(codes)
        # Advance the free suffix to the next restricted growth string.
        i = n - 1
        while i > fixed - 1 and i > 0:
            bound = max(codes[:i]) + 1
            if codes[i] < bound:
                codes[i] += 1
                for j in range(i + 1, n):
                    codes[j] = 0
                break
            i -= 1
        else:
            return


def rgs_prefixes(depth: int) -> list[tuple[int, ...]]:
    """All restricted growth strings of length ``depth``, lexicographically.

    There are ``bell_number(depth)`` of them; they shard the partitions of
    any set with at least ``depth`` elements into disjoint slices.
    """
    return list(rgs_codes(depth))


def _blocks_of(
    items: Sequence[Hashable], codes: Sequence[int]
) -> tuple[tuple[Hashable, ...], ...]:
    block_count = max(codes) + 1
    blocks: list[list[Hashable]] = [[] for _ in range(block_count)]
    for item, code in zip(items, codes):
        blocks[code].append(item)
    return tuple(tuple(block) for block in blocks)


def set_partitions(
    items: Sequence[Hashable], *, prefix: Sequence[int] | None = None
) -> Iterator[tuple[tuple[Hashable, ...], ...]]:
    """Yield every set partition of ``items`` as a tuple of blocks.

    Partitions are produced in restricted-growth-string order; each block is a
    tuple preserving the original order of ``items``, and blocks are ordered
    by their first element.  The number of partitions is ``bell_number(n)``.
    With ``prefix`` (a restricted growth string over the first ``len(prefix)``
    items) only the partitions extending that prefix are produced — see
    :func:`rgs_codes`.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        if prefix:
            raise ValueError("non-empty prefix for an empty item sequence")
        yield ()
        return
    for codes in rgs_codes(n, prefix=prefix or ()):
        yield _blocks_of(items, codes)


def partition_to_mapping(
    partition: Iterable[Sequence[Hashable]],
) -> dict[Hashable, Hashable]:
    """Map every element of every block to the block's first element.

    The resulting mapping realizes the quotient by the partition, using block
    representatives as the quotient's domain.
    """
    mapping: dict[Hashable, Hashable] = {}
    for block in partition:
        block = tuple(block)
        if not block:
            raise ValueError("partition blocks must be non-empty")
        representative = block[0]
        for element in block:
            if element in mapping:
                raise ValueError(f"element {element!r} occurs in two blocks")
            mapping[element] = representative
    return mapping


def canonical_partition(
    partition: Iterable[Sequence[Hashable]],
) -> frozenset[frozenset[Hashable]]:
    """A hashable, order-insensitive form of a partition."""
    return frozenset(frozenset(block) for block in partition)


def refinements(
    partition: Sequence[Sequence[Hashable]],
) -> Iterator[tuple[tuple[Hashable, ...], ...]]:
    """Yield all proper refinements of ``partition``.

    A refinement splits at least one block into smaller blocks; the trivial
    refinement (the partition itself) is not produced.  Used by the greedy
    descent of the approximation search.
    """
    blocks = [tuple(block) for block in partition]

    def sub_partitions(block: tuple[Hashable, ...]) -> list[tuple[tuple[Hashable, ...], ...]]:
        return list(set_partitions(block))

    choices = [sub_partitions(block) for block in blocks]

    def recurse(index: int, acc: list[tuple[Hashable, ...]], proper: bool) -> Iterator[
        tuple[tuple[Hashable, ...], ...]
    ]:
        if index == len(blocks):
            if proper:
                yield tuple(acc)
            return
        for option in choices[index]:
            yield from recurse(
                index + 1, acc + list(option), proper or len(option) > 1
            )

    yield from recurse(0, [], False)
