"""Set partitions, enumerated via restricted growth strings.

The approximation algorithms of the paper enumerate homomorphic images of a
tableau.  Every homomorphic image of a structure is (isomorphic to) a quotient
by the kernel of the homomorphism, so enumerating images amounts to
enumerating set partitions of the domain (Theorem 4.1 of the paper).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Iterator, Sequence


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """Number of set partitions of an ``n``-element set.

    Computed with the Bell triangle.  ``bell_number(0) == 1``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    row = [1]
    for _ in range(n):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[0]


def rgs_codes(
    n: int, *, prefix: Sequence[int] = ()
) -> Iterator[tuple[int, ...]]:
    """Restricted growth strings of length ``n`` in lexicographic order.

    A restricted growth string satisfies ``a[0] = 0`` and
    ``a[i] <= max(a[0..i-1]) + 1``; strings of length ``n`` are in bijection
    with set partitions of an ``n``-element set.  With ``prefix`` the first
    ``len(prefix)`` positions are held fixed and only the completions are
    enumerated — this is the sharding primitive of the parallel approximation
    pipeline: distinct prefixes enumerate disjoint slices of the partition
    stream, and the union over all prefixes of a given depth is the full
    stream, still in global lexicographic order when prefixes are visited in
    lexicographic order.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    prefix = tuple(prefix)
    if len(prefix) > n:
        raise ValueError(f"prefix of length {len(prefix)} exceeds n={n}")
    for i, code in enumerate(prefix):
        bound = max(prefix[:i], default=-1) + 1
        if code < 0 or code > bound:
            raise ValueError(f"{prefix!r} is not a restricted growth string")
    if n == 0:
        yield ()
        return
    fixed = len(prefix)
    codes = list(prefix) + [0] * (n - fixed)
    while True:
        yield tuple(codes)
        # Advance the free suffix to the next restricted growth string.
        i = n - 1
        while i > fixed - 1 and i > 0:
            bound = max(codes[:i]) + 1
            if codes[i] < bound:
                codes[i] += 1
                for j in range(i + 1, n):
                    codes[j] = 0
                break
            i -= 1
        else:
            return


def rgs_prefixes(depth: int) -> list[tuple[int, ...]]:
    """All restricted growth strings of length ``depth``, lexicographically.

    There are ``bell_number(depth)`` of them; they shard the partitions of
    any set with at least ``depth`` elements into disjoint slices.
    """
    return list(rgs_codes(depth))


def _blocks_of(
    items: Sequence[Hashable], codes: Sequence[int]
) -> tuple[tuple[Hashable, ...], ...]:
    block_count = max(codes) + 1
    blocks: list[list[Hashable]] = [[] for _ in range(block_count)]
    for item, code in zip(items, codes):
        blocks[code].append(item)
    return tuple(tuple(block) for block in blocks)


def set_partitions(
    items: Sequence[Hashable], *, prefix: Sequence[int] | None = None
) -> Iterator[tuple[tuple[Hashable, ...], ...]]:
    """Yield every set partition of ``items`` as a tuple of blocks.

    Partitions are produced in restricted-growth-string order; each block is a
    tuple preserving the original order of ``items``, and blocks are ordered
    by their first element.  The number of partitions is ``bell_number(n)``.
    With ``prefix`` (a restricted growth string over the first ``len(prefix)``
    items) only the partitions extending that prefix are produced — see
    :func:`rgs_codes`.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        if prefix:
            raise ValueError("non-empty prefix for an empty item sequence")
        yield ()
        return
    for codes in rgs_codes(n, prefix=prefix or ()):
        yield _blocks_of(items, codes)


def code_coarsens(
    fine: Sequence[int] | None, coarse: Sequence[int] | None
) -> bool:
    """Whether the partition coded by ``fine`` refines the one by ``coarse``.

    Both arguments are restricted growth strings over the same element
    order.  ``fine`` refines ``coarse`` when every block of ``fine`` lies
    inside a single block of ``coarse`` — equivalently, the block map
    ``fine[i] → coarse[i]`` is well defined.  When it is, the quotient map
    ``T/fine → T/coarse`` is a homomorphism of the quotient tableaux, which
    is what makes this an O(n) positive fast path for the frontier's order
    queries.  ``None`` on either side means "no code available" and answers
    ``False``.
    """
    if fine is None or coarse is None:
        return False
    image: dict[int, int] = {}
    for f, c in zip(fine, coarse):
        if image.setdefault(f, c) != c:
            return False
    return True


class RefinementTrie:
    """A trie over restricted-growth-string partition codes answering
    "does some stored code refine this one?" in sublinear time.

    Stored codes share one length (one base element order).  The trie
    branches on code positions: a node at depth ``d`` keeps one child per
    block id ever seen at position ``d`` below it.  A query walks the trie
    with the candidate code ``c``, maintaining the partial block map of
    :func:`code_coarsens` — since stored codes are restricted growth
    strings, the blocks of a stored code appear in order ``0, 1, 2, …``,
    so the partial map is just a list ``assigned`` with ``assigned[v]``
    the ``c``-block that stored block ``v`` must land in.  A child ``v``
    is compatible iff it is the next fresh block (``v == len(assigned)``,
    which may land anywhere) or its assigned ``c``-block equals ``c[d]``.
    Only compatible paths are explored, so a lookup touches the stored
    codes sharing a compatible prefix instead of scanning every entry —
    the linear antichain scan this structure replaces paid
    ``O(entries · n)`` per query.

    Each stored code carries a payload (the frontier's repair witness).
    Any hit is as good as any other for the caller — see
    :meth:`repro.core.pipeline.Frontier._refinement_lookup`'s uniqueness
    argument — so the walk returns the first complete match it finds.

    Children are plain dicts, but a subclass may *spill* whole subtrees
    to disk, replacing the child dict with an opaque non-dict slot
    marker.  Every walk resolves such markers through
    :meth:`_resolve_child`, which the spilling subclass overrides to
    reload the segment (see :class:`repro.runtime.spill.
    SpillableRefinementTrie`); the base class never creates markers, so
    the ``type(child) is dict`` fast path is all it ever pays.
    """

    __slots__ = ("_root", "_size")

    #: Leaf key for the payload — no block id is negative, so it can never
    #: collide with a child edge.
    _LEAF = -1

    def __init__(self) -> None:
        self._root: dict = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _resolve_child(self, parent: dict, edge: int, marker: object) -> dict:
        """Turn a spilled-slot marker back into a child dict (subclass hook)."""
        raise TypeError(
            f"trie child {marker!r} is not a node and no spill loader is "
            "installed"
        )

    def add(self, codes: Sequence[int], payload: object = None) -> None:
        """Store ``codes`` with ``payload`` (overwriting an equal code)."""
        node = self._root
        for value in codes:
            child = node.get(value)
            if child is None:
                child = node[value] = {}
            elif type(child) is not dict:
                child = self._resolve_child(node, value, child)
            node = child
        if self._LEAF not in node:
            self._size += 1
        node[self._LEAF] = payload

    def codes(self) -> Iterator[tuple[tuple[int, ...], object]]:
        """Yield every stored ``(code, payload)`` pair.

        The export side of shipping a trie across a process or network
        boundary as plain picklable tuples: the receiver rebuilds with
        :meth:`add`.  Spilled segments are transparently reloaded.
        """
        stack: list[tuple[dict, tuple[int, ...]]] = [(self._root, ())]
        while stack:
            node, prefix = stack.pop()
            for value, child in node.items():
                if value == self._LEAF:
                    yield prefix, child
                else:
                    if type(child) is not dict:
                        child = self._resolve_child(node, value, child)
                    stack.append((child, prefix + (value,)))

    def find_refinement(
        self, codes: Sequence[int]
    ) -> tuple[bool, object | None]:
        """``(hit, payload)`` for some stored code refining ``codes``."""
        codes = tuple(codes)
        n = len(codes)
        # Depth-first over compatible children; each stack frame is
        # (node, depth, assigned-prefix).  ``assigned`` is shared copy-on-
        # extend: fresh blocks append, so sibling branches need their own
        # tuple — kept small by the restricted-growth structure.
        stack: list[tuple[dict, int, tuple[int, ...]]] = [(self._root, 0, ())]
        while stack:
            node, depth, assigned = stack.pop()
            if depth == n:
                if self._LEAF in node:
                    return True, node[self._LEAF]
                continue
            c_block = codes[depth]
            fresh = len(assigned)
            for value, child in node.items():
                if value == self._LEAF:
                    continue
                if value == fresh:
                    if type(child) is not dict:
                        child = self._resolve_child(node, value, child)
                    stack.append((child, depth + 1, assigned + (c_block,)))
                elif value < fresh and assigned[value] == c_block:
                    if type(child) is not dict:
                        child = self._resolve_child(node, value, child)
                    stack.append((child, depth + 1, assigned))
        return False, None

    def find_coarsening(
        self, codes: Sequence[int]
    ) -> tuple[bool, object | None]:
        """``(hit, payload)`` for some stored code that ``codes`` refines.

        The dual of :meth:`find_refinement`: a hit means every block of
        ``codes`` lies inside a block of some stored code.  The walk
        maintains the map *query-block → stored-block* instead — a child
        is compatible when the query block at this position is unbound or
        already bound to exactly this stored block.  (``codes`` need not be
        a restricted growth string here; only its equality pattern
        matters.)
        """
        codes = tuple(codes)
        n = len(codes)
        hit: list = [None]

        def walk(node: dict, depth: int, image: dict) -> bool:
            if depth == n:
                if self._LEAF in node:
                    hit[0] = node[self._LEAF]
                    return True
                return False
            query_block = codes[depth]
            bound = image.get(query_block)
            for value, child in node.items():
                if value == self._LEAF:
                    continue
                if bound is None:
                    if type(child) is not dict:
                        child = self._resolve_child(node, value, child)
                    image[query_block] = value
                    if walk(child, depth + 1, image):
                        return True
                    del image[query_block]
                elif bound == value:
                    if type(child) is not dict:
                        child = self._resolve_child(node, value, child)
                    if walk(child, depth + 1, image):
                        return True
            return False

        if walk(self._root, 0, {}):
            return True, hit[0]
        return False, None


def partition_to_mapping(
    partition: Iterable[Sequence[Hashable]],
) -> dict[Hashable, Hashable]:
    """Map every element of every block to the block's first element.

    The resulting mapping realizes the quotient by the partition, using block
    representatives as the quotient's domain.
    """
    mapping: dict[Hashable, Hashable] = {}
    for block in partition:
        block = tuple(block)
        if not block:
            raise ValueError("partition blocks must be non-empty")
        representative = block[0]
        for element in block:
            if element in mapping:
                raise ValueError(f"element {element!r} occurs in two blocks")
            mapping[element] = representative
    return mapping


def canonical_partition(
    partition: Iterable[Sequence[Hashable]],
) -> frozenset[frozenset[Hashable]]:
    """A hashable, order-insensitive form of a partition."""
    return frozenset(frozenset(block) for block in partition)


def refinements(
    partition: Sequence[Sequence[Hashable]],
) -> Iterator[tuple[tuple[Hashable, ...], ...]]:
    """Yield all proper refinements of ``partition``.

    A refinement splits at least one block into smaller blocks; the trivial
    refinement (the partition itself) is not produced.  Used by the greedy
    descent of the approximation search.
    """
    blocks = [tuple(block) for block in partition]

    def sub_partitions(block: tuple[Hashable, ...]) -> list[tuple[tuple[Hashable, ...], ...]]:
        return list(set_partitions(block))

    choices = [sub_partitions(block) for block in blocks]

    def recurse(index: int, acc: list[tuple[Hashable, ...]], proper: bool) -> Iterator[
        tuple[tuple[Hashable, ...], ...]
    ]:
        if index == len(blocks):
            if proper:
                yield tuple(acc)
            return
        for option in choices[index]:
            yield from recurse(
                index + 1, acc + list(option), proper or len(option) > 1
            )

    yield from recurse(0, [], False)
