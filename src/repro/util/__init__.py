"""Small shared helpers used across the library."""

from repro.util.partitions import (
    RefinementTrie,
    bell_number,
    canonical_partition,
    code_coarsens,
    partition_to_mapping,
    refinements,
    rgs_codes,
    rgs_prefixes,
    set_partitions,
)
from repro.util.disjoint_set import DisjointSet
from repro.util.naming import fresh_names

__all__ = [
    "DisjointSet",
    "RefinementTrie",
    "bell_number",
    "canonical_partition",
    "code_coarsens",
    "fresh_names",
    "partition_to_mapping",
    "refinements",
    "rgs_codes",
    "rgs_prefixes",
    "set_partitions",
]
