"""Small shared helpers used across the library."""

from repro.util.partitions import (
    bell_number,
    canonical_partition,
    partition_to_mapping,
    refinements,
    rgs_codes,
    rgs_prefixes,
    set_partitions,
)
from repro.util.disjoint_set import DisjointSet
from repro.util.naming import fresh_names

__all__ = [
    "DisjointSet",
    "bell_number",
    "canonical_partition",
    "fresh_names",
    "partition_to_mapping",
    "refinements",
    "rgs_codes",
    "rgs_prefixes",
    "set_partitions",
]
