"""A union-find structure with path compression and union by size."""

from __future__ import annotations

from typing import Hashable, Iterable


class DisjointSet:
    """Union-find over arbitrary hashable elements.

    Elements are added lazily on first use; ``find`` on an unseen element
    creates a fresh singleton set.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> list[frozenset[Hashable]]:
        """All current equivalence classes."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return [frozenset(group) for group in by_root.values()]
