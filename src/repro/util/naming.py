"""Generation of fresh element/variable names."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


def fresh_names(taken: Iterable[Hashable], prefix: str = "z") -> Iterator[str]:
    """Yield an endless stream of names not present in ``taken``.

    Names look like ``z0, z1, ...``; the stream skips collisions with the
    initial ``taken`` set (later external additions are the caller's concern).
    """
    used = set(taken)
    index = 0
    while True:
        name = f"{prefix}{index}"
        if name not in used:
            used.add(name)
            yield name
        index += 1
