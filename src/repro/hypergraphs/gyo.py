"""GYO reduction: hypergraph acyclicity and join trees.

A hypergraph is acyclic iff the Graham/Yu–Özsoyoğlu reduction succeeds:
repeatedly (1) delete vertices occurring in a single hyperedge and (2) delete
hyperedges contained in other hyperedges.  Acyclicity is equivalent to the
existence of a tree decomposition whose bags are exactly hyperedges
(Section 3) and to hypertree width 1 (Section 6); Yannakakis' algorithm
evaluates acyclic CQs along the join tree the reduction produces.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


def gyo_join_tree(
    labelled_edges: Sequence[tuple[Hashable, frozenset[Vertex]]],
) -> nx.Graph | None:
    """Run GYO on labelled hyperedges; return a join tree or ``None``.

    ``labelled_edges`` may contain duplicate vertex sets under different
    labels (multiple atoms over the same variables).  The returned tree has
    the labels as nodes and satisfies the join-tree (connectedness) property;
    ``None`` means the hypergraph is cyclic.
    """
    if not labelled_edges:
        return nx.Graph()

    current: dict[Hashable, set[Vertex]] = {
        label: set(edge) for label, edge in labelled_edges
    }
    tree = nx.Graph()
    tree.add_nodes_from(current)

    def occurrences() -> dict[Vertex, list[Hashable]]:
        where: dict[Vertex, list[Hashable]] = {}
        for label, edge in current.items():
            for vertex in edge:
                where.setdefault(vertex, []).append(label)
        return where

    changed = True
    while changed and len(current) > 1:
        changed = False

        # Rule 1: drop vertices that occur in exactly one hyperedge.
        for vertex, labels in occurrences().items():
            if len(labels) == 1:
                current[labels[0]].discard(vertex)
                changed = True

        # Rule 2: absorb a hyperedge contained in another one.
        labels = sorted(current, key=repr)
        absorbed = None
        for small in labels:
            for big in labels:
                if small != big and current[small] <= current[big]:
                    absorbed = (small, big)
                    break
            if absorbed:
                break
        if absorbed:
            small, big = absorbed
            tree.add_edge(small, big)
            del current[small]
            changed = True

    if len(current) > 1:
        return None
    return tree


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """Whether the hypergraph is (α-)acyclic."""
    labelled = [(edge, edge) for edge in hypergraph.edges]
    return gyo_join_tree(labelled) is not None


def join_tree(hypergraph: Hypergraph) -> nx.Graph | None:
    """A join tree over the hyperedges, or ``None`` for cyclic hypergraphs."""
    labelled = [(edge, edge) for edge in hypergraph.edges]
    return gyo_join_tree(labelled)


def is_acyclic_query(query) -> bool:
    """Whether a CQ is acyclic (its hypergraph passes GYO)."""
    from repro.hypergraphs.hypergraph import hypergraph_of_query

    return is_acyclic(hypergraph_of_query(query))


def is_acyclic_structure(structure) -> bool:
    """Whether a tableau/structure is acyclic in the hypergraph sense."""
    from repro.hypergraphs.hypergraph import hypergraph_of_structure

    return is_acyclic(hypergraph_of_structure(structure))
