"""Hypergraphs, acyclicity, treewidth, (generalized) hypertree width."""

from repro.hypergraphs.hypergraph import (
    Hypergraph,
    hypergraph_of_query,
    hypergraph_of_structure,
)
from repro.hypergraphs.gyo import (
    gyo_join_tree,
    is_acyclic,
    is_acyclic_query,
    is_acyclic_structure,
    join_tree,
)
from repro.hypergraphs.treedecomp import HypertreeDecomposition, TreeDecomposition
from repro.hypergraphs.treewidth import (
    decomposition_from_elimination,
    query_treewidth_at_most,
    tree_decomposition,
    treewidth_at_most,
    treewidth_exact,
    treewidth_of_query,
    treewidth_upper_bound,
)
from repro.hypergraphs.hypertree import (
    hypertree_decomposition,
    hypertree_width,
    hypertree_width_at_most,
    query_hypertree_width_at_most,
)
from repro.hypergraphs.ghw import (
    generalized_hypertree_decomposition,
    generalized_hypertree_width,
    generalized_hypertree_width_at_most,
    query_ghw_at_most,
)

__all__ = [
    "Hypergraph",
    "HypertreeDecomposition",
    "TreeDecomposition",
    "decomposition_from_elimination",
    "generalized_hypertree_decomposition",
    "generalized_hypertree_width",
    "generalized_hypertree_width_at_most",
    "gyo_join_tree",
    "hypergraph_of_query",
    "hypergraph_of_structure",
    "hypertree_decomposition",
    "hypertree_width",
    "hypertree_width_at_most",
    "is_acyclic",
    "is_acyclic_query",
    "is_acyclic_structure",
    "join_tree",
    "query_ghw_at_most",
    "query_hypertree_width_at_most",
    "query_treewidth_at_most",
    "tree_decomposition",
    "treewidth_at_most",
    "treewidth_exact",
    "treewidth_of_query",
    "treewidth_upper_bound",
]
