"""Hypergraphs of conjunctive queries.

For a CQ ``Q``, the hypergraph ``H(Q)`` has the variables of ``Q`` as nodes
and the variable set of each atom as a hyperedge (Section 3).  The two
closure operations of Theorem 6.1 — *induced subhypergraphs* and *edge
extensions* — are provided here and exercised by the hypergraph-based
approximation algorithms.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

Vertex = Hashable


class Hypergraph:
    """An immutable finite hypergraph."""

    __slots__ = ("_vertices", "_edges")

    def __init__(
        self,
        edges: Iterable[Iterable[Vertex]],
        vertices: Iterable[Vertex] = (),
    ) -> None:
        frozen = frozenset(frozenset(edge) for edge in edges)
        if any(not edge for edge in frozen):
            raise ValueError("empty hyperedges are not allowed")
        all_vertices = set(vertices)
        for edge in frozen:
            all_vertices |= edge
        self._edges = frozen
        self._vertices = frozenset(all_vertices)

    @property
    def vertices(self) -> frozenset[Vertex]:
        return self._vertices

    @property
    def edges(self) -> frozenset[frozenset[Vertex]]:
        return self._edges

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Hypergraph):
            return self._vertices == other._vertices and self._edges == other._edges
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._vertices, self._edges))

    def __repr__(self) -> str:
        shown = ", ".join(
            "{" + ",".join(sorted(map(repr, edge))) + "}" for edge in self._edges
        )
        return f"Hypergraph(|V|={len(self._vertices)}, edges=[{shown}])"

    # ------------------------------------------------------------ operations

    def primal_graph(self) -> nx.Graph:
        """The primal (Gaifman) graph: clique per hyperedge, loops dropped."""
        graph = nx.Graph()
        graph.add_nodes_from(self._vertices)
        for edge in self._edges:
            members = sorted(edge, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    graph.add_edge(u, v)
        return graph

    def induced(self, keep: Iterable[Vertex]) -> "Hypergraph":
        """The induced subhypergraph ``<V', {e ∩ V' | e ∈ E}>`` (Section 6).

        Hyperedges that become empty are dropped (a hyperedge disjoint from
        ``V'`` contributes nothing).
        """
        keep = frozenset(keep)
        return Hypergraph(
            (edge & keep for edge in self._edges if edge & keep),
            vertices=keep & self._vertices,
        )

    def extend_edge(
        self, edge: Iterable[Vertex], new_vertices: Iterable[Vertex]
    ) -> "Hypergraph":
        """Edge extension: add fresh nodes to one hyperedge (Section 6)."""
        edge = frozenset(edge)
        new_vertices = frozenset(new_vertices)
        if edge not in self._edges:
            raise ValueError(f"{set(edge)!r} is not a hyperedge")
        if new_vertices & self._vertices:
            raise ValueError("extension vertices must be disjoint from the hypergraph")
        remaining = self._edges - {edge}
        return Hypergraph(
            list(remaining) + [edge | new_vertices], vertices=self._vertices
        )

    def subhypergraph(self, edges: Iterable[Iterable[Vertex]]) -> "Hypergraph":
        """A (non-induced) subhypergraph from a subset of the hyperedges."""
        chosen = frozenset(frozenset(e) for e in edges)
        if not chosen <= self._edges:
            raise ValueError("edges must be hyperedges of this hypergraph")
        return Hypergraph(chosen)

    def edges_of(self, vertex: Vertex) -> list[frozenset[Vertex]]:
        return [edge for edge in self._edges if vertex in edge]


def hypergraph_of_query(query) -> Hypergraph:
    """``H(Q)`` for a :class:`~repro.cq.query.ConjunctiveQuery`."""
    return Hypergraph(query.hyperedges(), vertices=query.variables)


def hypergraph_of_structure(structure) -> Hypergraph:
    """The hypergraph of a structure viewed as a tableau."""
    return Hypergraph(
        (set(row) for _, row in structure.facts()), vertices=structure.domain
    )
