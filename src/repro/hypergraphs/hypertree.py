"""Hypertree width (Gottlob, Leone, Scarcello) — Section 6 of the paper.

A hypertree decomposition is a tree decomposition ``<T, f>`` plus a guard
map ``c : T → 2^E`` with ``f(u) ⊆ ⋃c(u)``, subject to the *special
condition* ``⋃c(u) ∩ ⋃{f(t) | t ∈ T_u} ⊆ f(u)``.  Its width is
``max |c(u)|``; hypertree width 1 coincides with acyclicity, and CQs of
bounded hypertree width have polynomial combined complexity.

The decision procedure below follows the det-k-decomp scheme (Gottlob &
Samer): recursively decompose (edge-component, connector) states, guessing a
guard ``λ`` of at most ``k`` hyperedges; by the normal-form theorem of
Gottlob–Leone–Scarcello the bag can be fixed to the maximal choice
``χ = V(λ) ∩ (V(component) ∪ connector)``, which also enforces the special
condition.  States are memoized, making the procedure polynomial for fixed
``k`` up to the number of components.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable

import networkx as nx

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.treedecomp import HypertreeDecomposition
from repro.util.disjoint_set import DisjointSet

Vertex = Hashable


class _HypertreeSolver:
    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        self.hypergraph = hypergraph
        self.k = k
        self.edges: list[frozenset[Vertex]] = sorted(hypergraph.edges, key=repr)
        self.memo: dict[tuple[frozenset, frozenset], bool] = {}
        self.choice: dict[tuple[frozenset, frozenset], tuple] = {}

    # ---------------------------------------------------------------- helpers

    def _components(
        self, component_edges: frozenset[int], bag: frozenset[Vertex]
    ) -> list[tuple[frozenset[int], frozenset[Vertex]]]:
        """Split the uncovered edges into [χ]-components with connectors.

        Two edges are connected when they share a vertex outside ``bag``;
        each component's connector is its vertex set intersected with the
        bag.
        """
        remaining = [
            index for index in sorted(component_edges)
            if not self.edges[index] <= bag
        ]
        if not remaining:
            return []
        union = DisjointSet(remaining)
        anchor: dict[Vertex, int] = {}
        for index in remaining:
            for vertex in self.edges[index]:
                if vertex in bag:
                    continue
                if vertex in anchor:
                    union.union(anchor[vertex], index)
                else:
                    anchor[vertex] = index
        out: list[tuple[frozenset[int], frozenset[Vertex]]] = []
        for group in union.groups():
            vertices = frozenset().union(*(self.edges[i] for i in group))
            out.append((frozenset(group), frozenset(vertices) & bag))
        return out

    def _guard_candidates(self) -> Iterable[tuple[int, ...]]:
        indices = range(len(self.edges))
        for size in range(1, self.k + 1):
            yield from itertools.combinations(indices, size)

    # ----------------------------------------------------------------- search

    def decide(self, component_edges: frozenset[int], connector: frozenset[Vertex]) -> bool:
        state = (component_edges, connector)
        cached = self.memo.get(state)
        if cached is not None:
            return cached

        component_vertices = frozenset().union(
            *(self.edges[i] for i in component_edges)
        ) if component_edges else frozenset()
        scope = component_vertices | connector

        result = False
        for guard in self._guard_candidates():
            cover = frozenset().union(*(self.edges[i] for i in guard))
            if not connector <= cover:
                continue
            bag = cover & scope
            if not bag:
                continue
            children = self._components(component_edges, bag)
            # Progress: every child must be a strictly smaller edge set.
            if any(len(child_edges) >= len(component_edges) for child_edges, _ in children):
                continue
            if all(self.decide(child_edges, child_conn) for child_edges, child_conn in children):
                self.choice[state] = (guard, bag, children)
                result = True
                break
        self.memo[state] = result
        return result

    def build(self) -> HypertreeDecomposition | None:
        all_edges = frozenset(range(len(self.edges)))
        if not all_edges:
            tree = nx.DiGraph()
            tree.add_node("root")
            return HypertreeDecomposition(tree, {"root": frozenset()}, {"root": frozenset()})
        if not self.decide(all_edges, frozenset()):
            return None

        tree = nx.DiGraph()
        chi: dict[Hashable, frozenset[Vertex]] = {}
        guards: dict[Hashable, frozenset[frozenset[Vertex]]] = {}
        counter = itertools.count()

        def expand(state: tuple[frozenset, frozenset]) -> Hashable:
            guard, bag, children = self.choice[state]
            node = next(counter)
            tree.add_node(node)
            chi[node] = bag
            guards[node] = frozenset(self.edges[i] for i in guard)
            for child_state in children:
                child_node = expand(child_state)
                tree.add_edge(node, child_node)
            return node

        expand((all_edges, frozenset()))
        return HypertreeDecomposition(tree, chi, guards)


def hypertree_decomposition(
    hypergraph: Hypergraph, k: int
) -> HypertreeDecomposition | None:
    """A hypertree decomposition of width ≤ k, or ``None`` if none exists."""
    if k < 1:
        return None
    return _HypertreeSolver(hypergraph, k).build()


def hypertree_width_at_most(hypergraph: Hypergraph, k: int) -> bool:
    """Whether ``htw(H) ≤ k``."""
    return hypertree_decomposition(hypergraph, k) is not None


def hypertree_width(hypergraph: Hypergraph, *, max_k: int | None = None) -> int:
    """The exact hypertree width (searched from 1 upward)."""
    bound = max_k if max_k is not None else max(len(hypergraph.edges), 1)
    for k in range(1, bound + 1):
        if hypertree_width_at_most(hypergraph, k):
            return k
    raise ValueError(f"hypertree width exceeds {bound}")


def query_hypertree_width_at_most(query, k: int) -> bool:
    """Membership test for the class HTW(k) of Section 6."""
    from repro.hypergraphs.hypergraph import hypergraph_of_query

    return hypertree_width_at_most(hypergraph_of_query(query), k)
