"""Tree decompositions of hypergraphs (Section 3).

A tree decomposition of ``H = <V, E>`` is a tree ``T`` with a map
``f : T → 2^V`` such that every hyperedge is contained in some ``f(u)`` and
the occurrences of every vertex form a connected subtree.  The width is
``max |f(u)| - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition: a tree plus one bag per tree node."""

    tree: nx.Graph
    bags: Mapping[Hashable, frozenset[Vertex]] = field(default_factory=dict)

    @property
    def width(self) -> int:
        """``max |bag| - 1`` (width -1 for the empty decomposition)."""
        return max((len(bag) for bag in self.bags.values()), default=0) - 1

    def validate(self, hypergraph: Hypergraph) -> list[str]:
        """All violations of the tree-decomposition conditions (empty = valid)."""
        problems: list[str] = []

        if set(self.tree.nodes) != set(self.bags):
            problems.append("tree nodes and bag keys differ")
            return problems
        if self.tree.number_of_nodes() and not nx.is_tree(self.tree):
            problems.append("the decomposition graph is not a tree")
            return problems

        for edge in hypergraph.edges:
            if not any(edge <= bag for bag in self.bags.values()):
                problems.append(f"hyperedge {set(edge)!r} is in no bag")

        for vertex in hypergraph.vertices:
            holders = [node for node, bag in self.bags.items() if vertex in bag]
            if not holders:
                problems.append(f"vertex {vertex!r} is in no bag")
                continue
            subtree = self.tree.subgraph(holders)
            if not nx.is_connected(subtree):
                problems.append(f"occurrences of vertex {vertex!r} are disconnected")
        return problems

    def is_valid(self, hypergraph: Hypergraph) -> bool:
        return not self.validate(hypergraph)


@dataclass(frozen=True)
class HypertreeDecomposition:
    """A (generalized) hypertree decomposition ``<T, χ, λ>`` (Section 6).

    ``chi`` maps tree nodes to vertex bags and ``guards`` maps tree nodes to
    sets of hyperedges covering the bags.  With ``special_condition=True``
    :meth:`validate` checks the genuine hypertree condition
    ``⋃λ(u) ∩ ⋃{χ(t) | t ∈ T_u} ⊆ χ(u)``.
    """

    tree: nx.DiGraph  # rooted: edges point from parent to child
    chi: Mapping[Hashable, frozenset[Vertex]]
    guards: Mapping[Hashable, frozenset[frozenset[Vertex]]]

    @property
    def width(self) -> int:
        """``max |λ(u)|`` over the decomposition nodes."""
        return max((len(g) for g in self.guards.values()), default=0)

    def root(self) -> Hashable:
        roots = [n for n in self.tree.nodes if self.tree.in_degree(n) == 0]
        if len(roots) != 1:
            raise ValueError(f"expected a unique root, found {len(roots)}")
        return roots[0]

    def _subtree_vertices(self) -> dict[Hashable, frozenset[Vertex]]:
        """Vertices of ``χ`` over each subtree (computed bottom-up)."""
        covered: dict[Hashable, frozenset[Vertex]] = {}
        for node in nx.dfs_postorder_nodes(self.tree, source=self.root()):
            acc = set(self.chi[node])
            for child in self.tree.successors(node):
                acc |= covered[child]
            covered[node] = frozenset(acc)
        return covered

    def validate(
        self, hypergraph: Hypergraph, *, special_condition: bool = True
    ) -> list[str]:
        """Violations of the (generalized) hypertree conditions."""
        problems: list[str] = []
        undirected = self.tree.to_undirected()
        base = TreeDecomposition(undirected, self.chi)
        problems.extend(base.validate(hypergraph))

        for node, guard in self.guards.items():
            if not guard <= hypergraph.edges:
                problems.append(f"guard of node {node!r} uses non-hyperedges")
                continue
            union = frozenset().union(*guard) if guard else frozenset()
            if not self.chi[node] <= union:
                problems.append(f"bag of node {node!r} is not covered by its guard")

        if special_condition and self.tree.number_of_nodes():
            covered = self._subtree_vertices()
            for node, guard in self.guards.items():
                union = frozenset().union(*guard) if guard else frozenset()
                if not union & covered[node] <= self.chi[node]:
                    problems.append(
                        f"special condition fails at node {node!r}"
                    )
        return problems

    def is_valid(self, hypergraph: Hypergraph, *, special_condition: bool = True) -> bool:
        return not self.validate(hypergraph, special_condition=special_condition)
