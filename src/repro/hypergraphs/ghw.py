"""Generalized hypertree width (Section 6).

A generalized hypertree decomposition drops the special condition: it is a
tree decomposition whose every bag is covered by at most ``k`` hyperedges.
Deciding ``ghw(H) ≤ k`` is NP-complete for ``k ≥ 3`` (Gottlob, Miklós,
Schwentick — cited as [22]), so unlike :mod:`repro.hypergraphs.hypertree`
this module performs a complete exponential search: the recursion of
det-k-decomp with *all* sub-bags of the guard's cover tried, not only the
maximal one.  Intended for the tableau-sized hypergraphs of this library.
"""

from __future__ import annotations

import itertools
from typing import Hashable

import networkx as nx

from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.treedecomp import HypertreeDecomposition
from repro.util.disjoint_set import DisjointSet

Vertex = Hashable


class _GHWSolver:
    def __init__(self, hypergraph: Hypergraph, k: int) -> None:
        self.hypergraph = hypergraph
        self.k = k
        self.edges: list[frozenset[Vertex]] = sorted(hypergraph.edges, key=repr)
        self.memo: dict[tuple[frozenset, frozenset], bool] = {}
        self.choice: dict[tuple[frozenset, frozenset], tuple] = {}

    def _components(self, component_edges, bag):
        remaining = [
            index for index in sorted(component_edges)
            if not self.edges[index] <= bag
        ]
        if not remaining:
            return []
        union = DisjointSet(remaining)
        anchor: dict[Vertex, int] = {}
        for index in remaining:
            for vertex in self.edges[index]:
                if vertex in bag:
                    continue
                if vertex in anchor:
                    union.union(anchor[vertex], index)
                else:
                    anchor[vertex] = index
        out = []
        for group in union.groups():
            vertices = frozenset().union(*(self.edges[i] for i in group))
            out.append((frozenset(group), frozenset(vertices) & bag))
        return out

    def decide(self, component_edges: frozenset, connector: frozenset) -> bool:
        state = (component_edges, connector)
        cached = self.memo.get(state)
        if cached is not None:
            return cached

        component_vertices = frozenset().union(
            *(self.edges[i] for i in component_edges)
        ) if component_edges else frozenset()
        scope = component_vertices | connector

        result = False
        for size in range(1, self.k + 1):
            for guard in itertools.combinations(range(len(self.edges)), size):
                cover = frozenset().union(*(self.edges[i] for i in guard))
                if not connector <= cover:
                    continue
                maximal_bag = cover & scope
                optional = sorted(maximal_bag - connector, key=repr)
                # Try every bag between the connector and the maximal bag,
                # largest first (the maximal bag succeeds most often).
                for drop_size in range(len(optional) + 1):
                    for dropped in itertools.combinations(optional, drop_size):
                        bag = maximal_bag - frozenset(dropped)
                        if not bag:
                            continue
                        children = self._components(component_edges, bag)
                        if any(
                            len(child_edges) >= len(component_edges)
                            for child_edges, _ in children
                        ):
                            continue
                        if all(
                            self.decide(child_edges, child_conn)
                            for child_edges, child_conn in children
                        ):
                            self.choice[state] = (guard, bag, children)
                            result = True
                            break
                    if result:
                        break
                if result:
                    break
            if result:
                break
        self.memo[state] = result
        return result

    def build(self) -> HypertreeDecomposition | None:
        all_edges = frozenset(range(len(self.edges)))
        if not all_edges:
            tree = nx.DiGraph()
            tree.add_node("root")
            return HypertreeDecomposition(tree, {"root": frozenset()}, {"root": frozenset()})
        if not self.decide(all_edges, frozenset()):
            return None

        tree = nx.DiGraph()
        chi: dict[Hashable, frozenset[Vertex]] = {}
        guards: dict[Hashable, frozenset[frozenset[Vertex]]] = {}
        counter = itertools.count()

        def expand(state) -> Hashable:
            guard, bag, children = self.choice[state]
            node = next(counter)
            tree.add_node(node)
            chi[node] = bag
            guards[node] = frozenset(self.edges[i] for i in guard)
            for child_state in children:
                child_node = expand(child_state)
                tree.add_edge(node, child_node)
            return node

        expand((all_edges, frozenset()))
        return HypertreeDecomposition(tree, chi, guards)


def generalized_hypertree_decomposition(
    hypergraph: Hypergraph, k: int
) -> HypertreeDecomposition | None:
    """A width-``≤ k`` generalized hypertree decomposition, or ``None``."""
    if k < 1:
        return None
    return _GHWSolver(hypergraph, k).build()


def generalized_hypertree_width_at_most(hypergraph: Hypergraph, k: int) -> bool:
    """Whether ``ghw(H) ≤ k`` (complete search; exponential)."""
    return generalized_hypertree_decomposition(hypergraph, k) is not None


def generalized_hypertree_width(hypergraph: Hypergraph, *, max_k: int | None = None) -> int:
    """The exact generalized hypertree width."""
    bound = max_k if max_k is not None else max(len(hypergraph.edges), 1)
    for k in range(1, bound + 1):
        if generalized_hypertree_width_at_most(hypergraph, k):
            return k
    raise ValueError(f"generalized hypertree width exceeds {bound}")


def query_ghw_at_most(query, k: int) -> bool:
    """Membership test for the class GHTW(k) of Section 6."""
    from repro.hypergraphs.hypergraph import hypergraph_of_query

    return generalized_hypertree_width_at_most(hypergraph_of_query(query), k)
