"""Treewidth: exact decision procedure, exact value, and heuristics.

Treewidth equals the minimum over elimination orders of the maximum degree
at elimination time.  The decision procedure ``treewidth_at_most`` explores
elimination orders with memoization on the set of remaining vertices; the
"filled" adjacency of a state is a function of the remaining set alone (two
remaining vertices are adjacent iff they are adjacent in ``G`` or connected
through eliminated vertices), which makes the memoization sound.

This is exponential in general — fine for tableau-sized graphs, which is
where the paper needs it (class membership tests for TW(k) and the
approximation search).  ``treewidth_upper_bound`` provides a min-fill
heuristic for larger inputs.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.hypergraphs.treedecomp import TreeDecomposition

Vertex = Hashable


def _simple(graph: nx.Graph) -> nx.Graph:
    """Copy of the graph without self-loops (loops don't affect treewidth)."""
    cleaned = nx.Graph()
    cleaned.add_nodes_from(graph.nodes)
    cleaned.add_edges_from((u, v) for u, v in graph.edges if u != v)
    return cleaned


class _EliminationSolver:
    """Decides ``tw(G) ≤ k`` and produces a witnessing elimination order."""

    def __init__(self, graph: nx.Graph, k: int) -> None:
        self.graph = _simple(graph)
        self.k = k
        self.memo: dict[frozenset, bool] = {}
        self.order: dict[frozenset, Vertex] = {}

    def filled_neighbors(self, remaining: frozenset, vertex: Vertex) -> set[Vertex]:
        """Neighbors of ``vertex`` in the filled graph on ``remaining``.

        ``u`` is a filled neighbor iff an original path joins them whose
        interior avoids ``remaining``.
        """
        seen = {vertex}
        frontier = [vertex]
        neighbors: set[Vertex] = set()
        while frontier:
            current = frontier.pop()
            for nxt in self.graph.neighbors(current):
                if nxt in seen:
                    continue
                seen.add(nxt)
                if nxt in remaining:
                    neighbors.add(nxt)
                else:
                    frontier.append(nxt)
        return neighbors

    def decide(self, remaining: frozenset) -> bool:
        if len(remaining) <= self.k + 1:
            return True
        cached = self.memo.get(remaining)
        if cached is not None:
            return cached

        result = False
        candidates = sorted(remaining, key=repr)
        degrees = {
            v: self.filled_neighbors(remaining, v) for v in candidates
        }
        # Eliminate low-degree vertices first; a simplicial vertex of degree
        # ≤ k can always be eliminated greedily (standard safe rule).
        candidates.sort(key=lambda v: len(degrees[v]))
        for vertex in candidates:
            neighbors = degrees[vertex]
            if len(neighbors) > self.k:
                break  # sorted by degree: everything later is worse
            if self.decide(remaining - {vertex}):
                self.order[remaining] = vertex
                result = True
                break
        self.memo[remaining] = result
        return result

    def elimination_order(self) -> list[Vertex] | None:
        everything = frozenset(self.graph.nodes)
        if not self.decide(everything):
            return None
        order: list[Vertex] = []
        remaining = everything
        while len(remaining) > self.k + 1:
            vertex = self.order[remaining]
            order.append(vertex)
            remaining = remaining - {vertex}
        order.extend(sorted(remaining, key=repr))
        return order


def treewidth_at_most(graph: nx.Graph, k: int) -> bool:
    """Exact decision: does ``graph`` have treewidth at most ``k``?"""
    if k < 0:
        return graph.number_of_nodes() == 0
    return _EliminationSolver(graph, k).decide(frozenset(_simple(graph).nodes))


def treewidth_exact(graph: nx.Graph) -> int:
    """The exact treewidth, by increasing the decision bound.

    An upper bound from the min-fill heuristic caps the search.
    """
    simple = _simple(graph)
    if simple.number_of_nodes() == 0:
        return -1
    upper = treewidth_upper_bound(simple)
    for k in range(upper + 1):
        if treewidth_at_most(simple, k):
            return k
    return upper


def treewidth_upper_bound(graph: nx.Graph) -> int:
    """A min-fill heuristic upper bound (networkx's approximation)."""
    from networkx.algorithms.approximation import treewidth_min_fill_in

    simple = _simple(graph)
    if simple.number_of_nodes() == 0:
        return -1
    width, _ = treewidth_min_fill_in(simple)
    return width


def decomposition_from_elimination(
    graph: nx.Graph, order: Sequence[Vertex]
) -> TreeDecomposition:
    """The tree decomposition induced by an elimination order.

    Bag of ``v`` = ``{v} ∪ (neighbors of v at elimination time)``; the bag of
    ``v`` hangs off the bag of the earliest-later eliminated neighbor.
    """
    simple = _simple(graph)
    if set(order) != set(simple.nodes):
        raise ValueError("order must enumerate every vertex exactly once")

    position = {v: i for i, v in enumerate(order)}
    working = simple.copy()
    bags: dict[Vertex, frozenset[Vertex]] = {}
    parent_of: dict[Vertex, Vertex] = {}

    for vertex in order:
        neighbors = set(working.neighbors(vertex))
        bags[vertex] = frozenset(neighbors | {vertex})
        if neighbors:
            parent_of[vertex] = min(neighbors, key=lambda u: position[u])
        for u in neighbors:
            for w in neighbors:
                if u != w:
                    working.add_edge(u, w)
        working.remove_node(vertex)

    tree = nx.Graph()
    tree.add_nodes_from(order)
    for child, parent in parent_of.items():
        tree.add_edge(child, parent)
    # A disconnected graph yields a forest; chain the component roots so the
    # result is a single tree (bags of different components share no vertex,
    # so extra tree edges cannot break the connectedness condition).
    components = [sorted(c, key=repr)[0] for c in nx.connected_components(tree)]
    for left, right in zip(components, components[1:]):
        tree.add_edge(left, right)
    return TreeDecomposition(tree, bags)


def tree_decomposition(graph: nx.Graph, k: int) -> TreeDecomposition | None:
    """A width-``≤ k`` tree decomposition of the graph, or ``None``."""
    simple = _simple(graph)
    if simple.number_of_nodes() == 0:
        empty = nx.Graph()
        return TreeDecomposition(empty, {})
    solver = _EliminationSolver(simple, k)
    order = solver.elimination_order()
    if order is None:
        return None
    decomposition = decomposition_from_elimination(simple, order)
    assert decomposition.width <= k
    return decomposition


def treewidth_of_query(query) -> int:
    """Treewidth of ``G(Q)`` — the graph-based tractability measure."""
    return treewidth_exact(query.graph())


def query_treewidth_at_most(query, k: int) -> bool:
    """Membership test for the class TW(k) of Section 4."""
    return treewidth_at_most(query.graph(), k)
