"""Command-line interface.

Examples::

    python -m repro approximate "Q() :- E(x,y), E(y,z), E(z,x)" --cls TW1
    python -m repro classify "Q() :- E(x,y), E(y,z), E(z,x)"
    python -m repro minimize "Q() :- E(x,y), E(x,z)"
    python -m repro width "Q() :- R(x,y,z), R(z,u,w)"
    python -m repro contains "Q() :- E(x,y), E(y,z)" "Q() :- E(x,y)"
    python -m repro evaluate "Q(x) :- E(x,y)" --db graph.json
    python -m repro serve --socket /tmp/repro.sock --cache-dir /tmp/repro-cache
    python -m repro client --socket /tmp/repro.sock "Q() :- E(x,y), E(y,x)"
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cq import is_contained_in, minimize, parse_query
from repro.core import (
    ApproximationConfig,
    DEFAULT_CONFIG,
    QueryClass,
    TreewidthClass,
    all_approximations,
    approximate,
    class_from_name,
    classify_boolean_graph_query,
)
from repro.testing.faults import NETWORK_KINDS


def _parse_memory_limit(text: str) -> int:
    """Bytes from a human-friendly size (plain bytes, or k/m/g suffix)."""
    text = text.strip().lower()
    multiplier = 1
    for suffix, scale in (("g", 1 << 30), ("m", 1 << 20), ("k", 1 << 10)):
        if text.endswith(suffix):
            text, multiplier = text[: -len(suffix)], scale
            break
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid memory limit {text!r} (use bytes or a k/m/g suffix, "
            "e.g. 512m)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("memory limit must be positive")
    return value


def _parse_class(name: str) -> QueryClass:
    try:
        return class_from_name(name)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient approximations of conjunctive queries (PODS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    approx = sub.add_parser("approximate", help="compute C-approximations")
    approx.add_argument("query")
    approx.add_argument("--cls", type=_parse_class, default=TreewidthClass(1))
    approx.add_argument("--all", action="store_true", help="list C-APPR_min(Q)")
    approx.add_argument("--method", choices=["auto", "exact", "greedy"], default="auto")
    # Inherit the library default so both entry points agree on the cap.
    approx.add_argument(
        "--exact-limit", type=int, default=DEFAULT_CONFIG.exact_limit
    )
    approx.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget for the exact pipeline; on expiry the run "
            "stops gracefully and returns the best-so-far (sound, possibly "
            "incomplete) frontier, marked exhausted in the stats"
        ),
    )
    approx.add_argument(
        "--memory-limit",
        type=_parse_memory_limit,
        default=None,
        metavar="BYTES",
        help=(
            "memory ceiling for the exact pipeline (bytes, k/m/g suffixes "
            "accepted, e.g. 512m): tracked frontier/memo sizes plus an RSS "
            "probe; exceeding it stops the run gracefully like --deadline"
        ),
    )
    approx.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap on stage-1 candidates drawn by the exact pipeline; the "
            "first N candidates are fully reduced and the partial frontier "
            "is returned marked exhausted"
        ),
    )
    approx.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "periodically snapshot the run's frontier and stream cursor to "
            "PATH, and resume from PATH if it exists (serial plain-quotient "
            "runs only); the file is removed when the run completes"
        ),
    )
    approx.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-batch timeout for pooled membership checks (--workers > 1): "
            "a batch stuck longer is quarantined (its candidates skipped, "
            "recorded in the stats) instead of hanging the run"
        ),
    )
    approx.add_argument(
        "--greedy-fallback",
        action="store_true",
        help=(
            "when a budgeted exact run exhausts its budget with an empty "
            "frontier, fall back to the greedy descent instead of returning "
            "nothing"
        ),
    )
    approx.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the exact pipeline (-1 = all CPUs, 1 = serial)",
    )
    approx.add_argument(
        "--fabric-worker",
        action="append",
        default=None,
        metavar="ADDR",
        help=(
            "address of a 'repro worker' process (host:port or unix socket "
            "path; repeatable) — shard the exact pipeline over network "
            "workers with retry/speculation/blacklist fault tolerance "
            "instead of a local pool"
        ),
    )
    approx.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "spill cold frontier memo state (class-status map, refinement "
            "subtries) to an LRU disk tier under DIR, so --memory-limit "
            "tracks only resident entries"
        ),
    )
    approx.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="fabric liveness-probe interval (with --fabric-worker)",
    )
    approx.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-shard deadline for fabric dispatches; a shard over it is "
            "abandoned and re-dispatched (with --fabric-worker)"
        ),
    )
    approx.add_argument(
        "--admission-order",
        choices=["auto", "generation", "fine-to-coarse"],
        default="auto",
        help=(
            "stage-3 reduction order of the exact pipeline: 'auto' replays "
            "plain quotient streams fine-to-coarse (bit-identical to "
            "generation order via representative repair), 'generation' "
            "forces the insertion-order baseline, 'fine-to-coarse' forces "
            "the reordered reduction"
        ),
    )
    approx.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (approximations, class, method, timing)",
    )
    approx.add_argument(
        "--stats",
        action="store_true",
        help=(
            "report the pipeline's stage counters (candidates generated, "
            "checks, dominance work, admission-order fast paths, "
            "representative repairs, cancelled families); with --json they "
            "join the payload under \"stats\""
        ),
    )

    classify = sub.add_parser("classify", help="Theorem 5.1 trichotomy case")
    classify.add_argument("query")
    classify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (case, query, timing)",
    )

    mini = sub.add_parser("minimize", help="Chandra-Merlin minimization")
    mini.add_argument("query")

    width = sub.add_parser("width", help="treewidth / hypertree width / acyclicity")
    width.add_argument("query")

    contains = sub.add_parser("contains", help="decide Q1 ⊆ Q2")
    contains.add_argument("query1")
    contains.add_argument("query2")

    evaluate = sub.add_parser("evaluate", help="evaluate a query on a JSON database")
    evaluate.add_argument("query")
    evaluate.add_argument("--db", required=True, help="JSON database file")
    evaluate.add_argument(
        "--method",
        choices=["auto", "yannakakis", "treewidth", "hypertree", "backtracking", "naive"],
        default="auto",
    )
    evaluate.add_argument(
        "--engine",
        choices=["columnar", "tuple"],
        default="columnar",
        help=(
            "relational kernels: 'columnar' (hash-batch engine, numpy fast "
            "path when installed) or 'tuple' (the set-of-tuples oracle)"
        ),
    )
    evaluate.add_argument(
        "--stats",
        action="store_true",
        help=(
            "report the engine's counters (per-operator rows scanned/"
            "hashed/emitted); with --json they join the payload under "
            "\"stats\""
        ),
    )
    evaluate.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (answers, method, engine, timing)",
    )

    quality = sub.add_parser(
        "quality-bench",
        help=(
            "approximate Q in a class, evaluate Q and the approximation on "
            "the same instance, report recall / containment gap / wall-time "
            "ratio"
        ),
    )
    quality.add_argument("query")
    quality.add_argument("--cls", type=_parse_class, default=TreewidthClass(1))
    quality.add_argument(
        "--db", default=None, help="JSON database file (omit to generate)"
    )
    quality.add_argument(
        "--nodes",
        type=int,
        default=2000,
        help="generated digraph: number of nodes (ignored with --db)",
    )
    quality.add_argument(
        "--edges",
        type=int,
        default=20000,
        help="generated digraph: number of edges drawn (ignored with --db)",
    )
    quality.add_argument(
        "--skew",
        type=float,
        default=0.0,
        help="Zipf exponent of the generated value distribution (0 = uniform)",
    )
    quality.add_argument("--seed", type=int, default=0)
    quality.add_argument(
        "--engine", choices=["columnar", "tuple"], default="columnar"
    )
    quality.add_argument(
        "--approx-method",
        choices=["auto", "exact", "greedy"],
        default="auto",
        help="approximation search method (mirrors 'approximate --method')",
    )
    quality.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (recall, gap, wall-time ratio, timing)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the resident approximation daemon",
        description=(
            "Host one engine process behind a unix or TCP socket speaking a "
            "JSON-lines protocol (one JSON object per line; ops: "
            "approximate, stats/health, shutdown). Results are cached by "
            "the canonical form of the query's core, so hom-equivalent "
            "requests share one slot; with --cache-dir the cache survives "
            "restarts (corrupt entries are quarantined, never fatal). "
            "Admission control sheds load past --queue-limit with a "
            "structured 'overloaded' response; SIGTERM drains in-flight "
            "requests, flushes the cache index, and exits."
        ),
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket to listen on"
    )
    serve.add_argument(
        "--host", default=None, help="TCP host to bind (alternative to --socket)"
    )
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="max requests admitted at once; excess load is shed",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="request-executor threads (pipelines running at once)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-request wall-clock policy: every request gets a RunBudget "
            "with at most this deadline (clients may ask for less, never "
            "more); exhausted runs are served as explicitly-partial sound "
            "frontiers"
        ),
    )
    serve.add_argument(
        "--memory-limit",
        type=_parse_memory_limit,
        default=None,
        metavar="BYTES",
        help="per-request memory ceiling (bytes, k/m/g suffixes accepted)",
    )
    serve.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help="per-request cap on stage-1 candidates",
    )
    serve.add_argument(
        "--exact-limit", type=int, default=DEFAULT_CONFIG.exact_limit
    )
    serve.add_argument(
        "--max-extra-atoms",
        type=int,
        default=DEFAULT_CONFIG.max_extra_atoms,
        metavar="N",
        help="extension-stream cap of each request's pipeline",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size inside each request's pipeline",
    )
    serve.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-batch quarantine timeout for pooled membership checks",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "disk tier of the result cache (atomic per-entry files); a "
            "restarted server answers warm from here"
        ),
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="in-memory LRU capacity (entries)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=_parse_memory_limit,
        default=None,
        metavar="BYTES",
        help=(
            "byte budget of the in-memory cache tier (serialized entry "
            "sizes; k/m/g suffixes accepted) — evicts by bytes alongside "
            "--cache-capacity's entry count"
        ),
    )
    serve.add_argument(
        "--enable-test-ops",
        action="store_true",
        help="enable the 'sleep' op (lifecycle tests and fault drills)",
    )
    serve.add_argument(
        "--fault-kind",
        choices=sorted(("kill", "delay", "raise", "corrupt") + NETWORK_KINDS),
        default=None,
        help=(
            "arm a deterministic fault drill (testing only): corrupt hits "
            "the disk cache's write seam, network kinds hit the response "
            "seam, the rest wrap each request's query class"
        ),
    )
    serve.add_argument(
        "--fault-at",
        type=int,
        default=1,
        metavar="N",
        help="fire the drill on the N-th seam invocation (default 1)",
    )
    serve.add_argument(
        "--fault-token",
        default=None,
        metavar="PATH",
        help=(
            "token file claimed exactly once across processes, so a "
            "retried/hedged request cannot re-fire the drill"
        ),
    )
    serve.add_argument(
        "--fault-delay",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="sleep length for the delay/delay-response drills",
    )
    serve.add_argument(
        "--fault-corrupt-mode",
        choices=["truncate", "garble"],
        default="truncate",
        help="damage mode for the corrupt drill",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a supervised fleet of approximation daemons",
        description=(
            "Supervise N 'repro serve' worker processes over one shared "
            "disk cache tier behind an asyncio router speaking the same "
            "JSON-lines protocol. Crashed workers are detected (waitpid "
            "plus a health probe where only a pong counts as alive) and "
            "restarted with capped-exponential backoff behind a "
            "restart-storm circuit breaker; the router balances by least "
            "outstanding requests, retries connection faults on a "
            "different worker, and optionally hedges stragglers. SIGTERM "
            "drains rolling-style: in-flight requests finish, then each "
            "worker is drained one at a time."
        ),
    )
    fleet.add_argument(
        "--socket", default=None, metavar="PATH", help="router's unix socket"
    )
    fleet.add_argument(
        "--host", default=None, help="router's TCP host (alternative to --socket)"
    )
    fleet.add_argument(
        "--port", type=int, default=0, help="router's TCP port (0 = ephemeral)"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="serving worker processes to supervise",
    )
    fleet.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for the per-worker unix sockets (default: the "
            "router socket's directory; required with --host)"
        ),
    )
    fleet.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared disk cache tier for every worker",
    )
    fleet.add_argument(
        "--queue-limit", type=int, default=32, help="per-worker admission bound"
    )
    fleet.add_argument(
        "--concurrency", type=int, default=2, help="per-worker executor threads"
    )
    fleet.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock policy applied by every worker",
    )
    fleet.add_argument(
        "--memory-limit",
        type=_parse_memory_limit,
        default=None,
        metavar="BYTES",
        help="per-request memory ceiling applied by every worker",
    )
    fleet.add_argument(
        "--exact-limit", type=int, default=DEFAULT_CONFIG.exact_limit
    )
    fleet.add_argument(
        "--max-extra-atoms",
        type=int,
        default=DEFAULT_CONFIG.max_extra_atoms,
        metavar="N",
        help="extension-stream cap of each request's pipeline",
    )
    fleet.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="per-worker in-memory LRU capacity (entries)",
    )
    fleet.add_argument(
        "--cache-max-bytes",
        type=_parse_memory_limit,
        default=None,
        metavar="BYTES",
        help="per-worker in-memory cache byte budget",
    )
    fleet.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="supervisor liveness-probe period",
    )
    fleet.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help=(
            "restart-storm circuit breaker: more deaths than this inside "
            "--restart-window puts the slot in degraded mode"
        ),
    )
    fleet.add_argument(
        "--restart-window",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="sliding window of the restart-storm breaker",
    )
    fleet.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "duplicate a request still outstanding after this long on "
            "another worker; first response wins (results are idempotent "
            "under the canonical key, so the loser is safely dropped)"
        ),
    )
    fleet.add_argument(
        "--enable-test-ops",
        action="store_true",
        help="start every worker with test ops enabled",
    )

    client = sub.add_parser(
        "client",
        help="query a running approximation daemon",
        description=(
            "Send one request to a repro serve daemon and print its "
            "response. With a query argument, sends an approximate op; "
            "--server-stats and --shutdown send those ops instead."
        ),
    )
    client.add_argument(
        "query", nargs="?", default=None, help="CQ to approximate (rule notation)"
    )
    client.add_argument(
        "--socket", default=None, metavar="PATH", help="daemon's unix socket"
    )
    client.add_argument("--host", default=None, help="daemon's TCP host")
    client.add_argument("--port", type=int, default=None, help="daemon's TCP port")
    client.add_argument("--cls", default="TW1", help="target class spec (e.g. TW1, AC)")
    client.add_argument("--all", action="store_true", help="ask for C-APPR_min(Q)")
    client.add_argument(
        "--method", choices=["auto", "exact", "greedy"], default="auto"
    )
    client.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="request deadline (the server clamps it to its own policy)",
    )
    client.add_argument(
        "--server-stats",
        action="store_true",
        help="fetch the daemon's health/stats payload instead of approximating",
    )
    client.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the daemon to drain and exit instead of approximating",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "total attempts under a jittered-backoff retry policy: "
            "connection faults reconnect and resend; overloaded/"
            "shutting-down rejections retry after a delay (default 1 = "
            "no retries)"
        ),
    )
    client.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON response frame",
    )

    worker = sub.add_parser(
        "worker",
        help="run a fabric shard worker",
        description=(
            "Serve fabric shard requests (repro.fabric) on a unix socket "
            "or TCP address until a shutdown op arrives. Workers are "
            "stateless: the coordinator ships the full run context with "
            "every shard, so any number of workers can be pointed at by "
            "repro approximate --fabric-worker. Prints 'fabric worker "
            "listening on <address>' once bound (parse it when using "
            "--port 0)."
        ),
    )
    worker.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket to bind"
    )
    worker.add_argument(
        "--host", default="127.0.0.1", help="TCP host to bind (default loopback)"
    )
    worker.add_argument(
        "--port", type=int, default=None, help="TCP port to bind (0 = ephemeral)"
    )
    worker.add_argument(
        "--fault-kind",
        choices=sorted(NETWORK_KINDS),
        default=None,
        help=(
            "arm a deterministic network-fault drill on the shard-response "
            "seam (testing only)"
        ),
    )
    worker.add_argument(
        "--fault-at",
        type=int,
        default=1,
        metavar="N",
        help="fire the drill on the N-th shard response (default 1)",
    )
    worker.add_argument(
        "--fault-token",
        default=None,
        metavar="PATH",
        help=(
            "token file claimed exactly once across all workers, so a "
            "re-dispatched shard cannot re-fire the drill"
        ),
    )
    worker.add_argument(
        "--fault-delay",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="sleep length for the delay-response drill",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "approximate":
        from repro.core import PipelineStats

        query = parse_query(args.query)
        config = ApproximationConfig(
            exact_limit=args.exact_limit,
            workers=args.workers,
            admission_order=args.admission_order,
            deadline=args.deadline,
            memory_limit=args.memory_limit,
            max_candidates=args.max_candidates,
            checkpoint_path=args.checkpoint,
            batch_timeout=args.batch_timeout,
            greedy_fallback=args.greedy_fallback,
            fabric_workers=tuple(args.fabric_worker or ()),
            spill_dir=args.spill_dir,
            heartbeat_interval=args.heartbeat_interval,
            shard_timeout=args.shard_timeout,
        )
        # Stats are always collected: exhaustion and quarantined-batch
        # surfacing must reach the output even when --stats was not
        # requested, and the counters are cheap next to the pipeline.
        budgeted = config.budget() is not None
        stats = PipelineStats()
        faults: list = []
        started = time.perf_counter()
        if args.all:
            results = all_approximations(
                query, args.cls, config, stats=stats, faults=faults
            )
        else:
            results = [
                approximate(
                    query, args.cls, method=args.method, config=config,
                    stats=stats, faults=faults,
                )
            ]
        elapsed = time.perf_counter() - started
        if args.json:
            payload = {
                "command": "approximate",
                "query": args.query,
                "class": args.cls.name,
                "method": args.method,
                "workers": args.workers,
                "admission_order": args.admission_order,
                "all": args.all,
                "approximations": [str(result) for result in results],
                "seconds": round(elapsed, 6),
            }
            if budgeted:
                payload["exhausted"] = stats.exhausted
                if stats.exhausted:
                    payload["exhaustion_reason"] = stats.exhaustion_reason
            if stats.quarantined or faults:
                payload["quarantined"] = stats.quarantined
                payload["faults"] = [fault.as_dict() for fault in faults]
            if args.stats and stats is not None:
                payload["stats"] = {
                    name: round(value, 6) if isinstance(value, float) else value
                    for name, value in stats.as_dict().items()
                }
            print(json.dumps(payload))
        else:
            for result in results:
                print(result)
            if stats is not None and stats.exhausted:
                print(
                    "warning: budget exhausted "
                    f"({stats.exhaustion_reason}); the answer is sound but "
                    "may be incomplete",
                    file=sys.stderr,
                )
            if stats is not None and (stats.quarantined or faults):
                kinds = ", ".join(
                    f"{fault.kind}: {fault.error}" for fault in faults
                )
                print(
                    f"warning: {stats.quarantined} candidate check(s) lost "
                    f"to {len(faults)} quarantined pool batch(es)"
                    f"{' (' + kinds + ')' if kinds else ''}; the answer is "
                    "sound but may be incomplete",
                    file=sys.stderr,
                )
            if args.stats and stats is not None:
                print("-- pipeline stats --")
                if stats.generated == 0:
                    print(
                        "(all zero: the exact pipeline did not run — "
                        "greedy method, or the query is already in the "
                        "class)"
                    )
                for name, value in stats.as_dict().items():
                    if isinstance(value, float):
                        value = round(value, 6)
                    print(f"{name:32} {value}")
        return 0

    if args.command == "classify":
        started = time.perf_counter()
        case = classify_boolean_graph_query(parse_query(args.query))
        elapsed = time.perf_counter() - started
        if args.json:
            print(
                json.dumps(
                    {
                        "command": "classify",
                        "query": args.query,
                        "case": case.value,
                        "seconds": round(elapsed, 6),
                    }
                )
            )
        else:
            print(case.value)
        return 0

    if args.command == "minimize":
        print(minimize(parse_query(args.query)))
        return 0

    if args.command == "width":
        from repro.hypergraphs import (
            hypergraph_of_query,
            hypertree_width,
            is_acyclic_query,
            treewidth_of_query,
        )

        query = parse_query(args.query)
        print(f"treewidth       : {treewidth_of_query(query)}")
        print(f"hypertree width : {hypertree_width(hypergraph_of_query(query))}")
        print(f"acyclic         : {is_acyclic_query(query)}")
        return 0

    if args.command == "contains":
        q1, q2 = parse_query(args.query1), parse_query(args.query2)
        verdict = is_contained_in(q1, q2)
        print("contained" if verdict else "not contained")
        return 0 if verdict else 1

    if args.command == "evaluate":
        from repro.evaluation import EvalStats
        from repro.evaluation import evaluate as run
        from repro.io import load_structure

        query = parse_query(args.query)
        db = load_structure(args.db)
        stats = EvalStats() if args.stats else None
        started = time.perf_counter()
        answers = run(
            query, db, method=args.method, engine=args.engine, stats=stats
        )
        elapsed = time.perf_counter() - started
        if args.json:
            payload = {
                "command": "evaluate",
                "query": args.query,
                "method": args.method,
                "engine": args.engine,
                "boolean": query.is_boolean,
                "answer_count": len(answers),
                "answers": sorted((list(row) for row in answers), key=repr),
                "seconds": round(elapsed, 6),
            }
            if stats is not None:
                payload["stats"] = stats.as_dict()
            print(json.dumps(payload))
        else:
            if query.is_boolean:
                print("true" if answers else "false")
            else:
                for row in sorted(answers, key=repr):
                    print("\t".join(map(str, row)))
            if stats is not None:
                print("-- evaluation stats --", file=sys.stderr)
                for name, value in stats.as_dict().items():
                    if name == "operators":
                        for op, bucket in value.items():
                            counters = " ".join(
                                f"{k}={v}" for k, v in bucket.items()
                            )
                            print(f"op:{op:12} {counters}", file=sys.stderr)
                    elif name != "notes":
                        print(f"{name:20} {value}", file=sys.stderr)
        return 0

    if args.command == "quality-bench":
        from repro.core import approximate_then_evaluate
        from repro.workloads import scaled_digraph_db

        query = parse_query(args.query)
        if args.db is not None:
            from repro.io import load_structure

            db = load_structure(args.db)
        else:
            db = scaled_digraph_db(
                args.nodes, args.edges, skew=args.skew, seed=args.seed
            )
        report = approximate_then_evaluate(
            query,
            args.cls,
            db,
            engine=args.engine,
            approx_method=args.approx_method,
        )
        if args.json:
            payload = {"command": "quality-bench", **report.as_dict()}
            print(json.dumps(payload))
        else:
            print(f"query          : {report.query}")
            print(f"approximation  : {report.approximation}")
            print(f"class          : {report.cls}")
            print(f"db tuples      : {report.db_tuples}")
            print(f"exact answers  : {report.exact_answers}")
            print(f"recall         : {report.recall:.4f}")
            print(f"containment gap: {report.containment_gap}")
            print(f"sound          : {report.is_sound}")
            print(
                "wall time      : "
                f"exact {report.exact_eval_seconds:.4f}s, "
                f"approx {report.approx_eval_seconds:.4f}s "
                f"(ratio {report.walltime_ratio:.1f}x; approximation "
                f"search {report.approximation_seconds:.4f}s)"
            )
        return 0 if report.is_sound else 1

    if args.command == "serve":
        import asyncio

        from repro.serve import ApproximationServer, ServerConfig

        if (args.socket is None) == (args.host is None):
            print("repro serve: set exactly one of --socket or --host", file=sys.stderr)
            return 2
        fault_plan = None
        if args.fault_kind is not None:
            from repro.testing.faults import FaultPlan

            if args.fault_token is None:
                print(
                    "repro serve: --fault-kind requires --fault-token",
                    file=sys.stderr,
                )
                return 2
            fault_plan = FaultPlan(
                kind=args.fault_kind,
                at_check=args.fault_at,
                token_path=args.fault_token,
                delay=args.fault_delay,
                corrupt_mode=args.fault_corrupt_mode,
            )
        server = ApproximationServer(
            ServerConfig(
                socket_path=args.socket,
                host=args.host,
                port=args.port,
                queue_limit=args.queue_limit,
                concurrency=args.concurrency,
                request_deadline=args.deadline,
                memory_limit=args.memory_limit,
                max_candidates=args.max_candidates,
                exact_limit=args.exact_limit,
                max_extra_atoms=args.max_extra_atoms,
                workers=args.workers,
                batch_timeout=args.batch_timeout,
                cache_capacity=args.cache_capacity,
                cache_max_bytes=args.cache_max_bytes,
                cache_dir=args.cache_dir,
                enable_test_ops=args.enable_test_ops,
                fault_plan=fault_plan,
            )
        )
        asyncio.run(server.run())
        return 0

    if args.command == "fleet":
        import asyncio

        from repro.serve import Fleet, FleetConfig

        if (args.socket is None) == (args.host is None):
            print(
                "repro fleet: set exactly one of --socket or --host",
                file=sys.stderr,
            )
            return 2
        if args.socket is None and args.run_dir is None:
            print(
                "repro fleet: --host needs --run-dir for the worker sockets",
                file=sys.stderr,
            )
            return 2
        fleet = Fleet(
            FleetConfig(
                workers=args.workers,
                socket_path=args.socket,
                host=args.host,
                port=args.port,
                run_dir=args.run_dir,
                cache_dir=args.cache_dir,
                queue_limit=args.queue_limit,
                concurrency=args.concurrency,
                request_deadline=args.deadline,
                memory_limit=args.memory_limit,
                exact_limit=args.exact_limit,
                max_extra_atoms=args.max_extra_atoms,
                cache_capacity=args.cache_capacity,
                cache_max_bytes=args.cache_max_bytes,
                health_interval=args.health_interval,
                max_restarts=args.max_restarts,
                restart_window=args.restart_window,
                hedge_after=args.hedge_after,
                enable_test_ops=args.enable_test_ops,
            )
        )
        asyncio.run(fleet.run())
        return 0

    if args.command == "client":
        from repro.serve import RetryPolicy, ServeClient, ServeError

        ops = sum([args.query is not None, args.server_stats, args.shutdown])
        if ops != 1:
            print(
                "repro client: give exactly one of a query, --server-stats, "
                "or --shutdown",
                file=sys.stderr,
            )
            return 2
        if (args.socket is None) == (args.host is None):
            print(
                "repro client: set exactly one of --socket or --host/--port",
                file=sys.stderr,
            )
            return 2
        retry = (
            RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
        )
        try:
            with ServeClient(args.socket, args.host, args.port, retry=retry) as conn:
                if args.server_stats:
                    response = conn.stats()
                elif args.shutdown:
                    response = conn.shutdown()
                else:
                    response = conn.approximate(
                        args.query,
                        args.cls,
                        all_=args.all,
                        method=args.method,
                        deadline=args.deadline,
                    )
        except (ConnectionError, OSError) as exc:
            # No daemon (or it vanished): a clean structured error on a
            # distinct exit code, never a traceback.
            target = args.socket if args.socket is not None else f"{args.host}:{args.port}"
            if args.json:
                print(
                    json.dumps(
                        {
                            "ok": False,
                            "error": {
                                "kind": "connection",
                                "message": f"cannot reach a daemon at {target}: {exc}",
                            },
                        }
                    )
                )
            else:
                print(
                    f"repro client: cannot reach a daemon at {target}: {exc}",
                    file=sys.stderr,
                )
            return 3
        except ServeError as exc:
            # Structured rejection (overloaded / shutting-down / bad-request):
            # surface the frame, exit nonzero.
            if args.json:
                print(json.dumps(exc.response))
            else:
                print(f"repro client: {exc}", file=sys.stderr)
            return 1
        if args.json or args.server_stats or args.shutdown:
            print(json.dumps(response))
        else:
            for approximation in response.get("approximations", []):
                print(approximation)
            if response.get("exhausted"):
                print(
                    "warning: server budget exhausted "
                    f"({response.get('exhaustion_reason')}); the answer is "
                    "sound but may be incomplete",
                    file=sys.stderr,
                )
            if response.get("quarantined") or response.get("faults"):
                print(
                    f"warning: {response.get('quarantined', 0)} candidate "
                    "check(s) lost to quarantined pool batch(es) on the "
                    "server; the answer is sound but may be incomplete",
                    file=sys.stderr,
                )
        return 0

    if args.command == "worker":
        from repro.fabric import serve as serve_worker
        from repro.testing.faults import FaultPlan

        if (args.socket is None) == (args.port is None):
            print(
                "repro worker: set exactly one of --socket or --port",
                file=sys.stderr,
            )
            return 2
        fault_plan = None
        if args.fault_kind is not None:
            if args.fault_token is None:
                print(
                    "repro worker: --fault-kind requires --fault-token",
                    file=sys.stderr,
                )
                return 2
            fault_plan = FaultPlan(
                kind=args.fault_kind,
                at_check=args.fault_at,
                token_path=args.fault_token,
                delay=args.fault_delay,
            )
        address = (
            args.socket
            if args.socket is not None
            else f"{args.host}:{args.port}"
        )
        serve_worker(address, fault_plan=fault_plan)
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
