"""Command-line interface.

Examples::

    python -m repro approximate "Q() :- E(x,y), E(y,z), E(z,x)" --cls TW1
    python -m repro classify "Q() :- E(x,y), E(y,z), E(z,x)"
    python -m repro minimize "Q() :- E(x,y), E(x,z)"
    python -m repro width "Q() :- R(x,y,z), R(z,u,w)"
    python -m repro contains "Q() :- E(x,y), E(y,z)" "Q() :- E(x,y)"
    python -m repro evaluate "Q(x) :- E(x,y)" --db graph.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cq import is_contained_in, minimize, parse_query
from repro.core import (
    AcyclicClass,
    ApproximationConfig,
    GeneralizedHypertreeClass,
    HypertreeClass,
    QueryClass,
    TreewidthClass,
    all_approximations,
    approximate,
    classify_boolean_graph_query,
)


def _parse_class(name: str) -> QueryClass:
    name = name.upper()
    if name == "AC":
        return AcyclicClass()
    for prefix, factory in (
        ("GHTW", GeneralizedHypertreeClass),
        ("HTW", HypertreeClass),
        ("TW", TreewidthClass),
    ):
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return factory(int(name[len(prefix):]))
    raise argparse.ArgumentTypeError(
        f"unknown class {name!r} (use TW<k>, AC, HTW<k> or GHTW<k>)"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient approximations of conjunctive queries (PODS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    approx = sub.add_parser("approximate", help="compute C-approximations")
    approx.add_argument("query")
    approx.add_argument("--cls", type=_parse_class, default=TreewidthClass(1))
    approx.add_argument("--all", action="store_true", help="list C-APPR_min(Q)")
    approx.add_argument("--method", choices=["auto", "exact", "greedy"], default="auto")
    approx.add_argument("--exact-limit", type=int, default=8)
    approx.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the exact pipeline (-1 = all CPUs, 1 = serial)",
    )
    approx.add_argument(
        "--admission-order",
        choices=["auto", "generation", "fine-to-coarse"],
        default="auto",
        help=(
            "stage-3 reduction order of the exact pipeline: 'auto' replays "
            "plain quotient streams fine-to-coarse (bit-identical to "
            "generation order via representative repair), 'generation' "
            "forces the insertion-order baseline, 'fine-to-coarse' forces "
            "the reordered reduction"
        ),
    )
    approx.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (approximations, class, method, timing)",
    )
    approx.add_argument(
        "--stats",
        action="store_true",
        help=(
            "report the pipeline's stage counters (candidates generated, "
            "checks, dominance work, admission-order fast paths, "
            "representative repairs, cancelled families); with --json they "
            "join the payload under \"stats\""
        ),
    )

    classify = sub.add_parser("classify", help="Theorem 5.1 trichotomy case")
    classify.add_argument("query")
    classify.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (case, query, timing)",
    )

    mini = sub.add_parser("minimize", help="Chandra-Merlin minimization")
    mini.add_argument("query")

    width = sub.add_parser("width", help="treewidth / hypertree width / acyclicity")
    width.add_argument("query")

    contains = sub.add_parser("contains", help="decide Q1 ⊆ Q2")
    contains.add_argument("query1")
    contains.add_argument("query2")

    evaluate = sub.add_parser("evaluate", help="evaluate a query on a JSON database")
    evaluate.add_argument("query")
    evaluate.add_argument("--db", required=True, help="JSON database file")
    evaluate.add_argument(
        "--method",
        choices=["auto", "yannakakis", "treewidth", "hypertree", "backtracking", "naive"],
        default="auto",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "approximate":
        from repro.core import PipelineStats

        query = parse_query(args.query)
        config = ApproximationConfig(
            exact_limit=args.exact_limit,
            workers=args.workers,
            admission_order=args.admission_order,
        )
        stats = PipelineStats() if args.stats else None
        started = time.perf_counter()
        if args.all:
            results = all_approximations(query, args.cls, config, stats=stats)
        else:
            results = [
                approximate(
                    query, args.cls, method=args.method, config=config,
                    stats=stats,
                )
            ]
        elapsed = time.perf_counter() - started
        if args.json:
            payload = {
                "command": "approximate",
                "query": args.query,
                "class": args.cls.name,
                "method": args.method,
                "workers": args.workers,
                "admission_order": args.admission_order,
                "all": args.all,
                "approximations": [str(result) for result in results],
                "seconds": round(elapsed, 6),
            }
            if stats is not None:
                payload["stats"] = {
                    name: round(value, 6) if isinstance(value, float) else value
                    for name, value in stats.as_dict().items()
                }
            print(json.dumps(payload))
        else:
            for result in results:
                print(result)
            if stats is not None:
                print("-- pipeline stats --")
                if stats.generated == 0:
                    print(
                        "(all zero: the exact pipeline did not run — "
                        "greedy method, or the query is already in the "
                        "class)"
                    )
                for name, value in stats.as_dict().items():
                    if isinstance(value, float):
                        value = round(value, 6)
                    print(f"{name:32} {value}")
        return 0

    if args.command == "classify":
        started = time.perf_counter()
        case = classify_boolean_graph_query(parse_query(args.query))
        elapsed = time.perf_counter() - started
        if args.json:
            print(
                json.dumps(
                    {
                        "command": "classify",
                        "query": args.query,
                        "case": case.value,
                        "seconds": round(elapsed, 6),
                    }
                )
            )
        else:
            print(case.value)
        return 0

    if args.command == "minimize":
        print(minimize(parse_query(args.query)))
        return 0

    if args.command == "width":
        from repro.hypergraphs import (
            hypergraph_of_query,
            hypertree_width,
            is_acyclic_query,
            treewidth_of_query,
        )

        query = parse_query(args.query)
        print(f"treewidth       : {treewidth_of_query(query)}")
        print(f"hypertree width : {hypertree_width(hypergraph_of_query(query))}")
        print(f"acyclic         : {is_acyclic_query(query)}")
        return 0

    if args.command == "contains":
        q1, q2 = parse_query(args.query1), parse_query(args.query2)
        verdict = is_contained_in(q1, q2)
        print("contained" if verdict else "not contained")
        return 0 if verdict else 1

    if args.command == "evaluate":
        from repro.evaluation import evaluate as run
        from repro.io import load_structure

        query = parse_query(args.query)
        db = load_structure(args.db)
        answers = run(query, db, method=args.method)
        if query.is_boolean:
            print("true" if answers else "false")
        else:
            for row in sorted(answers, key=repr):
                print("\t".join(map(str, row)))
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
