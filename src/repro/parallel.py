"""Process-pool executor shim for the approximation pipeline.

The pipeline's parallelizable stages (class-membership checks, per-shard
frontier construction) funnel through one tiny interface so callers never
touch ``concurrent.futures`` directly:

* :class:`SerialExecutor` — runs tasks inline, zero overhead, used whenever
  ``workers <= 1``.  The serial path therefore has no serialization, no
  processes, and no behavioral difference from calling the task function in
  a loop.
* :class:`ProcessExecutor` — a wrapper over
  ``concurrent.futures.ProcessPoolExecutor`` whose :meth:`~ProcessExecutor.
  imap` preserves submission order while keeping a bounded number of tasks
  in flight, so a lazy task stream overlaps generation with execution
  without buffering the whole stream.

Task functions must be picklable module-level callables and task payloads
must be compact picklable values (the pipeline serializes tableaux to
integer-indexed fact lists; see :mod:`repro.core.pipeline`).  State shared
by *all* tasks of one executor — the pipeline's shard strategy ships the
encoded base tableau plus its precomputed automorphism/orbit data this way —
goes through ``initializer``/``initargs``: the initializer runs once per
worker process at startup, so the shared payload is serialized per worker
instead of per task and expensive derivations (the base tableau's
endomorphism scan) run once in the driver instead of once per task.  Engine
handles are never shipped to workers: each worker process rebuilds its own
:class:`~repro.homomorphism.engine.HomEngine` on first use via the pid check
in :func:`repro.homomorphism.engine.default_engine`.

On POSIX the pool uses the ``fork`` start method explicitly — workers
inherit the imported library (no re-import cost) but, by the pid check
above, not the parent's engine handle.

Fault tolerance
---------------
A worker killed by the OOM killer (or a segfaulting native extension)
breaks the whole ``ProcessPoolExecutor``: every outstanding future raises
``BrokenProcessPool`` and the pool is unusable.  :meth:`ProcessExecutor.
imap` recovers transparently: it respawns the pool with capped exponential
backoff and resubmits every in-flight task *in submission order*, so the
result stream the consumer sees is unchanged — same tasks, same function,
same order — and determinism guarantees downstream are preserved.  After
``max_respawns`` pool deaths the executor gives up on processes and runs
the remaining tasks inline (serial fallback), which is slow but always
completes.

Orthogonally, an optional per-batch ``timeout`` bounds how long ``imap``
blocks on the oldest in-flight task.  On expiry the (possibly hung) pool
is torn down, the *head* task is quarantined as a structured
:class:`BatchFault` record, and the remaining in-flight tasks are
resubmitted to a fresh pool.  A task that raises inside the worker
("poisoned") is likewise quarantined without a respawn — the pool itself
is fine.  With ``failures="yield"`` the :class:`BatchFault` takes the
failed task's slot in the result stream, letting consumers skip exactly
the lost work instead of losing the run; the default ``failures="raise"``
re-raises (timeouts raise the original ``TimeoutError``) for callers that
prefer fail-fast.

Note the timeout clock starts when ``imap`` *blocks on* the head result,
not when the task was submitted.  Under the bounded in-flight window the
head is always the oldest outstanding task, so a hung worker is detected
within one window's worth of consumption plus the timeout — tight enough
to bound drain latency, cheap enough to need no watchdog thread.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Backoff schedule for pool respawns: ``RESPAWN_BACKOFF_BASE * 2**attempt``
#: seconds, capped at :data:`RESPAWN_BACKOFF_CAP`.
RESPAWN_BACKOFF_BASE = 0.1
RESPAWN_BACKOFF_CAP = 2.0


def backoff_delay(
    attempt: int,
    *,
    base: float = RESPAWN_BACKOFF_BASE,
    cap: float = RESPAWN_BACKOFF_CAP,
) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**attempt)``.

    Shared by the pool-respawn path here and the fabric coordinator's
    shard-retry path, so both layers recover on the same schedule.
    ``attempt`` is 0-based (the first retry waits ``base`` seconds).
    """
    if attempt < 0:
        raise ValueError("attempt is 0-based and must be >= 0")
    return min(cap, base * (2.0 ** attempt))


def effective_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` → serial, ``-1`` → all
    CPUs, anything else is taken literally (also on machines with fewer
    cores — oversubscription is the caller's informed choice)."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return os.cpu_count() or 1
    return workers


@dataclass
class BatchFault:
    """Structured record of one quarantined task.

    ``kind`` is ``"timeout"`` (the per-batch timeout expired while waiting
    on this task) or ``"error"`` (the task raised inside the worker).  The
    original payload rides along so consumers can resolve exactly the work
    that was lost, and ``error`` holds the stringified cause for logs and
    :class:`~repro.core.pipeline.PipelineResult` fault reports.
    """

    kind: str
    task: Any
    error: str
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "error": self.error,
            "elapsed": round(self.elapsed, 6),
        }


class SerialExecutor:
    """Inline execution with the executor interface (the ``workers=1`` path)."""

    workers = 1

    def __init__(self) -> None:
        self.faults: list[BatchFault] = []
        self.respawns = 0
        self.timeouts = 0

    def imap(
        self,
        fn: Callable[[Task], Result],
        tasks: Iterable[Task],
        *,
        inflight: int | None = None,
        failures: str = "raise",
    ) -> Iterator[Result]:
        for task in tasks:
            if failures == "yield":
                try:
                    yield fn(task)
                except Exception as exc:  # noqa: BLE001 - quarantine boundary
                    fault = BatchFault(kind="error", task=task, error=repr(exc))
                    self.faults.append(fault)
                    yield fault
            else:
                yield fn(task)

    def close(self, force: bool = False) -> None:  # pragma: no cover - no-op
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessExecutor:
    """Ordered, bounded-lookahead, fault-tolerant mapping over a process pool.

    ``inflight`` bounds how many tasks are submitted ahead of the consumer;
    the default (``workers + 2``) keeps every worker busy while the oldest
    result is being consumed, without racing arbitrarily far ahead of
    consumers that feed results back into the task stream (the pipeline's
    check-memo and the verdict-feedback batcher both do exactly that).

    :meth:`imap` is additionally *feedback-aware*: whenever the oldest
    submitted task has already finished, its result is yielded **before**
    the next task is pulled from the (lazy) task stream.  Consumers that
    react to results by mutating shared state the task stream reads — the
    pipeline's ``extensions_dominated`` flags, which cancel whole extension
    families at the source — therefore see verdicts at the earliest
    possible moment instead of only when the lookahead window fills, which
    is what lets feedback land before a family is enqueued.

    ``batch_timeout`` and ``max_respawns`` configure the fault-tolerance
    behavior described in the module docstring; ``faults``, ``respawns``
    and ``timeouts`` expose what happened for stats reporting.
    """

    def __init__(
        self,
        workers: int,
        *,
        inflight: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        batch_timeout: float | None = None,
        max_respawns: int = 3,
    ) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs at least 2 workers")
        if batch_timeout is not None and batch_timeout <= 0:
            raise ValueError("batch_timeout must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self.workers = workers
        self.inflight = inflight if inflight is not None else workers + 2
        self.batch_timeout = batch_timeout
        self.max_respawns = max_respawns
        self._initializer = initializer
        self._initargs = initargs
        self._context = (
            multiprocessing.get_context("fork")
            if hasattr(os, "fork")
            else multiprocessing.get_context()
        )
        self.faults: list[BatchFault] = []
        self.respawns = 0
        self.timeouts = 0
        self._serial_fallback = False
        self._initializer_ran_inline = False
        self._pool: ProcessPoolExecutor | None = self._spawn_pool()

    @property
    def serial_fallback(self) -> bool:
        """Whether the respawn budget is spent and remaining work runs inline.

        Consumers (the pipeline's fault harvest, the serving layer's
        degradation reporting) read this to tell "the pool recovered" from
        "the pool is gone and this run degraded to serial".
        """
        return self._serial_fallback

    # ------------------------------------------------------------ pool mgmt

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def _teardown_pool(self, *, kill: bool) -> None:
        """Release the current pool; ``kill`` terminates live workers first
        (needed when a worker is hung — ``shutdown`` alone would block on
        it forever)."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if kill:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already-dead worker
                    pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pool cleanup
            pass

    def _respawn_pool(self, *, kill: bool) -> bool:
        """Tear down and respawn the pool with capped exponential backoff.

        Returns ``False`` once the respawn budget is spent, flipping the
        executor into serial-fallback mode.
        """
        self._teardown_pool(kill=kill)
        if self.respawns >= self.max_respawns:
            self._serial_fallback = True
            return False
        delay = backoff_delay(self.respawns)
        self.respawns += 1
        time.sleep(delay)
        self._pool = self._spawn_pool()
        return True

    def _run_inline(self, fn, task, failures):
        """Serial-fallback execution of one task (after pool give-up)."""
        if self._initializer is not None and not self._initializer_ran_inline:
            self._initializer(*self._initargs)
            self._initializer_ran_inline = True
        if failures == "yield":
            try:
                return fn(task)
            except Exception as exc:  # noqa: BLE001 - quarantine boundary
                fault = BatchFault(kind="error", task=task, error=repr(exc))
                self.faults.append(fault)
                return fault
        return fn(task)

    # ------------------------------------------------------------------ imap

    def imap(
        self,
        fn: Callable[[Task], Result],
        tasks: Iterable[Task],
        *,
        inflight: int | None = None,
        failures: str = "raise",
    ) -> Iterator[Result]:
        """Map ``fn`` over ``tasks`` with submission-order results.

        ``inflight`` overrides the executor-level lookahead window for this
        call (consumers that feed verdicts back into the task stream may
        want a tighter window than throughput-only consumers).  Results are
        always yielded in submission order; finished head-of-queue results
        are yielded eagerly — before the next task is pulled — so the
        consumer's feedback reaches the task stream as early as possible.

        ``failures="yield"`` substitutes a :class:`BatchFault` for the
        result of a task that raised or timed out (see the module
        docstring); the default re-raises.  Pool breakage is never surfaced
        either way — it is repaired transparently by resubmission, which
        preserves the result stream exactly.
        """
        if failures not in ("raise", "yield"):
            raise ValueError(f"failures must be 'raise' or 'yield', got {failures!r}")
        window = self.inflight if inflight is None else max(1, inflight)
        # (task, future) pairs: the payload is kept so in-flight work can be
        # resubmitted verbatim after a pool death.
        pending: deque = deque()

        def submit(task):
            while True:
                if self._serial_fallback or self._pool is None:
                    return None
                try:
                    return self._pool.submit(fn, task)
                except BrokenProcessPool:
                    if not self._recover(pending, fn):
                        return None

        def consume_head():
            """Resolve the oldest in-flight task to a yieldable value.

            Loops until the head either produces a result, is quarantined,
            or (after repeated pool deaths) runs inline.
            """
            while True:
                if self._serial_fallback:
                    task, future = pending.popleft()
                    if future is None:
                        return self._run_inline(fn, task, failures)
                    # A future may survive from before the fallback flip.
                    try:
                        return future.result(timeout=0)
                    except Exception:
                        return self._run_inline(fn, task, failures)
                task, future = pending[0]
                started = time.monotonic()
                try:
                    result = future.result(timeout=self.batch_timeout)
                except BrokenProcessPool:
                    self._recover(pending, fn)
                    continue
                except FutureTimeoutError:
                    self.timeouts += 1
                    pending.popleft()
                    fault = BatchFault(
                        kind="timeout",
                        task=task,
                        error=f"batch exceeded {self.batch_timeout:g}s timeout",
                        elapsed=time.monotonic() - started,
                    )
                    self.faults.append(fault)
                    # The worker holding this task may be hung: kill the
                    # pool, respawn, resubmit everything *except* the
                    # quarantined head.
                    self._recover(pending, fn, kill=True)
                    if failures == "yield":
                        return fault
                    raise
                except Exception as exc:  # noqa: BLE001 - quarantine boundary
                    pending.popleft()
                    if failures == "yield":
                        fault = BatchFault(kind="error", task=task, error=repr(exc))
                        self.faults.append(fault)
                        return fault
                    raise
                else:
                    pending.popleft()
                    return result

        for task in tasks:
            pending.append((task, submit(task)))
            while pending and (
                len(pending) >= window
                or self._serial_fallback
                or (pending[0][1] is not None and pending[0][1].done())
            ):
                yield consume_head()
        while pending:
            yield consume_head()

    def _recover(self, pending: deque, fn, *, kill: bool = False) -> bool:
        """Respawn the pool and resubmit all in-flight tasks in order.

        Returns whether a live pool exists afterwards; on ``False`` the
        in-flight futures are cleared (payloads kept) and the caller runs
        tasks inline via serial fallback.
        """
        alive = self._respawn_pool(kill=kill)
        if alive:
            for index, (task, _old_future) in enumerate(pending):
                pending[index] = (task, self._pool.submit(fn, task))
        else:
            for index, (task, _old_future) in enumerate(pending):
                pending[index] = (task, None)
        return alive

    # ----------------------------------------------------------------- close

    def close(self, force: bool = False) -> None:
        """Release the pool.

        ``force`` skips waiting for outstanding work and cancels queued
        futures — the interrupt-safe path, used by ``__exit__`` when the
        block is being unwound by an exception (``KeyboardInterrupt``
        included) so an aborted run neither leaks worker processes nor
        hangs at interpreter exit.
        """
        self._teardown_pool(kill=force)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(force=exc_type is not None)


def make_executor(
    workers: int | None,
    *,
    inflight: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    batch_timeout: float | None = None,
    max_respawns: int = 3,
) -> SerialExecutor | ProcessExecutor:
    """The executor for a worker-count knob (serial for ``workers <= 1``).

    ``initializer(*initargs)`` installs per-worker shared state (see the
    module docstring); on the serial path it runs once inline, so task
    functions can rely on it unconditionally.
    """
    count = effective_workers(workers)
    if count <= 1:
        if initializer is not None:
            initializer(*initargs)
        return SerialExecutor()
    return ProcessExecutor(
        count,
        inflight=inflight,
        initializer=initializer,
        initargs=initargs,
        batch_timeout=batch_timeout,
        max_respawns=max_respawns,
    )
