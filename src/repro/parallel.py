"""Process-pool executor shim for the approximation pipeline.

The pipeline's parallelizable stages (class-membership checks, per-shard
frontier construction) funnel through one tiny interface so callers never
touch ``concurrent.futures`` directly:

* :class:`SerialExecutor` — runs tasks inline, zero overhead, used whenever
  ``workers <= 1``.  The serial path therefore has no serialization, no
  processes, and no behavioral difference from calling the task function in
  a loop.
* :class:`ProcessExecutor` — a thin wrapper over
  ``concurrent.futures.ProcessPoolExecutor`` whose :meth:`~ProcessExecutor.
  imap` preserves submission order while keeping a bounded number of tasks
  in flight, so a lazy task stream overlaps generation with execution
  without buffering the whole stream.

Task functions must be picklable module-level callables and task payloads
must be compact picklable values (the pipeline serializes tableaux to
integer-indexed fact lists; see :mod:`repro.core.pipeline`).  State shared
by *all* tasks of one executor — the pipeline's shard strategy ships the
encoded base tableau plus its precomputed automorphism/orbit data this way —
goes through ``initializer``/``initargs``: the initializer runs once per
worker process at startup, so the shared payload is serialized per worker
instead of per task and expensive derivations (the base tableau's
endomorphism scan) run once in the driver instead of once per task.  Engine
handles are never shipped to workers: each worker process rebuilds its own
:class:`~repro.homomorphism.engine.HomEngine` on first use via the pid check
in :func:`repro.homomorphism.engine.default_engine`.

On POSIX the pool uses the ``fork`` start method explicitly — workers
inherit the imported library (no re-import cost) but, by the pid check
above, not the parent's engine handle.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, TypeVar

Task = TypeVar("Task")
Result = TypeVar("Result")


def effective_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` → serial, ``-1`` → all
    CPUs, anything else is taken literally (also on machines with fewer
    cores — oversubscription is the caller's informed choice)."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return os.cpu_count() or 1
    return workers


class SerialExecutor:
    """Inline execution with the executor interface (the ``workers=1`` path)."""

    workers = 1

    def imap(
        self,
        fn: Callable[[Task], Result],
        tasks: Iterable[Task],
        *,
        inflight: int | None = None,
    ) -> Iterator[Result]:
        for task in tasks:
            yield fn(task)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessExecutor:
    """Ordered, bounded-lookahead mapping over a process pool.

    ``inflight`` bounds how many tasks are submitted ahead of the consumer;
    the default (``workers + 2``) keeps every worker busy while the oldest
    result is being consumed, without racing arbitrarily far ahead of
    consumers that feed results back into the task stream (the pipeline's
    check-memo and the verdict-feedback batcher both do exactly that).

    :meth:`imap` is additionally *feedback-aware*: whenever the oldest
    submitted task has already finished, its result is yielded **before**
    the next task is pulled from the (lazy) task stream.  Consumers that
    react to results by mutating shared state the task stream reads — the
    pipeline's ``extensions_dominated`` flags, which cancel whole extension
    families at the source — therefore see verdicts at the earliest
    possible moment instead of only when the lookahead window fills, which
    is what lets feedback land before a family is enqueued.
    """

    def __init__(
        self,
        workers: int,
        *,
        inflight: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 2:
            raise ValueError("ProcessExecutor needs at least 2 workers")
        context = (
            multiprocessing.get_context("fork")
            if hasattr(os, "fork")
            else multiprocessing.get_context()
        )
        self.workers = workers
        self.inflight = inflight if inflight is not None else workers + 2
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )

    def imap(
        self,
        fn: Callable[[Task], Result],
        tasks: Iterable[Task],
        *,
        inflight: int | None = None,
    ) -> Iterator[Result]:
        """Map ``fn`` over ``tasks`` with submission-order results.

        ``inflight`` overrides the executor-level lookahead window for this
        call (consumers that feed verdicts back into the task stream may
        want a tighter window than throughput-only consumers).  Results are
        always yielded in submission order; finished head-of-queue results
        are yielded eagerly — before the next task is pulled — so the
        consumer's feedback reaches the task stream as early as possible.
        """
        window = self.inflight if inflight is None else max(1, inflight)
        pending: deque = deque()
        for task in tasks:
            pending.append(self._pool.submit(fn, task))
            while pending and (len(pending) >= window or pending[0].done()):
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()

    def close(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(
    workers: int | None,
    *,
    inflight: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> SerialExecutor | ProcessExecutor:
    """The executor for a worker-count knob (serial for ``workers <= 1``).

    ``initializer(*initargs)`` installs per-worker shared state (see the
    module docstring); on the serial path it runs once inline, so task
    functions can rely on it unconditionally.
    """
    count = effective_workers(workers)
    if count <= 1:
        if initializer is not None:
            initializer(*initargs)
        return SerialExecutor()
    return ProcessExecutor(count, inflight=inflight, initializer=initializer, initargs=initargs)
