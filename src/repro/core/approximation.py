"""Computing C-approximations (Definition 3.1).

A C-approximation of ``Q`` is a query ``Q' ∈ C`` with ``Q' ⊆ Q`` such that no
``Q'' ∈ C`` satisfies ``Q' ⊂ Q'' ⊆ Q``.  In tableau terms: the →-minimal
elements of the set of class-C tableaux homomorphically above ``(T_Q, x̄)``.

* For graph-based classes, Theorem 4.1 bounds the search space to the
  homomorphic images (quotients) of the tableau, giving an *exact*,
  single-exponential algorithm (Corollary 4.3): enumerate quotients, keep
  class members, reduce to cores, deduplicate up to homomorphic equivalence,
  and return the →-minimal representatives.

* For hypergraph-based classes, Theorem 6.1 / Claim 6.2 enlarge the space
  with bounded extension atoms; ``ApproximationConfig.max_extra_atoms`` caps
  how many are tried (1 by default — enough for the paper's worked examples,
  and every returned query is still guaranteed to be a class member
  contained in ``Q``).  Extension-space runs stream through the same lazy
  integer-form pipeline stage as plain quotients
  (:func:`repro.core.quotients.iter_extended_candidates`): extension atoms
  are enumerated over block + fresh ids, orbit-pruned per quotient family,
  and rejected candidates never build a ``Structure``.

* For queries too large to enumerate, a randomized greedy descent provides a
  sound best-effort answer: a class member contained in ``Q`` that no
  inspected candidate improves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.cq.minimize import minimize
from repro.cq.query import ConjunctiveQuery
from repro.cq.tableau import Tableau
from repro.core.classes import QueryClass
from repro.core.pipeline import PipelineStats, run_pipeline
from repro.runtime.budget import RunBudget
from repro.core.quotients import (
    iter_extended_tableaux,
    iter_quotient_tableaux,
)
from repro.homomorphism.cores import core_tableau
from repro.homomorphism.engine import default_engine
from repro.util.partitions import partition_to_mapping


@dataclass(frozen=True)
class ApproximationConfig:
    """Knobs of the approximation search.

    ``exact_limit`` is the largest number of tableau elements for which the
    exact (Bell-number) enumeration runs — the indexed, memoizing
    homomorphism engine plus canonical-form deduplication of the candidate
    stream keep 9-variable enumerations (Bell(9) = 21147 partitions)
    practical, hence the default of 9; ``max_extra_atoms``/``allow_fresh``
    control the hypergraph extension space of Claim 6.2; the greedy descent
    stops after ``greedy_rounds`` consecutive unimproved samples, and its
    start-point search after ``greedy_start_rounds`` (defaulting to
    ``greedy_rounds`` when ``None``).

    ``workers``/``parallel``/``batch_size`` drive the staged pipeline behind
    the exact enumeration (:mod:`repro.core.pipeline`): ``workers > 1``
    spreads the work over a process pool, with ``parallel="checks"``
    (default; bit-identical results for any worker count) dispatching
    class-membership checks and ``parallel="shards"`` splitting the
    candidate stream itself by partition prefix (results equal up to
    homomorphic equivalence).  ``workers=-1`` means "all CPUs".  The greedy
    descent is inherently sequential and ignores the parallel knobs.

    ``admission_order`` selects the pipeline's stage-3 reduction order:
    ``"auto"`` (default) replays plain quotient streams fine-to-coarse —
    bit-identical to generation order via representative repair — and
    keeps extension streams in generation order; ``"generation"`` (the
    insertion-order baseline) and ``"fine-to-coarse"`` force one order.

    The budget knobs turn the exact enumeration *anytime*: ``deadline``
    (seconds of wall clock), ``memory_limit`` (bytes, combining an RSS
    probe with tracked frontier/memo sizes), ``max_candidates`` and
    ``max_checks`` each stop the run gracefully when exceeded — the
    partial frontier comes back with ``PipelineStats.exhausted`` set, and
    every member of it is still a sound C-overapproximation (only
    minimality/completeness is forfeited).  ``greedy_fallback`` falls back
    to the greedy descent when an exhausted run produced an *empty*
    frontier, so a budgeted call still returns a sound answer.
    ``checkpoint_path`` enables periodic snapshot/resume of serial
    plain-quotient-stream runs; ``batch_timeout`` (seconds) quarantines
    hung/poisoned pool batches instead of killing pooled runs.

    ``fabric_workers`` lifts the shard strategy onto network workers
    (:mod:`repro.fabric`): each entry is a ``"host:port"`` or unix-socket
    address of a ``repro worker`` process; ``heartbeat_interval`` and
    ``shard_timeout`` tune the coordinator's liveness probes and
    per-shard deadline.  ``spill_dir`` points frontier memo state
    (class-status map, cold refinement subtries) at an on-disk LRU spill
    tier so ``memory_limit``-bounded runs track only resident entries.
    """

    exact_limit: int = 9
    max_extra_atoms: int = 1
    allow_fresh: bool = True
    greedy_rounds: int = 300
    greedy_start_rounds: int | None = None
    seed: int = 17
    workers: int = 1
    parallel: str = "checks"
    batch_size: int = 128
    admission_order: str = "auto"
    deadline: float | None = None
    memory_limit: int | None = None
    max_candidates: int | None = None
    max_checks: int | None = None
    checkpoint_path: str | None = None
    batch_timeout: float | None = None
    greedy_fallback: bool = False
    fabric_workers: tuple[str, ...] = ()
    spill_dir: str | None = None
    heartbeat_interval: float = 2.0
    shard_timeout: float | None = None

    def budget(self) -> "RunBudget | None":
        """The run budget these knobs describe (``None`` when unbudgeted)."""
        if (
            self.deadline is None
            and self.memory_limit is None
            and self.max_candidates is None
            and self.max_checks is None
        ):
            return None
        return RunBudget(
            deadline=self.deadline,
            memory_limit=self.memory_limit,
            max_candidates=self.max_candidates,
            max_checks=self.max_checks,
        )


DEFAULT_CONFIG = ApproximationConfig()


def candidate_tableaux(
    query: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> Iterable[Tableau]:
    """The bounded witness space for ``Q`` and ``C`` (class members only).

    Candidates are deduplicated by canonical form before the (expensive)
    class-membership test: distinct partitions routinely produce isomorphic
    quotients, and class membership and the downstream frontier are
    isomorphism-invariant, so the dedup is lossless up to equivalence.

    This is the serial reference stream, kept at the tableau level on
    purpose (benchmarks replicate the historical algorithm with it); the
    frontier construction itself goes through :mod:`repro.core.pipeline`,
    which streams both quotients and extended candidates in lazy integer
    form, memoizes membership verdicts, and can spread stages over a
    process pool.
    """
    tableau = query.tableau()
    if cls.kind == "graph":
        source = iter_quotient_tableaux(tableau, dedup=True)
    else:
        source = iter_extended_tableaux(
            tableau,
            max_extra_atoms=config.max_extra_atoms,
            allow_fresh=config.allow_fresh,
            dedup=True,
        )
    for candidate in source:
        if cls.contains_tableau(candidate):
            yield candidate


def approximation_frontier(
    query: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
    *,
    tableau: Tableau | None = None,
    stats: PipelineStats | None = None,
    faults: list | None = None,
) -> list[Tableau]:
    """The →-minimal candidate tableaux, maintained as an online frontier.

    A new candidate is dropped if some frontier member maps into it (it is
    dominated or equivalent); otherwise it evicts every frontier member it
    maps into.  By transitivity of → the surviving set is exactly the set of
    minimal candidates up to homomorphic equivalence.

    Runs as the staged pipeline of :mod:`repro.core.pipeline`; with
    ``config.workers > 1`` the stages spread over a process pool (see
    :class:`ApproximationConfig` for the strategy knob and determinism
    guarantees).  ``tableau`` lets callers that already materialized
    ``query.tableau()`` avoid rebuilding it; ``stats`` is an optional
    :class:`~repro.core.pipeline.PipelineStats` sink the run's counters are
    absorbed into (the CLI's ``--stats`` flag reads them there); ``faults``
    is an optional list the run's structured
    :class:`~repro.parallel.BatchFault` records are appended to (pooled
    runs only — quarantined batches would otherwise be visible solely as
    the ``stats.quarantined`` count).
    """
    if tableau is None:
        tableau = query.tableau()
    result = run_pipeline(
        tableau,
        cls,
        workers=config.workers,
        parallel=config.parallel,
        batch_size=config.batch_size,
        max_extra_atoms=config.max_extra_atoms,
        allow_fresh=config.allow_fresh,
        admission_order=config.admission_order,
        budget=config.budget(),
        checkpoint=config.checkpoint_path,
        batch_timeout=config.batch_timeout,
        fabric=config.fabric_workers or None,
        spill_dir=config.spill_dir,
        heartbeat_interval=config.heartbeat_interval,
        shard_timeout=config.shard_timeout,
    )
    if stats is not None:
        stats.absorb(result.stats)
    if faults is not None:
        faults.extend(result.faults)
    return result.frontier


def all_approximations(
    query: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
    *,
    tableau: Tableau | None = None,
    stats: PipelineStats | None = None,
    faults: list | None = None,
) -> list[ConjunctiveQuery]:
    """The set ``C-APPR_min(Q)``: minimized, pairwise non-equivalent.

    Exact for graph-based classes whenever the query has at most
    ``config.exact_limit`` variables (Theorem 4.1's witness bound); for
    hypergraph-based classes, exact relative to the extension cap
    ``config.max_extra_atoms`` (Claim 6.2's full bound is polynomial but
    large).  Raises ``ValueError`` beyond ``exact_limit`` — use
    :func:`approximate` with the greedy method there.

    Under a budget (see :class:`ApproximationConfig`) the result may be a
    *partial* answer — check ``stats.exhausted``: every returned query is
    still a sound C-overapproximation, but queries of the full answer set
    may be missing.  With ``config.greedy_fallback`` an exhausted run that
    found *nothing* falls back to the greedy descent instead of returning
    an empty list.
    """
    if tableau is None:
        tableau = query.tableau()
    if len(tableau.structure.domain) > config.exact_limit:
        raise ValueError(
            f"query has {len(tableau.structure.domain)} variables; "
            f"exact enumeration is capped at exact_limit={config.exact_limit}"
        )
    if cls.contains_tableau(tableau):
        return [minimize(query)]

    run_stats = stats if stats is not None else PipelineStats()
    frontier = approximation_frontier(
        query, cls, config, tableau=tableau, stats=run_stats, faults=faults
    )
    if not frontier and run_stats.exhausted and config.greedy_fallback:
        return [greedy_approximate(query, cls, config, tableau=tableau)]
    return [
        ConjunctiveQuery.from_tableau(core_tableau(t), prefix="a")
        for t in frontier
    ]


def _quotient_by(tableau: Tableau, partition) -> Tableau:
    return tableau.rename(partition_to_mapping(partition))


def greedy_approximate(
    query: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
    *,
    tableau: Tableau | None = None,
) -> ConjunctiveQuery:
    """Randomized descent through quotients: sound, best-effort minimal.

    The result is always a class member contained in ``Q``.  The search has
    two phases with separate budgets: the *start-point search* samples
    quotients (coarsest first) until it finds any class member, giving up
    after ``greedy_start_rounds`` misses; the *descent* then repeatedly
    samples quotients (random refinements of the current kernel and fully
    random partitions), accepting any candidate strictly lower in the
    →-order, and stops after ``greedy_rounds`` consecutive failures.
    """
    if tableau is None:
        tableau = query.tableau()
    if cls.contains_tableau(tableau):
        return minimize(query)

    engine = default_engine()
    rng = random.Random(config.seed)
    elements = sorted(tableau.structure.domain, key=repr)

    def random_partition() -> tuple[tuple, ...]:
        block_count = rng.randint(1, len(elements))
        blocks: list[list] = [[] for _ in range(block_count)]
        for element in elements:
            blocks[rng.randrange(block_count)].append(element)
        return tuple(tuple(b) for b in blocks if b)

    def random_refinement(partition) -> tuple[tuple, ...]:
        blocks = [list(b) for b in partition]
        candidates = [i for i, b in enumerate(blocks) if len(b) > 1]
        if not candidates:
            return tuple(tuple(b) for b in blocks)
        index = rng.choice(candidates)
        block = blocks.pop(index)
        rng.shuffle(block)
        cut = rng.randint(1, len(block) - 1)
        blocks.extend([block[:cut], block[cut:]])
        return tuple(tuple(b) for b in blocks)

    # Phase 1 — start-point search: the coarsest quotient first, then random
    # samples, on its own budget so a hard-to-hit class cannot silently eat
    # the rounds meant for the descent phase.
    start_budget = (
        config.greedy_start_rounds
        if config.greedy_start_rounds is not None
        else config.greedy_rounds
    )
    samples_left = start_budget
    current_partition = (tuple(elements),)
    current = _quotient_by(tableau, current_partition)
    while not cls.contains_tableau(current):
        if samples_left <= 0:
            raise ValueError(
                f"greedy start-point search found no {cls.name} quotient of "
                f"the query in {start_budget} samples, so the descent phase "
                f"never began — raise greedy_start_rounds (or greedy_rounds) "
                f"or verify the query has any {cls.name} quotient at all"
            )
        samples_left -= 1
        current_partition = random_partition()
        current = _quotient_by(tableau, current_partition)

    # Phase 2 — descent, on the greedy_rounds budget.

    failures = 0
    while failures < config.greedy_rounds:
        move = rng.random()
        if move < 0.6:
            candidate_partition = random_refinement(current_partition)
        else:
            candidate_partition = random_partition()
        candidate = _quotient_by(tableau, candidate_partition)
        # The engine's strictness check front-loads the cheap refutations:
        # signature fast paths and canonical-key equality (isomorphic ⇒ not
        # strict) usually decide without any search, and repeated samples hit
        # the hom_le memo, so most rounds never pay for two full searches.
        if engine.strictly_below(candidate, current) and cls.contains_tableau(
            candidate
        ):
            current, current_partition = candidate, candidate_partition
            failures = 0
        else:
            failures += 1
    return minimize(ConjunctiveQuery.from_tableau(current, prefix="a"))


def approximate(
    query: ConjunctiveQuery,
    cls: QueryClass,
    *,
    method: str = "auto",
    config: ApproximationConfig = DEFAULT_CONFIG,
    stats: PipelineStats | None = None,
    faults: list | None = None,
) -> ConjunctiveQuery:
    """One C-approximation of ``Q`` (Corollaries 4.2/4.3, 6.3, 6.5).

    ``method="exact"`` uses the enumeration (guaranteed approximation, caps
    apply), ``method="greedy"`` the randomized descent, and ``"auto"`` picks
    by query size.  The tableau is materialized once here and threaded
    through whichever method runs.  ``stats`` (exact method only — the
    greedy descent does not run the pipeline) collects the run's
    :class:`~repro.core.pipeline.PipelineStats`.
    """
    if method not in {"auto", "exact", "greedy"}:
        raise ValueError(f"unknown method {method!r}")
    tableau = query.tableau()
    if method == "auto":
        small = len(tableau.structure.domain) <= config.exact_limit
        method = "exact" if small else "greedy"
    if method == "exact":
        results = all_approximations(
            query, cls, config, tableau=tableau, stats=stats, faults=faults
        )
        if not results:
            raise ValueError(f"query has no {cls.name}-approximation candidates")
        return results[0]
    return greedy_approximate(query, cls, config, tableau=tableau)
