"""Structure theorems for approximations over graphs (Section 5).

* Theorem 5.1 (Boolean trichotomy): for a Boolean graph CQ, the shape of its
  acyclic approximations is governed by bipartiteness and balancedness of
  the tableau: non-bipartite ⟹ only the trivial loop ``Q_triv``; bipartite
  unbalanced ⟹ only ``Q_triv2`` (tableau ``K2↔``); bipartite balanced ⟹
  every acyclic approximation is nontrivial and ``K2↔``-free.
* Corollary 5.3: acyclic approximations of cyclic Boolean CQs strictly
  reduce the number of joins.
* Theorem 5.8 (non-Boolean dichotomy): loops appear in every acyclic
  approximation iff the tableau is non-bipartite.
* Theorem 5.10 / Corollary 5.11: the TW(k) analogue via (k+1)-colorability.
"""

from __future__ import annotations

from enum import Enum

from repro.cq.builders import loop_query, trivial_bipartite_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.tableau import Tableau
from repro.graphs.balanced import is_balanced, levels
from repro.graphs.coloring import is_bipartite_digraph, is_k_colorable
from repro.graphs.digraph import has_loop, is_acyclic_digraph
from repro.graphs.oriented_paths import directed_path


class TrichotomyCase(Enum):
    """The three regimes of Theorem 5.1."""

    NOT_BIPARTITE = "not bipartite"
    BIPARTITE_UNBALANCED = "bipartite, not balanced"
    BIPARTITE_BALANCED = "bipartite and balanced"


def _require_graph_query(query: ConjunctiveQuery) -> None:
    if set(query.vocabulary) != {"E"} or query.vocabulary["E"] != 2:
        raise ValueError("the trichotomy applies to queries over graphs (E/2)")


def classify_tableau(structure) -> TrichotomyCase:
    """Classify a digraph tableau per Theorem 5.1."""
    if not is_bipartite_digraph(structure):
        return TrichotomyCase.NOT_BIPARTITE
    if not is_balanced(structure):
        return TrichotomyCase.BIPARTITE_UNBALANCED
    return TrichotomyCase.BIPARTITE_BALANCED


def classify_boolean_graph_query(query: ConjunctiveQuery) -> TrichotomyCase:
    """The Theorem 5.1 case of a Boolean graph CQ."""
    _require_graph_query(query)
    if not query.is_boolean:
        raise ValueError("Theorem 5.1 concerns Boolean queries")
    return classify_tableau(query.tableau().structure)


def promised_acyclic_approximation(query: ConjunctiveQuery) -> ConjunctiveQuery | None:
    """The approximation Theorem 5.1 pins down, when it does.

    * non-bipartite tableau → ``Q_triv() :- E(x, x)``;
    * bipartite unbalanced → ``Q_triv2() :- E(x, y), E(y, x)``;
    * bipartite balanced → ``None`` (nontrivial; must be searched for).

    For acyclic queries the query itself is returned.
    """
    structure = query.tableau().structure
    if is_acyclic_digraph(structure):
        return query
    case = classify_boolean_graph_query(query)
    if case is TrichotomyCase.NOT_BIPARTITE:
        return loop_query()
    if case is TrichotomyCase.BIPARTITE_UNBALANCED:
        return trivial_bipartite_query()
    return None


def level_path_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The directed-path query hit by the level map of a balanced tableau.

    For a balanced tableau of height ``h`` the level map is a homomorphism
    onto ``P_h``, so the path query of length ``h`` contains ``Q`` — the
    starting point for finding the nontrivial approximations promised in the
    balanced case (cf. Example 5.7, where the approximation *is* a path).
    """
    structure = query.tableau().structure
    lvl = levels(structure)
    if lvl is None:
        raise ValueError("the level map exists only for balanced tableaux")
    height = max(lvl.values(), default=0)
    if height < 1:
        raise ValueError("the tableau has no edges")
    path = directed_path(height)
    return ConjunctiveQuery.from_tableau(Tableau(path.structure), prefix="p")


# ------------------------------------------------------------- Theorem 5.8


def acyclic_approximations_all_have_loops(query: ConjunctiveQuery) -> bool:
    """Theorem 5.8's dichotomy predicate for (possibly non-Boolean) CQs.

    True iff the tableau is not bipartite — exactly when every acyclic
    approximation has a subgoal ``E(x, x)``.
    """
    _require_graph_query(query)
    return not is_bipartite_digraph(query.tableau().structure)


# -------------------------------------------------- Theorem 5.10 / Cor 5.11


def tw_approximations_all_have_loops(query: ConjunctiveQuery, k: int) -> bool:
    """Theorem 5.10: true iff the tableau is not ``(k+1)``-colorable."""
    _require_graph_query(query)
    return not is_k_colorable(query.tableau().structure, k + 1)


def has_nontrivial_tw_approximation(query: ConjunctiveQuery, k: int) -> bool:
    """Corollary 5.11: a Boolean graph CQ has a nontrivial
    TW(k)-approximation iff its tableau is ``(k+1)``-colorable."""
    _require_graph_query(query)
    if not query.is_boolean:
        raise ValueError("Corollary 5.11 concerns Boolean queries")
    return is_k_colorable(query.tableau().structure, k + 1)


def is_trivial_approximation(candidate: ConjunctiveQuery) -> bool:
    """Whether a Boolean graph CQ is equivalent to ``Q_triv`` (a loop)."""
    return has_loop(candidate.tableau().structure)
