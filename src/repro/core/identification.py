"""Identifying approximations — the DP-complete decision problem.

``Treewidth-k Approximation`` (Section 4.3): given ``Q`` and a treewidth-k
query ``Q'``, is ``Q'`` a TW(k)-approximation of ``Q``?  The procedure has
the DP shape the paper describes:

1. an NP part — check ``Q' ⊆ Q`` (a tableau homomorphism), and
2. a coNP part — check that no ``Q'' ∈ C`` satisfies ``Q' ⊂ Q'' ⊆ Q``.

For the second part the paper observes that a witness ``Q''`` can always be
chosen of bounded size: for graph-based classes its tableau is a
class-member homomorphic image of ``T_Q`` (the ``Im(g)`` argument in the
DP-membership proof), so enumerating quotients is a complete witness search.
For hypergraph-based classes the bounded witness space additionally carries
extension atoms (Claim 6.2); the cap is configurable.

Theorem 4.12 shows the problem is DP-complete even for acyclic digraph
cores; the benchmark ``bench_identification`` measures this procedure's
exponential witness search directly.
"""

from __future__ import annotations

from repro.cq.containment import is_contained_in
from repro.cq.query import ConjunctiveQuery
from repro.cq.tableau import Tableau
from repro.core.approximation import ApproximationConfig, DEFAULT_CONFIG, candidate_tableaux
from repro.core.classes import QueryClass
from repro.homomorphism.orders import hom_le


def better_witness(
    query: ConjunctiveQuery,
    candidate: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> ConjunctiveQuery | None:
    """A ``Q'' ∈ C`` with ``candidate ⊂ Q'' ⊆ query``, or ``None``.

    Searches the bounded witness space of the class.  In tableau terms a
    witness ``d`` satisfies ``T_Q → d``, ``d → T_candidate`` and
    ``T_candidate ↛ d``.
    """
    candidate_tab = candidate.tableau()
    for witness in candidate_tableaux(query, cls, config):
        if hom_le(witness, candidate_tab) and not hom_le(candidate_tab, witness):
            return ConjunctiveQuery.from_tableau(witness, prefix="w")
    return None


def is_approximation(
    query: ConjunctiveQuery,
    candidate: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> bool:
    """Decide whether ``candidate`` is a C-approximation of ``query``.

    Exact for graph-based classes up to ``config.exact_limit`` variables in
    ``query``; for hypergraph-based classes, exact relative to the extension
    cap.  Raises beyond the cap rather than answering unsoundly.
    """
    tableau = query.tableau()
    if len(tableau.structure.domain) > config.exact_limit:
        raise ValueError(
            f"query has {len(tableau.structure.domain)} variables; "
            f"identification is capped at exact_limit={config.exact_limit}"
        )
    if not cls.contains_query(candidate):
        return False
    if not is_contained_in(candidate, query):
        return False
    return better_witness(query, candidate, cls, config) is None


def is_exact_homomorphism_target(source: Tableau, target: Tableau) -> bool:
    """The ``Exact Acyclic Homomorphism`` predicate of Theorem 4.12.

    True iff ``source → target`` and there is no homomorphism from
    ``source`` into a *proper substructure* of ``target``.
    """
    if not hom_le(source, target):
        return False
    structure = target.structure
    for name, row in structure.facts():
        smaller = structure.remove_facts([(name, row)])
        try:
            smaller_tab = Tableau(smaller, target.distinguished)
        except ValueError:
            continue  # removing the fact stranded a distinguished element
        if hom_le(source, smaller_tab):
            return False
    return True
