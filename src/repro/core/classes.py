"""The tractable query classes C in which the paper approximates.

Graph-based classes (Section 4) restrict the graph ``G(Q)``; the canonical
family is TW(k), treewidth at most ``k`` — by Grohe–Schwentick–Segoufin this
captures graph-based tractability.  Hypergraph-based classes (Section 6)
restrict ``H(Q)``: acyclicity (= HTW(1)), bounded hypertree width, bounded
generalized hypertree width.

Each class object provides a membership test on tableaux/structures and
records the closure properties the existence theorems rely on
(Theorem 4.1: closure under subgraphs; Theorem 6.1: closure under induced
subhypergraphs and edge extensions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import networkx as nx

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.hypergraphs.ghw import generalized_hypertree_width_at_most
from repro.hypergraphs.gyo import is_acyclic
from repro.hypergraphs.hypergraph import Hypergraph, hypergraph_of_structure
from repro.hypergraphs.hypertree import hypertree_width_at_most
from repro.hypergraphs.treewidth import treewidth_at_most


def primal_graph_of_structure(structure: Structure) -> nx.Graph:
    """``G(Q)`` computed on a tableau: cliques over each fact's elements."""
    graph = nx.Graph()
    graph.add_nodes_from(structure.domain)
    for _, row in structure.facts():
        distinct = sorted(set(row), key=repr)
        for i, u in enumerate(distinct):
            for v in distinct[i + 1 :]:
                graph.add_edge(u, v)
    return graph


class QueryClass(ABC):
    """A class of CQs defined by a condition on tableaux."""

    #: "graph" or "hypergraph" — which existence theorem applies.
    kind: str
    name: str

    @abstractmethod
    def contains_structure(self, structure: Structure) -> bool:
        """Membership test on a tableau structure."""

    def contains_tableau(self, tableau: Tableau) -> bool:
        return self.contains_structure(tableau.structure)

    def contains_query(self, query: ConjunctiveQuery) -> bool:
        return self.contains_structure(query.tableau().structure)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryClass):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)


class TreewidthClass(QueryClass):
    """TW(k): queries whose graph has treewidth at most ``k`` (Section 4).

    Closed under subgraphs, which is what Theorem 4.1 needs: every
    homomorphic image of a tableau found by the search is compared against
    this membership test directly.
    """

    kind = "graph"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("treewidth bound must be at least 1")
        self.k = k
        self.name = f"TW({k})"

    def contains_structure(self, structure: Structure) -> bool:
        return self.contains_graph(primal_graph_of_structure(structure))

    def contains_graph(self, graph: nx.Graph) -> bool:
        """Membership on an already-built primal graph ``G(Q)``.

        Graph-based classes are determined by ``G(Q)`` alone, so callers
        holding the graph (the pipeline's candidate stream keeps quotients
        in integer-indexed form) can skip structure construction.
        """
        return treewidth_at_most(graph, self.k)


class AcyclicClass(QueryClass):
    """AC: acyclic queries (Yannakakis' class; = HTW(1), Section 6)."""

    kind = "hypergraph"
    name = "AC"

    def __init__(self) -> None:
        pass

    def contains_structure(self, structure: Structure) -> bool:
        return is_acyclic(hypergraph_of_structure(structure))

    def contains_hypergraph(self, hypergraph: Hypergraph) -> bool:
        return is_acyclic(hypergraph)


class HypertreeClass(QueryClass):
    """HTW(k): hypertree width at most ``k`` (Section 6)."""

    kind = "hypergraph"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("hypertree width bound must be at least 1")
        self.k = k
        self.name = f"HTW({k})"

    def contains_structure(self, structure: Structure) -> bool:
        return self.contains_hypergraph(hypergraph_of_structure(structure))

    def contains_hypergraph(self, hypergraph: Hypergraph) -> bool:
        """Membership on an already-built hypergraph ``H(Q)`` (hypergraph
        classes are determined by it alone)."""
        return hypertree_width_at_most(hypergraph, self.k)


class GeneralizedHypertreeClass(QueryClass):
    """GHTW(k): generalized hypertree width at most ``k`` (Section 6)."""

    kind = "hypergraph"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("generalized hypertree width bound must be at least 1")
        self.k = k
        self.name = f"GHTW({k})"

    def contains_structure(self, structure: Structure) -> bool:
        return self.contains_hypergraph(hypergraph_of_structure(structure))

    def contains_hypergraph(self, hypergraph: Hypergraph) -> bool:
        """Membership on an already-built hypergraph ``H(Q)``."""
        return generalized_hypertree_width_at_most(hypergraph, self.k)


def class_from_name(name: str) -> QueryClass:
    """The class a compact spec string names: ``TW<k>``, ``AC``, ``HTW<k>``,
    ``GHTW<k>`` (case-insensitive; the display forms ``TW(k)`` etc. are
    accepted too).

    This is the one parser behind every string-typed class surface — the
    CLI's ``--cls`` flags and the serving protocol's ``"cls"`` field — so
    they cannot drift apart.  Raises ``ValueError`` on an unknown spec.
    """
    spec = name.strip().upper().replace("(", "").replace(")", "")
    if spec == "AC":
        return AcyclicClass()
    for prefix, factory in (
        ("GHTW", GeneralizedHypertreeClass),
        ("HTW", HypertreeClass),
        ("TW", TreewidthClass),
    ):
        if spec.startswith(prefix) and spec[len(prefix):].isdigit():
            return factory(int(spec[len(prefix):]))
    raise ValueError(
        f"unknown class {name!r} (use TW<k>, AC, HTW<k> or GHTW<k>)"
    )


#: Convenience singletons for the most used classes.
TW1 = TreewidthClass(1)
TW2 = TreewidthClass(2)
AC = AcyclicClass()
HTW1 = HypertreeClass(1)
HTW2 = HypertreeClass(2)
GHTW1 = GeneralizedHypertreeClass(1)
