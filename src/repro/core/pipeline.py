"""Staged, parallel approximation pipeline (Corollary 4.3 as a dataflow).

The exact approximation algorithm is a generate → filter → reduce loop.
This module makes the three stages explicit and independently scalable::

      stage 1 — GENERATE          stage 2 — FILTER            stage 3 — REDUCE
    ┌──────────────────────┐    ┌──────────────────────┐    ┌──────────────────────┐
    │ iter_quotient_       │    │ class-membership     │    │ →-minimal frontier   │
    │   candidates /       │ →  │   checks             │ →  │ (Frontier)           │
    │ iter_extended_       │    │ · key-memoized: for  │    │ · online dominance / │
    │   candidates         │    │   graph (hypergraph) │    │   eviction via       │
    │ · canonical dedup,   │    │   classes the verdict│    │   hom_le(memo=False) │
    │   cost-modeled       │    │   depends only on    │    │   — stream pairs     │
    │   (DedupCostModel:   │    │   G(Q) (H(Q)), so    │    │   never repeat, so   │
    │   measured canon vs  │    │   candidates sharing │    │   canonical memo     │
    │   class-check cost)  │    │   a (hyper)graph     │    │   keys cost more     │
    │ · extension atoms    │    │   share one check    │    │   than they save     │
    │   over block + fresh │    │ · inline, or batched │    │ · dominance memo     │
    │   ids, orbit-pruned  │    │   over a process pool│    │   under integer-form │
    │   per quotient family│    │   in compact pickled │    │   keys               │
    │ · shardable by RGS   │    │   form, results      │    │ · associative merge  │
    │   partition prefix   │    │   streamed back in   │    │   so per-shard       │
    │   (disjoint slices   │    │   generation order   │    │   frontiers combine  │
    │   per worker)        │    │                      │    │                      │
    └──────────────────────┘    └──────────────────────┘    └──────────────────────┘

Two parallel strategies (``parallel=`` on ``ApproximationConfig``):

``"checks"`` (default)
    Stage 1 and stage 3 run in the driver process; stage 2's membership
    checks are dispatched to a process pool in generation-order batches and
    the verdict stream is consumed in the same order.  Because generation
    order, check verdicts, and frontier updates are all identical to the
    serial path, the output is **bit-identical** for any worker count.

``"shards"``
    The partition stream is split by restricted-growth-string prefix
    (:func:`repro.core.quotients._shard_prefixes`); each worker runs the
    whole three-stage loop on its slice and returns its local frontier,
    which the driver folds together with :meth:`Frontier.merge`.  The
    encoded base tableau and its automorphism/orbit data — derived once in
    the driver, never re-derived at worker startup — ship once per worker
    through the executor initializer rather than once per task.  Dedup and
    memo state are shard-local, so cross-shard duplicates survive until the
    merge absorbs them; the merged frontier equals the serial one as a set
    of queries *up to homomorphic equivalence* (representatives and order
    may differ).  Use it when stage 1 itself is the bottleneck.

Stage 3 is a *dominance-aware reduction engine*.  On plain quotient streams
(graph classes, and hypergraph classes with the extension space off) the
reducer replays the stream **fine-to-coarse** — candidates bucketed by
descending block count, which is free in integer form — so a quotient is
reduced before any coarsening of it.  The partition-coarsening positive
fast path then decides most dominance verdicts in O(n) integer comparisons
(the frontier's finer members refine the coarser candidates), turning it
from an opportunistic check into the common case and letting most
admissions resolve with **zero** ``hom_le`` searches
(``PipelineStats.admissions_resolved_by_order``).  Reordering stays
bit-identical to the serial generation-order baseline through **forward
representative repair**: members carry their generation index, a candidate
found equivalent to a later-generated member replaces it
(``representative_repairs``), and the surviving members are sorted back
into generation order at the end.  Extension-space runs keep generation
order (their reducer feeds dominance back into the lazy enumerator), but
the pooled ``"checks"`` batcher (:func:`_check_pooled`) consumes parent
verdicts as batches stream back — the executor's ``imap`` yields finished
results before pulling more work — and cancels not-yet-dispatched extension
families of member/dominated parents (``families_cancelled_in_flight``),
closing most of the serial-vs-pooled gap on member-heavy extension spaces.

Stage 1's dedup is itself cost-modeled per run (``run_pipeline``'s
``generation`` knob): the :class:`~repro.core.quotients.DedupCostModel` is
a three-way generation cost model — canonical dedup vs. orbit-only pruning
vs. the **raw partition stream** — driven by measured canonization cost,
duplicate rate, and the reducer's absorption feedback (candidates resolved
with zero searches and zero fresh checks), with a windowed controller that
can flip the regime mid-run.  On member-heavy fine-to-coarse runs the
refinement index absorbs nearly every repeat for free, so the raw stream
retires the per-candidate canonicalization tax that used to dominate them.

Determinism: the serial path is bit-identical to the pre-pipeline
implementation; ``workers=n`` under ``"checks"`` is bit-identical to
``workers=1``.  The cost model only decides which *duplicates* are pruned
(under ``"raw"``: none), and every pruned candidate is isomorphic to an
earlier stream element, so frontier results are invariant to its
(timing-dependent) decisions — the first-generated member of each
→-minimal class is never pruned, and representative repair converges on
exactly it whatever else survives.

Engine handles are never pickled: pool workers rebuild their own
:class:`~repro.homomorphism.engine.HomEngine` via the pid check in
:func:`~repro.homomorphism.engine.default_engine`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from itertools import chain, count, islice
from typing import Iterable, Iterator

import networkx as nx

from repro.core.classes import QueryClass
from repro.homomorphism.signatures import canonical_key_indexed
from repro.core.quotients import (
    GENERATION_MODES,
    DedupCostModel,
    QuotientCandidate,
    base_automorphism_inverses,
    coarseness_buckets,
    coarseness_ordered,
    iter_extended_candidates,
    iter_quotient_candidates,
)
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau, pin_for
from repro.homomorphism.engine import HomEngine, default_engine
from repro.hypergraphs.hypergraph import Hypergraph
from repro.parallel import (
    BatchFault,
    ProcessExecutor,
    SerialExecutor,
    effective_workers,
    make_executor,
)
from repro.runtime.budget import RunBudget
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.spill import SpillConfig, SpillableRefinementTrie, SpilledMap
from repro.util.partitions import RefinementTrie, code_coarsens

#: Candidates funneled into one pool task (strategy ``"checks"``).
DEFAULT_BATCH_SIZE = 128

#: Shards per worker under strategy ``"shards"`` — more shards than workers
#: smooths imbalance between slices at the cost of per-task setup.
_SHARDS_PER_WORKER = 2

#: Stage-ordering review cadence (candidates) and switch margin.  The margin
#: demands a decisive (2x) estimated advantage before changing the order, so
#: borderline regimes do not flap between orders as the membership memo warms.
_ORDER_REVIEW_EVERY = 256
_ORDER_SWITCH_MARGIN = 0.5
_ORDER_MIN_SAMPLES = 32


# --------------------------------------------------------------- serialization


def encode_tableau(tableau: Tableau) -> tuple:
    """A compact, picklable form of a tableau.

    Elements are replaced by indexes into a sorted element tuple, facts by
    ``(relation_index, index_row)`` pairs; empty relations survive through
    the explicit name/arity vectors.  :func:`decode_tableau` restores an
    equal tableau (same element names — shard workers return frontier
    members over the driver's original variable names).
    """
    structure = tableau.structure
    elements = sorted(structure.domain, key=repr)
    index = {element: i for i, element in enumerate(elements)}
    names = tuple(sorted(structure.relations))
    arities = tuple(structure.arity(name) for name in names)
    facts = tuple(
        (name_index, tuple(index[value] for value in row))
        for name_index, name in enumerate(names)
        for row in sorted(structure.relations[name], key=repr)
    )
    distinguished = tuple(index[d] for d in tableau.distinguished)
    return (tuple(elements), names, arities, facts, distinguished)


def decode_tableau(data: tuple) -> Tableau:
    """Inverse of :func:`encode_tableau`."""
    elements, names, arities, facts, distinguished = data
    relations: dict[str, list[tuple]] = {name: [] for name in names}
    for name_index, row in facts:
        relations[names[name_index]].append(
            tuple(elements[i] for i in row)
        )
    structure = Structure(
        relations, vocabulary=dict(zip(names, arities)), domain=elements
    )
    return Tableau(structure, tuple(elements[i] for i in distinguished))


# ------------------------------------------------------------ membership keys


def membership_key(cls: QueryClass, structure: Structure) -> tuple | None:
    """A key under which class membership of ``structure`` is constant.

    Graph-based classes (Section 4) are by definition determined by the
    graph ``G(Q)`` and hypergraph-based classes (Section 6) by ``H(Q)``, so
    two candidates with equal primal graph (hypergraph) share one verdict —
    and the candidate stream is full of such coincidences that survive
    isomorphism dedup (e.g. quotients differing only in edge orientation,
    or extension atoms permuting the same variable set).  Returns ``None``
    for classes of unknown kind, which disables memoization for them.
    """
    kind = getattr(cls, "kind", None)
    if kind == "hypergraph":
        edges = frozenset(
            frozenset(row)
            for rows in structure.relations.values()
            for row in rows
        )
        return (cls.name, structure.domain, edges)
    if kind == "graph":
        rows = (
            row
            for relation_rows in structure.relations.values()
            for row in relation_rows
        )
        return (cls.name, structure.domain, frozenset(_primal_pairs(rows)))
    return None


def _primal_pairs(rows) -> set[tuple]:
    """The primal-graph edge pairs of an iterable of fact rows.

    One shared clique expansion (distinct row elements, all unordered
    pairs), mirroring
    :func:`repro.core.classes.primal_graph_of_structure`, so memo keys and
    integer-fact checks cannot drift from the structure-level test.
    """
    pairs: set[tuple] = set()
    for row in rows:
        distinct = sorted(set(row), key=repr)
        for i, u in enumerate(distinct):
            for v in distinct[i + 1 :]:
                pairs.add((u, v))
    return pairs


def candidate_check_key(cls: QueryClass, candidate) -> tuple | None:
    """The membership-memo key of a stage-1 candidate.

    Quotient candidates expose their facts over integer block ids, which
    give a label-free key: equal integer (hyper)graphs mean isomorphic
    (hyper)graphs, so the key collapses strictly more duplicate checks than
    the label-exact :func:`membership_key` — while remaining disjoint from
    it (integer vs. labelled domain components), so both can share a memo.
    Falls back to the structure-based key for materialized candidates.
    """
    kind = getattr(cls, "kind", None)
    facts = candidate.facts()
    if facts is None:
        return membership_key(cls, candidate.materialize().structure)
    if kind == "hypergraph":
        edges = frozenset(frozenset(row) for _, row in facts)
        return (cls.name, candidate.block_count, edges)
    if kind == "graph":
        pairs = _primal_pairs(row for _, row in facts)
        return (cls.name, candidate.block_count, frozenset(pairs))
    return None


def dominance_key(candidate) -> tuple | None:
    """A key under which stage-1 candidates are isomorphic *as tableaux*.

    Unlike :func:`candidate_check_key` this keeps the relational layout and
    the distinguished tuple: equal keys mean the identity on block ids is an
    isomorphism, so frontier verdicts transfer between the candidates.
    ``None`` for candidates without an integer form.
    """
    facts = candidate.facts()
    if facts is None:
        return None
    return (candidate.block_count, facts, candidate.distinguished)


def _check_integer_candidate(
    cls: QueryClass, block_count: int, facts: tuple
) -> bool | None:
    """Class membership straight from integer-indexed facts.

    Builds the primal graph / hypergraph directly — no ``Structure``, no
    ``Tableau`` — and asks the class's graph-level membership test.  Returns
    ``None`` when the class offers no such entry point (the caller then
    materializes and uses ``contains_tableau``).
    """
    kind = getattr(cls, "kind", None)
    if kind == "hypergraph" and hasattr(cls, "contains_hypergraph"):
        return bool(
            cls.contains_hypergraph(
                Hypergraph(
                    (set(row) for _, row in facts),
                    vertices=range(block_count),
                )
            )
        )
    if kind == "graph" and hasattr(cls, "contains_graph"):
        graph = nx.Graph()
        graph.add_nodes_from(range(block_count))
        graph.add_edges_from(_primal_pairs(row for _, row in facts))
        return bool(cls.contains_graph(graph))
    return None


# ------------------------------------------------------------------ statistics


@dataclass
class PipelineStats:
    """Counters and stage timings of one pipeline run."""

    generated: int = 0
    checks_run: int = 0
    #: Canonical keys computed *at reduction time* (raw/orbit streams only):
    #: a candidate that survives the free absorption checks — the dominance
    #: memo, the refinement index, and (check-first) a memoized membership
    #: rejection — is keyed just before its dominance scan, so isomorphic
    #: repeats the stream did not deduplicate still skip their searches
    #: through the class-status memo.  This is the stage-1 canonicalization
    #: tax moved behind the absorption filters: member-heavy streams barely
    #: pay it at all, and rejected candidates never do.
    late_canonizations: int = 0
    #: Candidates resolved by the isomorphism-class status memo (an earlier
    #: isomorphic candidate's admitted/dominated outcome decided this one
    #: with no dominance scan; rejections are not memoized — rejected
    #: candidates exit through the memoized class check before any key is
    #: computed).
    class_status_hits: int = 0
    check_memo_hits: int = 0
    check_seconds: float = 0.0
    members: int = 0
    dominance_tests: int = 0
    dominance_memo_hits: int = 0
    dominance_seconds: float = 0.0
    dominated: int = 0
    admitted: int = 0
    evicted: int = 0
    order_switches: int = 0
    shards: int = 0
    #: How many times the base tableau's automorphism/orbit data was derived
    #: (the endomorphism scan behind stage 1's orbit pruning).  Exactly one
    #: per run: the driver derives once and shard workers receive the data
    #: with their task context instead of re-deriving at startup.
    orbit_derivations: int = 0
    #: Extended candidates dropped because their parent quotient was already
    #: dominated by (or admitted to) the frontier — the quotient embeds into
    #: each of its extensions, so the whole family is dominated with no
    #: search.  Counts only children that were already generated (pooled
    #: lookahead); families skipped at the source never reach ``generated``.
    extension_short_circuits: int = 0
    #: Engine-backed order queries issued by the frontier (dominance scans,
    #: eviction scans, representative repairs).  Coarsening fast paths and
    #: dominance-memo hits do not count — the counter is the wall-clock-free
    #: guard for the fine-to-coarse admission order, which exists precisely
    #: to resolve admissions without engine searches.
    hom_le_calls: int = 0
    #: "Dominated" verdicts that needed no member scan: dominance-memo hits
    #: plus refinement-index hits.  (``dominance_memo_hits`` counts hits of
    #: either verdict; this isolates the positive ones, which is what the
    #: ordering cost model needs for the true dominated rate.)
    dominated_without_search: int = 0
    #: Stage-3 resolutions (dominance verdict plus any repair and eviction
    #: work) that completed with zero engine ``hom_le`` calls.  Counted only
    #: while the fine-to-coarse admission order is active: under it a
    #: coarser candidate usually meets a strictly finer frontier member
    #: whose partition refines its own, so the coarsening fast path (an
    #: O(n) integer comparison) decides the admission outright.
    admissions_resolved_by_order: int = 0
    #: Frontier representatives swapped back to an earlier-generated
    #: equivalent candidate (:meth:`Frontier._repair`) — the forward
    #: repair that keeps reordered reductions bit-identical to the serial
    #: generation-order baseline.
    representative_repairs: int = 0
    #: Extension families whose not-yet-dispatched children were cancelled
    #: inside the pooled check batcher after the parent's verdict streamed
    #: back (counted once per family; the children themselves surface as
    #: ``extension_short_circuits`` when the reducer skips them).
    families_cancelled_in_flight: int = 0
    #: Refinement-index entries dropped by a capacity backstop.  The trie
    #: index is uncapped (the historical ``_INDEX_CAP`` antichain cap is
    #: retired), so this stays zero — it is the tripwire that makes any
    #: reintroduced cap visible in ``--stats`` instead of silently
    #: truncating the index like the old backstop did.
    index_evictions: int = 0
    #: Times the stage-1 generation regime flipped mid-run (the cost
    #: model's windowed three-way controller deciding canonical dedup vs.
    #: orbit-only pruning vs. the raw partition stream).
    generation_switches: int = 0
    #: Candidates class-checked by the fine-to-coarse member-rate probe
    #: (the first sizable bucket of the buffered stream).  The checks are
    #: memoized, so the reduction replays them as memo hits — the probe
    #: front-loads work, it does not add any.
    generation_probe_candidates: int = 0
    #: Probe verdicts that canonically re-keyed the buffered stream up
    #: front: on a member-light first bucket (rate at most
    #: :data:`_PROBE_MEMBER_RATE`) nearly every raw duplicate would miss
    #: the refinement index and pay a late canonization anyway, so the
    #: buffer is deduplicated before the reduction starts.
    generation_probe_switches: int = 0
    #: Whether a :class:`~repro.runtime.budget.RunBudget` stopped the run
    #: before the candidate space was exhausted.  A partial frontier is
    #: still *sound* — every member is a class member the base maps into,
    #: hence a C-overapproximation of the query — but minimality and
    #: completeness are forfeited: members of the true frontier may be
    #: missing, and surviving members may be dominated by unseen
    #: candidates.  Consumers must surface this flag.
    exhausted: bool = False
    #: Which budget dimension tripped (empty while within budget).
    exhaustion_reason: str = ""
    #: Process pools respawned after a ``BrokenProcessPool`` (killed/OOM'd
    #: workers).  Respawns are transparent — in-flight work is resubmitted
    #: in order, so results are unaffected.
    pool_respawns: int = 0
    #: Per-batch timeouts that expired while waiting on a pool batch.
    batch_timeouts: int = 0
    #: Runs whose executor spent its respawn budget and degraded to inline
    #: (serial) execution of the remaining tasks.  The run still completes
    #: with the same results — this counter is how consumers (the CLI, the
    #: serving layer) tell a recovered pool from a dead one.
    serial_fallbacks: int = 0
    #: Candidates whose class check was lost to a quarantined (timed-out or
    #: raising) pool batch.  They are skipped — a sound omission: skipping
    #: forfeits completeness only, like a budget stop.
    quarantined: int = 0
    #: Snapshots written by the checkpoint manager this run.
    checkpoints_written: int = 0
    #: Candidates skipped on resume because a checkpoint already covered
    #: them (the restored ``generated`` count still includes them).
    resumed_candidates: int = 0
    #: Candidate classes resolved at merge time by a shard-shipped kernel
    #: trie (satellite of the fabric work): the incoming member's own
    #: trie answered the dominance direction exactly, so the merge ran no
    #: reverse hom search for it.
    kernel_trie_merge_hits: int = 0
    #: Pooled-check verdicts absorbed by the driver-side class-status /
    #: refinement-index gate *before* dispatch (the worker-side absorption
    #: channel for raw/orbit streams under ``parallel="checks"``).
    pooled_absorptions: int = 0
    # --- fabric counters (zero on non-fabric runs) -----------------------
    #: Shards re-dispatched after a network fault, timeout, or worker loss
    #: (the at-least-once path; duplicates are absorbed by merge).
    shard_retries: int = 0
    #: Speculative duplicate dispatches launched against straggler shards.
    speculative_dispatches: int = 0
    #: Shard results that arrived after another copy of the same shard had
    #: already been merged (speculation or re-dispatch races; absorbing
    #: them is the idempotence the fabric's at-least-once delivery needs).
    duplicate_results: int = 0
    #: Shard responses re-served from a worker's memoized result cache
    #: (keyed by context digest + shard slice) instead of recomputed — a
    #: retried or speculated shard that already ran on that worker costs
    #: a lookup, not a pipeline pass.
    shard_cache_hits: int = 0
    #: Remote workers blacklisted after consecutive failures.
    workers_blacklisted: int = 0
    #: Shards that ultimately ran on the local fallback executor because
    #: the remote worker set was empty or emptied mid-run.
    fabric_local_shards: int = 0
    #: Heartbeat probes that went unanswered past the deadline (each one
    #: costs the affected shard a re-dispatch).
    heartbeat_misses: int = 0
    # --- spill counters (zero when no spill directory is configured) ----
    #: Segment/bucket writes by the frontier's spill tiers.
    spill_writes: int = 0
    #: Segment/bucket reloads (cold state pulled back for a query).
    spill_loads: int = 0
    #: Spilled payloads that failed to read back and were dropped as
    #: misses (fail-open; the pipeline re-derives the lost memo entries).
    spill_load_failures: int = 0
    #: Peak resident frontier state (tracked entries, see
    #: :meth:`Frontier.tracked_entries`) observed in any single process of
    #: the run.  Absorbed with *max*, not sum: across shard workers it
    #: reports the largest per-process footprint — the quantity a
    #: per-worker memory ceiling actually binds on.
    peak_tracked_entries: int = 0

    #: Fields absorbed with ``max`` instead of ``+``: per-process peaks,
    #: where summing across shards would misstate the footprint.
    _PEAK_FIELDS = ("peak_tracked_entries",)

    def absorb(self, other: "PipelineStats") -> None:
        for name in self.__dataclass_fields__:
            mine, theirs = getattr(self, name), getattr(other, name)
            if isinstance(mine, bool):
                setattr(self, name, mine or theirs)
            elif isinstance(mine, str):
                if not mine:
                    setattr(self, name, theirs)
            elif name in self._PEAK_FIELDS:
                setattr(self, name, max(mine, theirs))
            else:
                setattr(self, name, mine + theirs)

    def as_dict(self) -> dict:
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }

    @classmethod
    def numeric_fields(cls) -> tuple[str, ...]:
        """The summable counter/timer fields (excludes flags and reasons)."""
        return tuple(
            name
            for name, spec in cls.__dataclass_fields__.items()
            if spec.type in ("int", "float")
        )


@dataclass
class PipelineResult:
    """The →-minimal frontier plus the run's observability payload.

    ``faults`` carries the structured :class:`~repro.parallel.BatchFault`
    records of quarantined pool batches (empty on fault-free runs): what
    kind of failure, the stringified cause, and how long the wait lasted.
    """

    frontier: list[Tableau]
    stats: PipelineStats
    faults: list = field(default_factory=list)


# -------------------------------------------------------------------- stage 2


class MembershipTester:
    """Stage 2 inline: key-memoized, timed class-membership checks.

    Accepts stage-1 candidates (quotient candidates or adapted tableaux);
    integer-form candidates are checked straight off their integer facts so
    a non-member is rejected without ever materializing a ``Structure``.
    """

    def __init__(
        self,
        cls: QueryClass,
        stats: PipelineStats,
        cost_model: DedupCostModel | None = None,
    ) -> None:
        self._cls = cls
        self._stats = stats
        self._cost_model = cost_model
        self._memo: dict[tuple, bool] = {}

    def __call__(self, candidate) -> bool:
        key = candidate_check_key(self._cls, candidate)
        if key is not None:
            cached = self._memo.get(key)
            if cached is not None:
                self._stats.check_memo_hits += 1
                if cached:
                    self._stats.members += 1
                return cached
        started = time.perf_counter()
        facts = candidate.facts()
        verdict = None
        if facts is not None:
            verdict = _check_integer_candidate(
                self._cls, candidate.block_count, facts
            )
        if verdict is None:
            verdict = bool(self._cls.contains_tableau(candidate.materialize()))
        elapsed = time.perf_counter() - started
        self._stats.checks_run += 1
        self._stats.check_seconds += elapsed
        if self._cost_model is not None:
            self._cost_model.record_downstream(elapsed)
        if key is not None:
            self._memo[key] = verdict
        if verdict:
            self._stats.members += 1
        return verdict


def _check_batch(payload: tuple) -> tuple[tuple[bool, ...], tuple[float, ...]]:
    """Pool task: class checks on a batch of compact candidate payloads.

    Each entry is either ``("ints", block_count, facts)`` — integer-indexed
    facts checked straight on the rebuilt primal graph / hypergraph — or
    ``("tableau", encoded)`` for candidates without an integer form.
    Returns the verdicts plus the worker-side per-check seconds, which the
    driver feeds to its :class:`DedupCostModel` so the dedup cutoff sees
    real check costs even when no check runs in the driver process.
    """
    cls, entries = payload
    verdicts: list[bool] = []
    seconds: list[float] = []
    for entry in entries:
        started = time.perf_counter()
        if entry[0] == "ints":
            verdict = _check_integer_candidate(cls, entry[1], entry[2])
            if verdict is None:
                verdict = bool(
                    cls.contains_tableau(
                        _integer_tableau(entry[1], entry[2])
                    )
                )
        else:
            verdict = bool(
                cls.contains_structure(decode_tableau(entry[1]).structure)
            )
        verdicts.append(verdict)
        seconds.append(time.perf_counter() - started)
    return tuple(verdicts), tuple(seconds)


def _integer_tableau(block_count: int, facts: tuple) -> Tableau:
    """A tableau over ``0..block_count-1`` realizing integer-indexed facts
    (fallback for classes without a graph-level membership test; class
    membership is isomorphism-invariant, so the relabelling is harmless)."""
    relations: dict[str, list[tuple]] = {}
    for relation_id, row in facts:
        relations.setdefault(f"R{relation_id}", []).append(row)
    return Tableau(Structure(relations, domain=range(block_count)))


def _candidate_payload(candidate, key: tuple | None) -> tuple:
    """The compact pool form of one stage-1 candidate."""
    facts = candidate.facts()
    if facts is not None and key is not None:
        return ("ints", candidate.block_count, facts)
    return ("tableau", encode_tableau(candidate.materialize()))


#: Verdict sentinel for candidates the pooled batcher never dispatched
#: because the driver's absorption gate (class-status memo / refinement
#: index) already knew their resolution.  Consumers resolve such
#: candidates through the frontier's absorption machinery instead of a
#: membership verdict.
ABSORBED = object()


def _iter_membership_candidates(
    candidates: Iterable,
    cls: QueryClass,
    executor: SerialExecutor | ProcessExecutor | None,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    stats: PipelineStats,
    cost_model: DedupCostModel | None = None,
    absorb=None,
) -> Iterator[tuple[object, bool | None]]:
    """Stage 2 over stage-1 candidates: ``(candidate, is_member)`` in order.

    With a :class:`~repro.parallel.SerialExecutor` (or ``None``) checks run
    inline; with a :class:`~repro.parallel.ProcessExecutor` they go through
    :func:`_check_pooled`.  Verdicts are memoized under
    :func:`candidate_check_key` either way.  ``absorb`` (pooled runs only)
    is the dispatch-time absorption gate — see :func:`_check_pooled`.
    """
    if executor is None or isinstance(executor, SerialExecutor):
        tester = MembershipTester(cls, stats, cost_model)
        for candidate in candidates:
            stats.generated += 1
            yield candidate, tester(candidate)
        return
    yield from _check_pooled(
        candidates,
        cls,
        executor,
        batch_size=batch_size,
        stats=stats,
        cost_model=cost_model,
        absorb=absorb,
    )


def _check_pooled(
    candidates: Iterable,
    cls: QueryClass,
    executor: ProcessExecutor,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    stats: PipelineStats,
    cost_model: DedupCostModel | None = None,
    absorb=None,
) -> Iterator[tuple[object, bool | None]]:
    """The pooled ``"checks"`` batcher, with verdict feedback.

    ``absorb``, when given, is a dispatch-time gate: a parentless
    candidate for which ``absorb(candidate)`` is true is never sent to
    the pool — it is emitted (in order) with the :data:`ABSORBED`
    sentinel as its verdict, and the caller resolves it against the
    frontier's memo structures instead.  The gate sees candidates at
    intake, before batching, so absorbed work costs no pool round-trip.

    Candidates are batched across the pool with bounded lookahead, results
    streamed back in generation order, and in-flight keys are never
    dispatched twice (batches resolve in submission order, so an earlier
    batch's verdict is always in the memo before a later batch consumes
    it).

    The batcher additionally implements **verdict feedback** on extension
    streams.  A child whose parent quotient has no emitted verdict yet is
    *gated* — generated and queued, but not dispatched to the pool.  As
    batches stream back (the executor's feedback-aware ``imap`` yields
    finished results before pulling more work) the downstream reducer marks
    member/dominated parents (``extensions_dominated``), and the gate then
    resolves each held family: children of marked parents are **cancelled**
    (never checked — emitted with verdict ``None``; consumers skip them on
    the parent flag, which never resets, and each cancelled family counts
    once in ``stats.families_cancelled_in_flight``), children of unmarked
    parents are released for dispatch.  The verdict stream stays exactly in
    generation order — released children simply resolve through a later
    batch, and emission waits for them — so results remain bit-identical
    for any worker count while the pool checks only (nearly) the candidates
    the serial path would have checked, closing the serial-vs-pooled gap on
    member-heavy extension spaces where the batch lookahead used to
    generate-and-check whole families ahead of their parent's verdict.
    """
    memo: dict[tuple, bool] = {}
    # Keys dispatched but not yet resolved.  Batches resolve in submission
    # order, so a key sent with batch j is guaranteed resolved (in ``memo``)
    # before any batch k > j is consumed — later batches can treat in-flight
    # keys as known and skip the duplicate dispatch.
    pending_keys: set = set()
    #: Entries in generation order: ``[candidate, kind, value]`` with kind
    #: one of "key" (verdict = ``memo[value]`` once resolved), "direct"
    #: (verdict written into ``value`` when its batch resolves), "verdict"
    #: (ready — ``None`` means cancelled), "gated" (value = parent, not
    #: dispatched), "await" (released, waiting for dispatch).
    entries: deque = deque()
    release_queue: deque = deque()
    submitted: deque = deque()  # per in-flight batch: its (entry, key) list
    # Every emitted parent-shaped candidate, for the gate's "verdict
    # already emitted?" test.  O(#parents) strong references for the run —
    # parents are lazy integer-form quotients (children never enter), and
    # the streams that reach this path hold comparable per-parent state
    # elsewhere (the enumerator's key sets, the plain path's full buffer).
    emitted_parents: set = set()
    cancelled_families: set = set()
    _UNRESOLVED = object()

    def _cancel(entry) -> None:
        parent = entry[2] if entry[1] == "gated" else getattr(
            entry[0], "parent", None
        )
        entry[1], entry[2] = "verdict", None
        if parent is not None and parent not in cancelled_families:
            cancelled_families.add(parent)
            stats.families_cancelled_in_flight += 1

    def _dispatch(entry, batch_meta: list, batch_payloads: list) -> None:
        candidate = entry[0]
        key = candidate_check_key(cls, candidate)
        if key is not None and (key in memo or key in pending_keys):
            stats.check_memo_hits += 1
            entry[1], entry[2] = "key", key
            return
        if key is None:
            entry[1], entry[2] = "direct", _UNRESOLVED
        else:
            pending_keys.add(key)
            entry[1], entry[2] = "key", key
        batch_meta.append((entry, key))
        batch_payloads.append(_candidate_payload(candidate, key))

    def payloads() -> Iterator[tuple]:
        batch_meta: list = []
        batch_payloads: list = []

        def flush() -> tuple | None:
            nonlocal batch_meta, batch_payloads
            if not batch_payloads:
                return None
            submitted.append(batch_meta)
            payload = (cls, tuple(batch_payloads))
            batch_meta, batch_payloads = [], []
            return payload

        def intake() -> Iterator:
            # Released children first (they are older than anything still
            # in the stream), then fresh stream candidates.
            while True:
                if release_queue:
                    yield release_queue.popleft()
                    continue
                candidate = next(stream, _UNRESOLVED)
                if candidate is _UNRESOLVED:
                    return
                stats.generated += 1
                entry = [candidate, None, None]
                entries.append(entry)
                parent = getattr(candidate, "parent", None)
                if parent is not None and parent.extensions_dominated:
                    _cancel(entry)
                    continue
                if parent is not None and parent not in emitted_parents:
                    entry[1], entry[2] = "gated", parent
                    continue
                if parent is None and absorb is not None and absorb(candidate):
                    stats.pooled_absorptions += 1
                    entry[1], entry[2] = "verdict", ABSORBED
                    continue
                yield entry

        for entry in intake():
            _dispatch(entry, batch_meta, batch_payloads)
            if len(batch_payloads) >= batch_size:
                payload = flush()
                if payload is not None:
                    yield payload
        payload = flush()
        if payload is not None:
            yield payload

    def _resolve_batch(verdicts, seconds) -> None:
        for (entry, key), verdict, elapsed in zip(
            submitted.popleft(), verdicts, seconds
        ):
            stats.checks_run += 1
            stats.check_seconds += elapsed
            if cost_model is not None:
                cost_model.record_downstream(elapsed)
            if key is None:
                entry[2] = verdict
            else:
                memo[key] = verdict
                pending_keys.discard(key)

    def _resolve_batch_failed() -> None:
        """Quarantine a lost batch (timeout or raising worker).

        Every candidate of the batch resolves to verdict ``None`` — treated
        as a non-member downstream, a *sound* omission (a skipped candidate
        forfeits completeness only, exactly like a budget stop).  Entries
        elsewhere in the queue that were riding on a key this batch was
        supposed to resolve are quarantined too: their key is no longer
        pending and no later batch will dispatch it for them, so leaving
        them would stall the drain forever.
        """
        lost_keys: set = set()
        for entry, key in submitted.popleft():
            stats.quarantined += 1
            entry[1], entry[2] = "verdict", None
            if key is not None:
                pending_keys.discard(key)
                lost_keys.add(key)
        if lost_keys:
            for entry in entries:
                if (
                    entry[1] == "key"
                    and entry[2] in lost_keys
                    and entry[2] not in memo
                ):
                    stats.quarantined += 1
                    entry[1], entry[2] = "verdict", None

    def _drain() -> Iterator[tuple[object, bool | None]]:
        while entries:
            candidate, kind, value = entries[0]
            if kind == "gated":
                # The parent is ahead of its children in the queue, so a
                # gated head's parent has been emitted (and, if dominated
                # or a member, marked) — the gate can resolve now.
                for entry in entries:
                    if entry[1] != "gated":
                        continue
                    if entry[2].extensions_dominated:
                        _cancel(entry)
                    elif entry[2] in emitted_parents:
                        entry[1], entry[2] = "await", None
                        release_queue.append(entry)
                continue
            if kind == "await":
                return  # dispatching through the next batch
            if kind == "key":
                verdict = memo.get(value, _UNRESOLVED)
            else:  # "direct" or ready "verdict"
                verdict = value
            if verdict is _UNRESOLVED:
                return
            entries.popleft()
            if verdict is ABSORBED:
                pass  # resolved by the caller against the frontier memos
            elif verdict:
                stats.members += 1
            if getattr(candidate, "parent", None) is None:
                emitted_parents.add(candidate)
            yield candidate, verdict

    stream = iter(candidates)
    while True:
        # A one-batch-tighter lookahead window than the executor default:
        # verdict feedback lands a batch earlier, and the gate keeps the
        # pool from starving on held families either way.  Batch failures
        # surface as BatchFault records (failures="yield") in the failed
        # batch's result slot, so quarantine keeps submission-order
        # bookkeeping intact.
        for outcome in executor.imap(
            _check_batch, payloads(), inflight=executor.workers + 1,
            failures="yield",
        ):
            if isinstance(outcome, BatchFault):
                _resolve_batch_failed()
            else:
                _resolve_batch(*outcome)
            yield from _drain()
        yield from _drain()
        if not entries:
            return
        if not release_queue:  # pragma: no cover - progress invariant
            raise RuntimeError("pooled check batcher stalled on gated entries")
        # Released children that surfaced after the stream was exhausted:
        # another imap round dispatches them (and anything they unblock).


def iter_membership(
    candidates: Iterable[Tableau],
    cls: QueryClass,
    executor: SerialExecutor | ProcessExecutor | None = None,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    stats: PipelineStats | None = None,
    cost_model: DedupCostModel | None = None,
) -> Iterator[tuple[Tableau, bool]]:
    """Stage 2 as a reusable stream over plain tableaux.

    The public face of :func:`_iter_membership_candidates` for callers that
    hold tableaux (e.g. the syntactic overapproximation search): yields
    ``(tableau, is_member)`` in input order with the same memoization and
    pooling behavior.
    """
    if stats is None:
        stats = PipelineStats()
    wrapped = (QuotientCandidate.from_tableau(tableau) for tableau in candidates)
    for candidate, verdict in _iter_membership_candidates(
        wrapped,
        cls,
        executor,
        batch_size=batch_size,
        stats=stats,
        cost_model=cost_model,
    ):
        yield candidate.materialize(), verdict


# -------------------------------------------------------------------- stage 3


class Frontier:
    """The →-minimal frontier, with an associative merge (stage 3).

    ``add`` implements the online update: a candidate dominated by (or
    equivalent to) a member is dropped; otherwise it evicts every member it
    maps into and joins.  All order queries go through
    ``hom_le(memo=False)`` — a streamed candidate meets the frontier exactly
    once, so computing canonical memo keys for the pair would cost more than
    the (signature-guarded) search it tries to avoid.

    Dominance tests scan members in a private move-to-front order:
    consecutive candidates are structurally close (neighbouring partitions),
    so the member that dominated the last candidate very likely dominates
    the next one, and front-loading it turns the typical scan into a single
    successful search.  The scan order is pure bookkeeping — ``any`` over a
    set of members — while :attr:`members` itself stays in admission order,
    so results and their order are unchanged.

    Candidates from one quotient stream can also carry their partition
    ``codes`` (restricted-growth strings over the shared base).  When both
    sides of an order query have codes, partition coarsening is a sound
    positive fast path: if ``codes(b)`` coarsens ``codes(a)`` the quotient
    map ``T/a → T/b`` *is* a homomorphism, deciding ``a → b`` in O(n)
    integer comparisons with no search.  (Coarsening is sufficient, not
    necessary — failures still fall through to the engine.)

    Dominance verdicts are additionally memoized under the candidate's
    integer-form ``key`` (see :func:`dominance_key`): candidates with equal
    keys are isomorphic, and since the frontier only descends in the
    →-order, a "dominated" verdict stays valid for the rest of the run — a
    member that mapped into the candidate can only ever be replaced by
    something lower, which maps in too.  "Not dominated" verdicts are
    reusable only until the next admission.  On raw (dedup-off) candidate
    streams most candidates repeat an earlier integer form, so this removes
    the majority of dominance searches outright.

    The frontier is *dominance-aware* across admission orders: members can
    carry a ``generation`` index (their position in the unreordered
    candidate stream), and when a dominance scan finds a candidate
    equivalent to a *later-generated* member — which only happens when the
    reducer replays the stream fine-to-coarse — the representative is
    repaired back to the earlier-generated candidate
    (:meth:`_repair`).  Together with
    :meth:`restore_generation_order` this makes the reordered reduction
    bit-identical to the serial generation-order baseline: both end with
    the first-generated class member of each →-minimal equivalence class,
    listed in generation order.

    ``merge`` folds another frontier's members through ``add``; since the
    →-minimal set is unique up to homomorphic equivalence, merging is
    associative and commutative *up to equivalence of representatives*,
    which is what lets per-shard frontiers combine in any grouping.
    """

    __slots__ = (
        "members",
        "_scan",
        "_codes",
        "_generation",
        "_dominated_keys",
        "_undominated_keys",
        "_refinement_index",
        "_repair_forward",
        "_class_status",
        "_kernel_tries",
        "_kernel_queries",
        "_ordered",
        "_engine",
        "_stats",
    )

    #: Cap on homomorphisms scanned while building one member's kernel
    #: index (:meth:`_kernel_trie_for`); a member beyond it falls back to
    #: per-candidate engine queries.  Loop-heavy members can absorb very
    #: many homomorphisms, and a capped-out enumeration is pure waste, so
    #: the cap is deliberately modest — such members are exactly the ones
    #: whose engine queries resolve fast anyway.
    _KERNEL_HOM_CAP = 512

    #: Engine-backed reverse queries a member must attract before its
    #: kernel index is built.  The hom enumeration behind the index is
    #: worth one-time cost only when many candidates are tested against
    #: the member (raw member-heavy streams: thousands); member-light
    #: streams ask a handful of reverse queries per member and must not
    #: pay an enumeration that can cost more than all of them together.
    _KERNEL_BUILD_AFTER = 8

    def __init__(
        self,
        members: Iterable[Tableau] = (),
        *,
        engine: HomEngine | None = None,
        stats: PipelineStats | None = None,
        ordered: bool = False,
        spill: SpillConfig | None = None,
    ) -> None:
        self.members: list[Tableau] = list(members)
        self._scan: list[Tableau] = list(self.members)
        self._codes: dict[int, tuple[int, ...]] = {}
        self._generation: dict[int, int] = {}
        self._dominated_keys: set = set()
        self._undominated_keys: dict = {}
        #: Trie over the codes of uncovered dominated-or-admitted
        #: candidates, each entry carrying its repair witness.  Lookups are
        #: sublinear (compatible-prefix walk instead of the historical
        #: linear antichain scan), so the index runs uncapped — the
        #: ``_INDEX_CAP`` backstop that silently truncated it is retired.
        #: With ``spill`` set, both this index and the class-status memo
        #: below become their memory-bounded spill variants (see
        #: :mod:`repro.runtime.spill`): identical protocol, bounded
        #: residency, fail-open reads — the only structures here that grow
        #: with classes *seen* rather than frontier size.
        if spill is None:
            self._refinement_index: RefinementTrie = RefinementTrie()
        else:
            directory = spill.ensure_directory()
            self._refinement_index = SpillableRefinementTrie(
                directory,
                spill_depth=spill.trie_depth,
                max_resident=spill.trie_resident,
            )
        #: Repair swaps, old representative id → its replacement — index
        #: witnesses are resolved through this map at hit time.
        self._repair_forward: dict[int, Tableau] = {}
        #: Resolution outcome per isomorphism class (fact-level canonical
        #: key → "admitted"/"dominated").  Raw streams consult it through
        #: :meth:`resolve`'s ``late_key`` just before a dominance scan, so
        #: unabsorbed isomorphic repeats skip their searches; outcomes
        #: transfer because the frontier only descends (a member mapping
        #: into the first copy maps into every repeat).
        if spill is None:
            self._class_status: dict[tuple, str] = {}
        else:
            self._class_status = SpilledMap(
                spill.directory,
                max_resident=spill.map_resident,
                name="class-status",
            )
        #: Per-member kernel index for the repair reverse query, keyed by
        #: ``id(member)`` — the value pins the member tableau alive so ids
        #: cannot be reused.  ``(member, trie)`` with a
        #: :class:`~repro.util.partitions.RefinementTrie` of hom kernels,
        #: or ``(member, None)`` when the hom scan capped out.
        self._kernel_tries: dict[int, tuple[Tableau, RefinementTrie | None]] = {}
        #: Reverse queries answered by the engine per member so far — the
        #: build trigger for the lazy kernel index (see
        #: ``_KERNEL_BUILD_AFTER``).
        self._kernel_queries: dict[int, int] = {}
        self._ordered = ordered
        self._engine = engine if engine is not None else default_engine()
        self._stats = stats if stats is not None else PipelineStats()

    #: Whether every block of ``fine`` lies inside a block of ``coarse``
    #: (the shared O(n) coarsening test of :mod:`repro.util.partitions`).
    _coarsens = staticmethod(code_coarsens)

    def _le(
        self,
        source: Tableau,
        source_codes: tuple[int, ...] | None,
        target: Tableau,
        target_codes: tuple[int, ...] | None,
    ) -> bool:
        if self._coarsens(source_codes, target_codes):
            return True
        self._stats.hom_le_calls += 1
        return self._engine.hom_le(source, target, memo=False)

    def cached_dominance(self, key: tuple | None) -> bool | None:
        """The memoized dominance verdict for an integer form, if still valid.

        "Dominated" never expires (the frontier only descends); "not
        dominated" is valid only while no admission happened since it was
        recorded.  Callers can consult this before materializing a
        candidate — a hit answers the stage-3 question with no tableau, no
        search.
        """
        if key is None:
            return None
        # Memo hits deliberately leave `dominated`/`dominance_tests` alone:
        # those two counters describe *searched* verdicts only, so their
        # ratio stays a well-formed rate for the ordering cost model.
        if key in self._dominated_keys:
            self._stats.dominance_memo_hits += 1
            self._stats.dominated_without_search += 1
            return True
        if self._undominated_keys.get(key) == self._stats.admitted:
            self._stats.dominance_memo_hits += 1
            return False
        return None

    def absorbable(self, candidate) -> bool:
        """Whether zero-cost evidence already settles this candidate.

        The pooled batcher's dispatch gate (see :func:`_check_pooled`):
        a true return means the dominance memo, the refinement index, or
        the class-status memo will resolve the candidate "dominated"
        without its class check, so dispatching the check to the pool
        would be pure waste.  Side-effect-free — the candidate still goes
        through :meth:`resolve`, which re-derives the evidence with the
        normal hit counting — and monotone: every structure consulted
        only grows (and "dominated" never expires), so a gate-time hit
        still holds at resolve time regardless of what the pool returns
        in between.  Only *pre-computed* class keys are consulted;
        canonizing here would spend exactly the cost the gate exists to
        avoid.
        """
        key = dominance_key(candidate)
        if key is not None and key in self._dominated_keys:
            return True
        codes = candidate.codes
        if self._ordered and codes is not None:
            hit, _ = self._refinement_index.find_refinement(codes)
            if hit:
                return True
        class_key = getattr(candidate, "key", None)
        if class_key is not None and self._class_status.get(class_key) is not None:
            return True
        return False

    def _scan_dominance(
        self,
        candidate: Tableau,
        codes: tuple[int, ...] | None,
        key: tuple | None,
    ) -> tuple[bool, Tableau | None]:
        """The timed member scan behind :meth:`dominated`.

        Returns the verdict plus the member that witnessed it (``None`` for
        negative verdicts) — the witness is what representative repair
        needs.  Memo bookkeeping is identical to the historical scan.

        The scan runs in two phases: a *coarsening pre-pass* testing every
        member's partition codes against the candidate's (O(n) integer
        comparisons per member, no search), then the engine-backed
        move-to-front pass.  Under fine-to-coarse admission the frontier's
        members are at least as fine as the candidate, so the pre-pass
        decides most scans outright — paying a ``hom_le`` on the
        front members first (the historical single pass) would waste
        searches that are strictly pricier than checking every member's
        codes.  Which member witnesses a positive verdict is bookkeeping
        only: if the candidate has an equivalent member, that member is the
        unique one mapping into it, so any witness found is the right one.
        """
        started = time.perf_counter()
        verdict, witness = False, None
        member_codes = self._codes
        if codes is not None:
            for position, member in enumerate(self._scan):
                if self._coarsens(member_codes.get(id(member)), codes):
                    verdict, witness = True, member
                    if position:
                        self._scan.insert(0, self._scan.pop(position))
                    break
        if not verdict:
            # The pre-pass already rejected every coarsening witness (and
            # with ``codes`` None there can be none), so this pass goes
            # straight to the engine.
            for position, member in enumerate(self._scan):
                self._stats.hom_le_calls += 1
                if self._engine.hom_le(member, candidate, memo=False):
                    verdict, witness = True, member
                    if position:
                        self._scan.insert(0, self._scan.pop(position))
                    break
        self._stats.dominance_tests += 1
        self._stats.dominance_seconds += time.perf_counter() - started
        if key is not None:
            if verdict:
                self._dominated_keys.add(key)
            else:
                self._undominated_keys[key] = self._stats.admitted
        if verdict:
            self._stats.dominated += 1
        return verdict, witness

    def dominated(
        self,
        candidate: Tableau,
        codes: tuple[int, ...] | None = None,
        key: tuple | None = None,
    ) -> bool:
        """Whether some member maps into ``candidate``."""
        cached = self.cached_dominance(key)
        if cached is not None:
            return cached
        verdict, _ = self._scan_dominance(candidate, codes, key)
        return verdict

    def _refinement_lookup(
        self, codes: tuple[int, ...]
    ) -> tuple[bool, Tableau | None]:
        """Query the refinement index: ``(hit, witness)``.

        A hit means some recorded dominated-or-admitted partition refines
        ``codes``: a member mapped into that finer quotient when it was
        recorded, the quotient map carries it on into this candidate, and
        the frontier only descends — so the candidate is dominated with no
        scan and no search.  The index is a
        :class:`~repro.util.partitions.RefinementTrie`, so the query walks
        only the entries sharing a refinement-compatible code prefix
        instead of scanning the whole antichain.  Which refining entry the
        walk surfaces is immaterial: if the candidate is equivalent to a
        current member, that member is the *unique* member mapping into it
        — hence the unique member behind **every** hitting entry's witness
        chain (any witness chain resolving to a live member resolves to
        it), so any hit repairs identically to any other.  The returned
        witness is resolved through past repair swaps; ``None`` means the
        entry's class is provably off the frontier, so representative
        repair cannot apply (see :meth:`resolve` for why that is sound).
        """
        hit, witness = self._refinement_index.find_refinement(codes)
        if not hit:
            return False, None
        while witness is not None and id(witness) not in self._generation:
            witness = self._repair_forward.get(id(witness))
        return True, witness

    def _record_refinement(
        self, codes: tuple[int, ...] | None, witness: Tableau | None
    ) -> None:
        """Add an uncovered dominated-or-admitted candidate to the index."""
        if self._ordered and codes is not None:
            self._refinement_index.add(codes, witness)

    def _kernel_trie_for(
        self, base: Tableau, witness: Tableau
    ) -> RefinementTrie | None:
        """The witness's kernel index: the kernels of every pinned
        homomorphism ``base → witness``, as partition codes over the base
        element order, in a :class:`~repro.util.partitions.RefinementTrie`.

        A quotient candidate ``c`` (of the same base) maps into the witness
        iff some hom ``base → witness`` is constant on ``c``'s blocks —
        i.e. iff ``c``'s partition refines one of these kernels — so the
        index answers the repair reverse query ``c → witness`` in one
        :meth:`~repro.util.partitions.RefinementTrie.find_coarsening` walk
        instead of a per-candidate engine search.  Built once per member
        on first use (the hom enumeration is amortized over every
        candidate tested against the member — on raw streams that is the
        dominant repair cost); ``None`` when the enumeration exceeded
        ``_KERNEL_HOM_CAP`` (callers then fall back to the engine).  An
        empty trie is exact: no pinned hom exists, so nothing maps in.
        """
        cached = self._kernel_tries.get(id(witness))
        if cached is not None:
            return cached[1]
        trie: RefinementTrie | None = RefinementTrie()
        pin = pin_for(base, witness)
        if pin is not None:
            elements = sorted(base.structure.domain, key=repr)
            scanned = 0
            for hom in self._engine.iter_homomorphisms(
                base.structure, witness.structure, pin=pin
            ):
                scanned += 1
                if scanned > self._KERNEL_HOM_CAP:
                    trie = None
                    break
                label: dict = {}
                trie.add(
                    tuple(
                        label.setdefault(hom[element], len(label))
                        for element in elements
                    )
                )
        self._kernel_tries[id(witness)] = (witness, trie)
        return trie

    def _member_le(self, candidate, codes, witness: Tableau) -> bool:
        """``candidate → witness`` — the repair/equivalence reverse query.

        Decided, in order, by the coarsening fast path (candidate codes
        refine the witness's), the witness's kernel index (quotient
        candidates only), and the engine.  The kernel index is what keeps
        raw streams cheap: the forced equivalence queries of the ordered
        reduction repeat against the same few members, and a trie walk per
        candidate replaces a (mostly futile) search per candidate.  The
        index is built lazily — a member answers its first
        ``_KERNEL_BUILD_AFTER`` queries through the engine, so streams
        that only ever ask a handful never pay the hom enumeration.
        """
        if codes is not None and code_coarsens(codes, self._codes.get(id(witness))):
            return True
        base = getattr(candidate, "base", None)
        if codes is not None and base is not None:
            cached = self._kernel_tries.get(id(witness))
            if cached is not None:
                trie = cached[1]
            else:
                asked = self._kernel_queries.get(id(witness), 0) + 1
                if asked <= self._KERNEL_BUILD_AFTER:
                    self._kernel_queries[id(witness)] = asked
                    trie = None
                else:
                    self._kernel_queries.pop(id(witness), None)
                    trie = self._kernel_trie_for(base, witness)
            if trie is not None:
                hit, _ = trie.find_coarsening(codes)
                return hit
        self._stats.hom_le_calls += 1
        return self._engine.hom_le(candidate.materialize(), witness, memo=False)

    def _repair(
        self, candidate, witness, generation, membership, *, equivalent=None
    ) -> None:
        """Swap ``witness`` for the earlier-generated equivalent ``candidate``.

        Fine-to-coarse admission can put a later-generated member on the
        frontier before an earlier-generated equivalent candidate is
        processed.  When a dominance verdict then finds that candidate
        dominated by such a member (``generation(witness) > generation``),
        the representative set is repaired *forward*: if the candidate maps
        back into the witness (hom-equivalence — the witness already maps
        into the candidate) and is itself a class member (``membership``;
        equivalence does not preserve class membership, so it must be
        verified), it replaces the witness — the frontier converges on the
        first-generated member of each equivalence class, exactly what the
        serial generation-order baseline keeps.  The swap exchanges
        hom-equivalent tableaux, so every memoized dominance verdict stays
        valid.  ``equivalent`` short-circuits the reverse query when the
        caller already computed it.
        """
        if witness is None or generation is None:
            return
        witness_generation = self._generation.get(id(witness))
        if witness_generation is None or witness_generation <= generation:
            return
        codes = candidate.codes
        if equivalent is None:
            equivalent = self._member_le(candidate, codes, witness)
        if not equivalent:
            return
        if membership is not None and not membership():
            return
        tableau = candidate.materialize()
        position = next(
            i for i, member in enumerate(self.members) if member is witness
        )
        self.members[position] = tableau
        scan_position = next(
            i for i, member in enumerate(self._scan) if member is witness
        )
        self._scan[scan_position] = tableau
        self._codes.pop(id(witness), None)
        if codes is not None:
            self._codes[id(tableau)] = codes
        self._generation.pop(id(witness), None)
        self._generation[id(tableau)] = generation
        self._repair_forward[id(witness)] = tableau
        self._stats.representative_repairs += 1

    def resolve(
        self,
        candidate,
        *,
        key: tuple | None = None,
        generation: int | None = None,
        membership=None,
        membership_first: bool = False,
        late_key=None,
    ) -> str:
        """The order-aware frontier update for one stage-1 candidate.

        Returns ``"dominated"`` (some member maps into the candidate —
        after attempting representative repair), ``"rejected"``
        (``membership`` vetoed the candidate), or ``"admitted"``.
        ``membership`` is a zero-argument callable deciding class
        membership, consulted at most once; pass ``None`` when the
        candidate is already known to be a member.  ``membership_first``
        is the cost-modeled stage order: the class check runs before the
        dominance *scan* (check-first) or after it (dominance-first) —
        but zero-cost dominance evidence (the key memo and the refinement
        index) is consulted before either, since a free "dominated" beats
        any check.  ``candidate`` is a stage-1 candidate object
        (``materialize()``/``codes``), materialized only when a search or
        admission actually needs the tableau.

        ``late_key`` is the raw-stream dedup hook: a zero-argument callable
        producing the candidate's fact-level canonical key (``None`` when
        uncomputable).  It is invoked only on the brink of a dominance
        *scan* — after the free absorption checks (dominance memo,
        refinement index) missed and after a check-first membership
        rejection had its chance to end the resolution cheaply — this is
        the stage-1 canonicalization tax deferred to the point of real
        need, never paid by candidates a memoized check rejects.  The key
        is consulted against the class-status memo: an isomorphic
        candidate's earlier admitted/dominated outcome settles this one
        with no search ("admitted"/"dominated" transfer because the
        frontier only descends; equal keys share a block count, so under
        any supported order the earlier copy had the lower generation and
        any repair already happened there, exactly as for the dominance
        memo below).  On a miss the candidate's own outcome is recorded
        under the key.

        Fine-to-coarse reductions (``ordered=True``) answer most
        resolutions from the refinement index with zero engine calls.
        Repair stays exact on index hits: if the candidate were equivalent
        to a current member, that member would be the *unique* member
        mapping into it, hence also the unique member behind the index
        entry's witness chain — so repairing against the resolved witness
        (or skipping repair when the entry's class provably left the
        frontier) reproduces exactly what a full scan would have done.
        """
        member_known = membership is None
        cached = self.cached_dominance(key)
        if cached is True:
            # An isomorphic candidate resolved "dominated" earlier.  Equal
            # keys share a block count, so under any supported order the
            # earlier candidate had the lower generation and any repair
            # already happened there — nothing further to do.
            return "dominated"
        codes = candidate.codes
        if cached is None and self._ordered and codes is not None:
            hit, hit_witness = self._refinement_lookup(codes)
            if hit:
                self._stats.dominance_memo_hits += 1
                self._stats.dominated_without_search += 1
                if key is not None:
                    self._dominated_keys.add(key)
                self._repair(candidate, hit_witness, generation, membership)
                return "dominated"
        if membership_first and not member_known:
            if not membership():
                return "rejected"
            member_known = True
        repair_membership = None if member_known else membership
        class_key = None
        if cached is False:
            verdict, witness = False, None
        else:
            if late_key is not None:
                class_key = late_key()
                if class_key is not None:
                    status = self._class_status.get(class_key)
                    if status is not None:
                        # "admitted" or "dominated": either way a member
                        # maps into the earlier isomorphic copy, hence
                        # into this candidate — no scan needed.
                        self._stats.class_status_hits += 1
                        self._stats.dominated_without_search += 1
                        if key is not None:
                            self._dominated_keys.add(key)
                        return "dominated"
            verdict, witness = self._scan_dominance(
                candidate.materialize(), codes, key
            )
        if verdict:
            if self._ordered:
                # Establish once whether this candidate's class sits on the
                # frontier (the repair's reverse query, forced even when
                # the generations would not warrant it): index hits through
                # the entry then know for certain whether repair can ever
                # apply — a ``None`` witness is a proof, not a guess.
                equivalent = self._member_le(candidate, codes, witness)
                if equivalent:
                    self._repair(
                        candidate, witness, generation, repair_membership,
                        equivalent=True,
                    )
                self._record_refinement(codes, witness if equivalent else None)
            else:
                self._repair(candidate, witness, generation, repair_membership)
            self._set_class_status(class_key, "dominated")
            return "dominated"
        if not member_known and not membership():
            return "rejected"
        tableau = candidate.materialize()
        self.insert(tableau, codes, generation=generation)
        self._record_refinement(codes, tableau)
        self._set_class_status(class_key, "admitted")
        return "admitted"

    def _set_class_status(self, class_key: tuple | None, status: str) -> None:
        if class_key is not None:
            self._class_status[class_key] = status

    def insert(
        self,
        candidate: Tableau,
        codes: tuple[int, ...] | None = None,
        *,
        generation: int | None = None,
        use_kernel_tries: bool = False,
    ) -> None:
        """Admit a known-undominated class member, evicting what it beats.

        Engine-backed eviction queries are batched through
        :meth:`~repro.homomorphism.engine.HomEngine.hom_le_many` (the
        candidate-side signature and search plan are shared across the
        member scan) after coarsening-witnessed pairs are decided inline.

        ``use_kernel_tries`` additionally decides eviction queries through
        the scanned member's kernel index when one is seeded (``candidate →
        member`` holds iff the candidate's partition refines some hom
        kernel of the member — exact in both directions for same-base
        quotients).  Only :meth:`merge` sets it: the serial path's members
        never carry seeded tries, and keeping the flag off there leaves
        its engine-call counters untouched.
        """
        member_codes = self._codes
        beaten: dict[int, bool] = {}
        searched: list[Tableau] = []
        for member in self.members:
            if self._coarsens(codes, member_codes.get(id(member))):
                beaten[id(member)] = True
                continue
            if use_kernel_tries and codes is not None:
                cached = self._kernel_tries.get(id(member))
                if cached is not None and cached[1] is not None:
                    hit, _ = cached[1].find_coarsening(codes)
                    beaten[id(member)] = hit
                    self._stats.kernel_trie_merge_hits += 1
                    continue
            searched.append(member)
        if searched:
            self._stats.hom_le_calls += len(searched)
            for member, verdict in zip(
                searched,
                self._engine.hom_le_many(candidate, searched, memo=False),
            ):
                beaten[id(member)] = verdict
        survivors = [
            member for member in self.members if not beaten[id(member)]
        ]
        self._stats.evicted += len(self.members) - len(survivors)
        self._stats.admitted += 1
        survivors.append(candidate)
        if len(survivors) != len(self.members) + 1:
            kept = set(map(id, survivors))
            self._scan = [m for m in self._scan if id(m) in kept]
            self._codes = {
                key: value for key, value in member_codes.items() if key in kept
            }
            self._generation = {
                key: value
                for key, value in self._generation.items()
                if key in kept
            }
        self.members = survivors
        self._scan.insert(0, candidate)
        if codes is not None:
            self._codes[id(candidate)] = codes
        if generation is not None:
            self._generation[id(candidate)] = generation

    def add(
        self,
        candidate: Tableau,
        codes: tuple[int, ...] | None = None,
        key: tuple | None = None,
    ) -> bool:
        """The online frontier update; returns whether the candidate joined."""
        if self.dominated(candidate, codes, key):
            return False
        self.insert(candidate, codes)
        return True

    def restore_generation_order(self) -> None:
        """Sort members back into generation order (reordered reductions).

        A fine-to-coarse reduction admits members out of stream order; the
        serial baseline lists survivors in generation order, so reordered
        runs sort once at the end.  Members without a recorded generation
        (directly ``merge``-d ones) keep their relative position at the
        front.
        """
        self.members.sort(key=lambda member: self._generation.get(id(member), -1))

    def tracked_entries(self) -> int:
        """Entry count of the frontier's growable structures — the memory
        budget's tracked-size probe (see :meth:`RunBudget.register_probe`).

        Spill-backed structures report their *resident* entries only:
        spilled segments cost disk, not memory, and counting them would
        make the tracked-size estimate trip ceilings the process never
        approaches — the whole point of spilling.
        """
        class_status = self._class_status
        index = self._refinement_index
        resident = getattr(class_status, "resident_len", None)
        class_entries = resident() if resident is not None else len(class_status)
        resident = getattr(index, "resident_len", None)
        index_entries = resident() if resident is not None else len(index)
        return (
            len(self.members)
            + len(self._dominated_keys)
            + len(self._undominated_keys)
            + class_entries
            + index_entries
        )

    def spill_counters(self) -> tuple[int, int, int]:
        """``(writes, loads, load_failures)`` across both spill tiers.

        All zeros when the frontier runs unspilled — the driver harvests
        these into ``PipelineStats`` unconditionally.
        """
        writes = loads = failures = 0
        for tier in (self._class_status, self._refinement_index):
            writes += getattr(tier, "spills", 0)
            loads += getattr(tier, "loads", 0)
            failures += getattr(tier, "load_failures", 0)
        return writes, loads, failures

    def snapshot(self) -> list[tuple]:
        """The frontier's resumable state, picklable.

        Members in admission order, each with its partition codes and
        generation stamp.  The perf-only structures (dominance memo,
        class-status memo, refinement index beyond admitted members, kernel
        tries) are deliberately *not* captured: every verdict they
        short-circuit is reproduced identically by the full scan they
        replace, so a restore that drops them changes counters, never the
        frontier.
        """
        return [
            (
                encode_tableau(member),
                self._codes.get(id(member)),
                self._generation.get(id(member)),
            )
            for member in self.members
        ]

    def restore(self, snapshot: Iterable[tuple]) -> None:
        """Rebuild members (plus codes/generations) from :meth:`snapshot`.

        Only valid on an empty frontier.  Admitted members are re-seeded
        into the refinement index (ordered reductions record them there on
        admission), so resumed runs keep the index's positive fast path for
        everything already admitted.
        """
        if self.members:
            raise ValueError("restore() needs an empty frontier")
        for encoded, codes, generation in snapshot:
            member = decode_tableau(encoded)
            self.members.append(member)
            self._scan.append(member)
            if codes is not None:
                self._codes[id(member)] = codes
            if generation is not None:
                self._generation[id(member)] = generation
            self._record_refinement(codes, member)

    def kernel_exports(self) -> list[tuple[tuple[int, ...], ...] | None]:
        """Per-member kernel indexes as plain code tuples, members order.

        The shard-result counterpart of :meth:`snapshot`: each entry is
        the member's built kernel trie flattened to a tuple of partition
        codes (``None`` when no trie was built or the hom scan capped
        out).  Plain nested tuples of ints are cheaply picklable, so shard
        workers ship them with their frontiers and :meth:`merge` rebuilds
        the tries coordinator-side — the reverse queries the worker
        already paid to index are never re-answered by the driver's
        engine.  Only *already-built* tries are exported; exporting never
        forces the hom enumeration.
        """
        exports: list[tuple[tuple[int, ...], ...] | None] = []
        for member in self.members:
            cached = self._kernel_tries.get(id(member))
            if cached is None or cached[1] is None:
                exports.append(None)
            else:
                exports.append(
                    tuple(prefix for prefix, _ in cached[1].codes())
                )
        return exports

    def merge(
        self,
        members: Iterable[Tableau],
        codes: Iterable[tuple[int, ...] | None] | None = None,
        kernel_tries: Iterable | None = None,
    ) -> "Frontier":
        """Fold another frontier (or member list) into this one.

        Each incoming member is keyed by its engine canonical form (under
        an ``("iso", …)`` namespace disjoint from the integer-form
        :func:`dominance_key` space), so the shared dominance memo
        short-circuits repeats before any ``hom_le``: shard merges
        routinely present members isomorphic to ones an earlier merge
        already resolved — per-shard dedup state cannot see across shards —
        and a memoized "dominated" verdict now answers them with no scan.
        Canonical keys for the batch are requested together through
        :meth:`~repro.homomorphism.engine.HomEngine.canonical_key_many`.
        Merging an empty frontier is a no-op, and re-merging a shard's
        members is absorbed by the same memo — the idempotence the
        fabric's at-least-once re-dispatch relies on.

        ``codes`` optionally carries each member's partition codes over the
        *shared base element order* (shard workers return them with their
        frontiers).  They feed the same refinement index the fine-to-coarse
        reducer uses — the index's soundness needs only that the frontier
        descends, not any admission order: an incoming member refined by a
        recorded dominated-or-admitted partition is dominated with no scan
        and no search, so cross-shard repeats and coarsenings resolve in
        one trie walk.  Admitted members are recorded in turn (dominated
        ones are not — ``add`` surfaces no repair witness, and merged
        members carry no generation, so only admissions have a sound
        witness to store).

        ``kernel_tries`` optionally carries each member's
        :meth:`kernel_exports` entry.  A member arriving with one has its
        trie rebuilt and used to *decide the dominance scan outright*
        whenever every current member has codes: ``existing → incoming``
        holds iff the existing member's partition refines some hom kernel
        of the incoming one, so one trie walk per current member replaces
        the engine scan, exactly (the trie is only shipped when the hom
        enumeration completed).  Undominated members insert directly with
        ``use_kernel_tries=True`` so their eviction queries go through the
        tries seeded by earlier merges; admitted members' tries are seeded
        for the merges after them.
        """
        members = list(members)
        code_list: list = list(codes) if codes is not None else [None] * len(
            members
        )
        trie_list: list = (
            list(kernel_tries)
            if kernel_tries is not None
            else [None] * len(members)
        )
        keys = self._engine.canonical_key_many(members)
        for member, member_codes, kernel_codes, canonical in zip(
            members, code_list, trie_list, keys
        ):
            key = ("iso", canonical) if canonical is not None else None
            if member_codes is not None:
                hit, _ = self._refinement_index.find_refinement(member_codes)
                if hit:
                    self._stats.dominance_memo_hits += 1
                    self._stats.dominated_without_search += 1
                    if key is not None:
                        self._dominated_keys.add(key)
                    continue
            trie: RefinementTrie | None = None
            if kernel_codes is not None:
                trie = RefinementTrie()
                for entry in kernel_codes:
                    trie.add(tuple(entry))
            admitted = False
            if trie is None:
                admitted = self.add(member, member_codes, key=key)
            else:
                cached = self.cached_dominance(key)
                decided: bool | None = None
                if cached is None:
                    member_code_map = self._codes
                    if all(
                        id(existing) in member_code_map
                        for existing in self.members
                    ):
                        decided = any(
                            trie.find_coarsening(
                                member_code_map[id(existing)]
                            )[0]
                            for existing in self.members
                        )
                        self._stats.kernel_trie_merge_hits += 1
                if cached is True or decided is True:
                    if decided is True:
                        self._stats.dominated_without_search += 1
                        if key is not None:
                            self._dominated_keys.add(key)
                elif cached is False or decided is False:
                    self.insert(member, member_codes, use_kernel_tries=True)
                    admitted = True
                else:
                    admitted = self.add(member, member_codes, key=key)
            if admitted:
                if member_codes is not None:
                    self._refinement_index.add(member_codes, member)
                if trie is not None:
                    self._kernel_tries[id(member)] = (member, trie)
        return self


# ----------------------------------------------------------------- the driver


def _base_orbit_data(
    tableau: Tableau, stats: PipelineStats
) -> list[list[int]] | None:
    """Derive the base tableau's automorphism/orbit data, counted.

    The one place the pipeline runs the endomorphism scan behind stage 1's
    orbit pruning: the driver calls it once per run and threads the result
    through every candidate source — including shard task contexts, so pool
    workers never re-derive it (``stats.orbit_derivations`` pins that).
    """
    stats.orbit_derivations += 1
    return base_automorphism_inverses(tableau)


def _candidate_source(
    tableau: Tableau,
    cls: QueryClass,
    *,
    max_extra_atoms: int,
    allow_fresh: bool,
    cost_model: DedupCostModel | None,
    shard: tuple[int, int] | None = None,
    automorphisms: list[list[int]] | None = None,
    generation: str = "adaptive",
    cursor: int = 0,
) -> Iterator:
    """Stage 1: the class-appropriate candidate stream.

    Graph classes — and hypergraph classes with the extension space switched
    off — consume the lazy integer-form quotient stream; extension-space
    runs consume the integer-form extension stream (extension atoms over
    block + fresh ids, orbit-pruned per quotient family) — every class the
    pipeline supports now shares the same lazy fast path.  ``automorphisms``
    is the precomputed base orbit data from :func:`_base_orbit_data`;
    ``generation`` is the stage-1 regime (see
    :func:`_resolve_generation_mode`); ``cursor`` skips the first emitted
    candidates (checkpoint resume on insertion-order runs — plain quotient
    streams only).
    """
    if getattr(cls, "kind", None) == "graph" or max_extra_atoms <= 0:
        return iter_quotient_candidates(
            tableau,
            cost_model=cost_model,
            shard=shard,
            automorphisms=automorphisms,
            generation=generation,
            cursor=cursor,
        )
    if cursor:
        raise ValueError(
            "resume cursors are only supported on plain quotient streams"
        )
    return iter_extended_candidates(
        tableau,
        max_extra_atoms=max_extra_atoms,
        allow_fresh=allow_fresh,
        cost_model=cost_model,
        shard=shard,
        automorphisms=automorphisms,
        generation=generation,
    )


def _order_cost_estimates(
    stats: PipelineStats,
) -> tuple[float, float] | None:
    """Estimated per-candidate cost of the two stage orders.

    From measured means: check-first pays a (memo-discounted) check always
    and a dominance resolution for members; frontier-first pays a dominance
    resolution always and a check for undominated candidates.  Checking
    first is right when checks are cheap or the memo absorbs them; testing
    dominance first is right when checks are expensive and dominance
    resolves cheaply (costly hypergraph classes, and fine-to-coarse runs
    where the refinement index answers most candidates).  Both sides are
    *amortized*: the check cost over memo hits (``fresh_rate``), the
    dominance cost over memo and refinement-index hits — a hit costs ~0
    seconds but resolves a candidate, so the marginal per-candidate
    dominance cost is ``dominance_seconds`` over all resolutions, and the
    dominated rate counts hit verdicts too (``dominated_without_search``).
    Returns ``(check_first, frontier_first)`` seconds, or ``None`` while
    either side lacks samples.
    """
    dominance_resolutions = stats.dominance_tests + stats.dominance_memo_hits
    if (
        stats.checks_run < _ORDER_MIN_SAMPLES
        or dominance_resolutions < _ORDER_MIN_SAMPLES
    ):
        return None
    mean_check = stats.check_seconds / stats.checks_run
    mean_dominance = stats.dominance_seconds / dominance_resolutions
    checked = stats.checks_run + stats.check_memo_hits
    fresh_rate = stats.checks_run / checked if checked else 1.0
    member_rate = stats.members / max(stats.generated, 1)
    dominated_rate = (
        stats.dominated + stats.dominated_without_search
    ) / dominance_resolutions
    check_first = fresh_rate * mean_check + member_rate * mean_dominance
    frontier_first = mean_dominance + (1.0 - dominated_rate) * fresh_rate * mean_check
    return check_first, frontier_first


def _frontier_first_pays(stats: PipelineStats) -> bool | None:
    """Whether dominance-first is decisively cheaper (``None``: no data)."""
    estimates = _order_cost_estimates(stats)
    if estimates is None:
        return None
    check_first, frontier_first = estimates
    return frontier_first < _ORDER_SWITCH_MARGIN * check_first


class _OrderController:
    """Windowed stage-ordering decisions (wraps :func:`_frontier_first_pays`).

    Cumulative means lag the run's current regime — the memo's fresh-check
    rate drops as it warms, so a decision taken on run-wide averages keeps
    overestimating check cost and flaps.  The controller re-evaluates every
    :data:`_ORDER_REVIEW_EVERY` candidates on the *delta* since the last
    review, so the verdict tracks the marginal (current) cost of each order.
    """

    __slots__ = ("stats", "frontier_first", "_review_at", "_baseline", "_pending")

    def __init__(self, stats: PipelineStats) -> None:
        self.stats = stats
        self.frontier_first = False
        self._review_at = _ORDER_REVIEW_EVERY
        self._baseline = PipelineStats()
        self._pending: bool | None = None

    def update(self) -> None:
        stats = self.stats
        if stats.generated < self._review_at:
            return
        self._review_at = stats.generated + _ORDER_REVIEW_EVERY
        # Delta over the numeric counters only — the exhaustion flag/reason
        # are not rates and do not subtract.
        window = PipelineStats(
            **{
                name: getattr(stats, name) - getattr(self._baseline, name)
                for name in PipelineStats.numeric_fields()
            }
        )
        self._baseline = PipelineStats(**stats.as_dict())
        estimates = _order_cost_estimates(window)
        if estimates is None:
            self._pending = None
            return
        check_first, frontier_first = estimates
        # Symmetric hysteresis: the *other* order must look decisively
        # (1/margin-fold) cheaper than the current one before switching, in
        # either direction — borderline ratios keep the current order.
        if self.frontier_first:
            verdict = not check_first < _ORDER_SWITCH_MARGIN * frontier_first
        else:
            verdict = frontier_first < _ORDER_SWITCH_MARGIN * check_first
        if verdict == self.frontier_first:
            self._pending = None
            return
        # Two consecutive windows must agree before the order flips — one
        # borderline window (memo warming, frontier growth) must not flap
        # the pipeline between regimes.
        if self._pending == verdict:
            self.frontier_first = verdict
            self._pending = None
            stats.order_switches += 1
        else:
            self._pending = verdict


def _deferred_class_key(candidate, stats: PipelineStats):
    """The ``late_key`` hook for :meth:`Frontier.resolve`.

    Returns a zero-argument callable producing the candidate's fact-level
    canonical key: the stage-1 key when the enumerator computed one, else —
    for raw/orbit candidates — the same :func:`canonical_key_indexed` form
    computed on demand (counted in ``stats.late_canonizations``).  ``None``
    for candidates without integer facts (the materialized fallback path),
    whose repeats are absorbed by the engine-level memos instead.
    """

    def compute():
        key = getattr(candidate, "key", None)
        if key is None:
            facts = candidate.facts()
            if facts is None:
                return None
            stats.late_canonizations += 1
            key = canonical_key_indexed(
                candidate.block_count, list(facts), candidate.distinguished
            )
        return key

    return compute


#: Fine-to-coarse member-rate probe: the first buffered bucket with at
#: least this many candidates is class-checked up front (memoized — the
#: reduction replays the verdicts as memo hits) to estimate the stream's
#: member rate before any reduction work is ordered.
_PROBE_MIN_SAMPLE = 8
#: At or below this member rate the raw stream cannot win: nearly every
#: duplicate is a non-member, misses the refinement index, and is absorbed
#: by the class-status memo at one *late* canonization each — so raw pays
#: canonical's keying cost plus per-duplicate reducer overhead.  The probe
#: then canonically deduplicates the buffer up front instead.
_PROBE_MEMBER_RATE = 0.05


def _probe_generation_regime(
    buckets: list[list],
    tester: "MembershipTester",
    stats: PipelineStats,
    cost_model: DedupCostModel | None,
) -> list[list]:
    """Pick the generation regime for a buffered fine-to-coarse stream.

    The cost model steers stage 1 blind — it only sees duplicate rates and
    per-candidate costs, never the member rate, so on ultra-member-light
    frontiers (~1% members, e.g. C9/TW1) it happily settles on the raw
    stream and pays ~5% over canonical in late canonizations.  Once the
    stream is buffered the member rate is one memoized check pass away:
    class-check the first sizable bucket (finest candidates, reduced first
    anyway), and if at most :data:`_PROBE_MEMBER_RATE` of it are members,
    re-key and deduplicate the whole buffer by fact-level canonical form
    before the reduction starts — exactly what ``generation="canonical"``
    would have produced, so the frontier is bit-identical either way (the
    first occurrence of each form is kept, and duplicates, being
    later-generated, can never win a representative repair).
    """
    sample = next(
        (bucket for bucket in buckets if len(bucket) >= _PROBE_MIN_SAMPLE),
        None,
    )
    if sample is None:
        return buckets
    stats.generation_probe_candidates += len(sample)
    members = sum(1 for candidate in sample if tester(candidate))
    if members > _PROBE_MEMBER_RATE * len(sample):
        return buckets
    seen: set = set()
    rekeyed = False
    deduped: list[list] = []
    for bucket in buckets:
        kept = []
        for candidate in bucket:
            key = candidate.key
            if key is None:
                facts = candidate.facts()
                if facts is not None:
                    started = time.perf_counter()
                    key = canonical_key_indexed(
                        candidate.block_count,
                        list(facts),
                        candidate.distinguished,
                    )
                    if cost_model is not None:
                        cost_model.record_canonization(
                            time.perf_counter() - started
                        )
                    candidate.key = key
                    rekeyed = True
            if key is not None:
                if key in seen:
                    continue
                seen.add(key)
            kept.append(candidate)
        deduped.append(kept)
    if rekeyed:
        stats.generation_probe_switches += 1
    return deduped


#: Distinguishes spill scratch directories across the Frontiers of one
#: process (the resident server reuses a process for many runs, and one
#: shard worker runs several shards) — pid alone is not unique enough.
_SPILL_SEQUENCE = count()


def _spill_config(
    spill_dir: str | os.PathLike | None,
    budget: RunBudget | None = None,
) -> SpillConfig | None:
    """A run-private :class:`SpillConfig` under ``spill_dir``.

    Every spilling frontier gets its own scratch subdirectory
    (pid + a process-wide sequence number), so concurrent shard workers
    sharing one ``spill_dir`` — and sequential runs reusing one process —
    never read each other's stale segments.  ``None`` passes through:
    spilling stays off.

    When a ``budget`` with a memory ceiling is armed, the resident
    allowances are sized from it: the class-status hot tier gets one
    eighth of the ceiling at the budget's per-entry estimate, the trie a
    1/64 slice of that — so a tighter ``--memory-limit`` directly tightens
    how much frontier state may stay resident before spilling to disk.
    """
    if spill_dir is None:
        return None
    kwargs: dict = {}
    if budget is not None and budget.memory_limit is not None:
        from repro.runtime.budget import TRACKED_ENTRY_BYTES

        map_resident = max(
            1024, int(budget.memory_limit) // TRACKED_ENTRY_BYTES // 8
        )
        kwargs = {
            "map_resident": map_resident,
            "trie_resident": max(16, map_resident // 64),
        }
    return SpillConfig(
        os.path.join(
            os.fspath(spill_dir),
            f"run-{os.getpid()}-{next(_SPILL_SEQUENCE)}",
        ),
        **kwargs,
    )


def _harvest_spill(frontier: Frontier, stats: PipelineStats) -> None:
    """Fold the frontier's spill-tier counters into the run's stats."""
    writes, loads, failures = frontier.spill_counters()
    stats.spill_writes += writes
    stats.spill_loads += loads
    stats.spill_load_failures += failures
    stats.peak_tracked_entries = max(
        stats.peak_tracked_entries, frontier.tracked_entries()
    )


def _budget_gate(candidates, budget: RunBudget, stats: PipelineStats):
    """Stop drawing stage-1 candidates once the budget trips.

    The earliest possible stop: nothing downstream of the gate sees another
    candidate, so in-flight pool batches drain naturally (the batcher's
    intake just ends) and buffering reducers stop growing their buffer.
    The candidate cap is enforced against ``stats.generated``, which the
    consumer increments — exact on lazy (one-in-one-out) streams; during a
    fine-to-coarse buffering phase only the deadline and the memory ceiling
    can truncate the buffer, and the cap binds in the reduction loop
    instead.
    """
    for candidate in candidates:
        if budget.exceeded(stats) is not None:
            return
        yield candidate


def _note_exhaustion(budget: RunBudget | None, stats: PipelineStats) -> None:
    """Mark the run exhausted if its budget tripped (idempotent)."""
    if budget is not None and budget.reason is not None:
        stats.exhausted = True
        if not stats.exhaustion_reason:
            stats.exhaustion_reason = budget.reason


def _harvest_executor(executor, stats: PipelineStats) -> list[BatchFault]:
    """Fold the executor's fault bookkeeping into the run's stats."""
    stats.pool_respawns += getattr(executor, "respawns", 0)
    stats.batch_timeouts += getattr(executor, "timeouts", 0)
    if getattr(executor, "serial_fallback", False):
        stats.serial_fallbacks += 1
    return list(getattr(executor, "faults", ()))


class _CheckpointSession:
    """One run's binding of a checkpoint manager to pipeline state.

    Tracks the *cursor* — how many stage-3 candidates (in reduction order)
    have been fully processed — and snapshots ``(cursor, frontier, stats)``
    at the manager's cadence.  On resume the frontier and stats are
    restored and the first ``cursor`` candidates are skipped: for
    insertion-order runs at the stream source (a cheap skip inside
    :func:`~repro.core.quotients.iter_quotient_candidates`), for
    fine-to-coarse runs after the coarseness reordering (the full stream is
    regenerated — generation is cheap next to checks — so the reordering
    and the generation stamps are reproduced exactly).
    """

    __slots__ = ("manager", "run_key", "stats", "cursor")

    def __init__(
        self, manager: CheckpointManager, run_key: tuple, stats: PipelineStats
    ) -> None:
        self.manager = manager
        self.run_key = run_key
        self.stats = stats
        self.cursor = 0

    def load(self) -> dict | None:
        return self.manager.load(self.run_key)

    def _payload(self, frontier: Frontier) -> dict:
        return {
            "cursor": self.cursor,
            "frontier": frontier.snapshot(),
            "stats": self.stats.as_dict(),
        }

    def restore(self, payload: dict, frontier: Frontier) -> None:
        self.cursor = payload["cursor"]
        frontier.restore(payload["frontier"])
        for name, value in payload["stats"].items():
            if name in PipelineStats.__dataclass_fields__:
                setattr(self.stats, name, value)
        # Exhaustion is a property of the run that *saved* the snapshot
        # (e.g. a tripped budget); the resumed run decides its own.
        self.stats.exhausted = False
        self.stats.exhaustion_reason = ""
        self.stats.resumed_candidates = self.cursor

    def after_candidate(self, frontier: Frontier) -> None:
        self.cursor += 1
        if self.manager.maybe_save(
            self.run_key, lambda: self._payload(frontier)
        ):
            self.stats.checkpoints_written += 1

    def save_now(self, frontier: Frontier) -> None:
        self.manager.save(self.run_key, self._payload(frontier))
        self.stats.checkpoints_written += 1

    def finalize(self) -> None:
        self.manager.finalize()


def _mark_family_dominated(candidate, parent) -> None:
    """Record that the frontier now holds a member mapping into ``candidate``.

    Only meaningful for quotient candidates (potential family parents,
    ``parent is None``): once a quotient is found dominated, or is a member
    offered to the frontier (then a member maps into it afterwards — itself
    if admitted, its dominator or evictor otherwise, since the →-minimal
    frontier only descends), its whole extension family is dominated.  The
    flag feeds back into :func:`~repro.core.quotients.
    iter_extended_candidates`, which skips the family at the source.
    Candidates without the feedback slot (plain tableau adapters) are
    ignored.
    """
    if parent is None and getattr(candidate, "extensions_dominated", None) is False:
        candidate.extensions_dominated = True


def _reduce_inline(
    candidates: Iterable[Tableau],
    cls: QueryClass,
    stats: PipelineStats,
    cost_model: DedupCostModel | None,
    *,
    engine: HomEngine | None = None,
    order: str = "insertion",
    budget: RunBudget | None = None,
    checkpoint: _CheckpointSession | None = None,
    resume: dict | None = None,
    spill: SpillConfig | None = None,
) -> Frontier:
    """Stages 2+3 in one process, with cost-modeled stage ordering.

    Starts check-first (the historical order, and the right one while the
    membership memo is hot); every :data:`_ORDER_REVIEW_EVERY` candidates
    the measured stage costs decide whether dominance testing should move in
    front of the check.  Either order yields the same frontier — a dominated
    candidate can never join nor evict, so filtering it before or after the
    membership test only changes which work is spent, not the result.

    ``order="fine_to_coarse"`` replays the candidate stream finest-first
    (:func:`~repro.core.quotients.coarseness_ordered`): a quotient is then
    reduced before any coarsening of it, so most dominance verdicts resolve
    through the coarsening fast path with zero engine searches, and
    representative repair plus a final generation-order sort keep the
    result **bit-identical** to the insertion-order reduction.  Only sound
    for streams without generator feedback (plain quotient streams) — the
    stream is buffered in full, so ``extensions_dominated`` flags could
    never reach the enumerator, and the consume-time family shortcut is
    disabled because under reordering the flagging member may be
    later-generated than the child it would skip.
    """
    tester = MembershipTester(cls, stats, cost_model)
    reorder = order == "fine_to_coarse"
    frontier = Frontier(engine=engine, stats=stats, ordered=reorder, spill=spill)
    controller = _OrderController(stats)
    if budget is not None:
        budget.start()
        budget.register_probe(frontier.tracked_entries)
        budget.register_probe(lambda: len(tester._memo))
        if reorder and checkpoint is None:
            # Fine-to-coarse buffers the whole stream before reducing, so
            # the deadline/memory stop must reach stage 1 directly.  Under
            # checkpointing the gate stays off: a truncated buffer would
            # reorder differently from the full stream, breaking the
            # cursor's alignment on resume — budget stops then align to
            # stage-3 candidate boundaries instead.
            candidates = _budget_gate(candidates, budget, stats)
    if resume is not None and checkpoint is not None:
        checkpoint.restore(resume, frontier)
    if reorder:
        buckets = coarseness_buckets(candidates)
        if checkpoint is None:
            # Dedup shifts stream positions, which would break the
            # checkpoint cursor's alignment on resume — the probe stays
            # off under checkpointing (like the stage-1 budget gate).
            buckets = _probe_generation_regime(
                buckets, tester, stats, cost_model
            )
        candidates = chain.from_iterable(buckets)
        if checkpoint is not None and checkpoint.cursor:
            candidates = islice(candidates, checkpoint.cursor, None)
    for candidate in candidates:
        if budget is not None and budget.exceeded(stats) is not None:
            break
        stats.generated += 1
        parent = getattr(candidate, "parent", None)
        if parent is not None and parent.extensions_dominated and not reorder:
            # The parent quotient embeds into this extended candidate, and
            # a frontier member maps into the parent — so the candidate is
            # dominated whatever its class verdict: skip check and search.
            # (The source skips whole families on the same flag; this
            # catches children generated before the flag was set.)
            stats.extension_short_circuits += 1
            continue
        key = dominance_key(candidate)
        generation = getattr(candidate, "generation", None)
        calls_before = stats.hom_le_calls
        checks_before = stats.checks_run
        status = frontier.resolve(
            candidate,
            key=key,
            generation=generation,
            membership=lambda: tester(candidate),
            membership_first=not controller.frontier_first,
            late_key=_deferred_class_key(candidate, stats),
        )
        if cost_model is not None:
            # Generation-regime feedback: a candidate settled with zero
            # engine searches and zero fresh checks was absorbed for free
            # by the memos/index — the rate at which the reducer soaks up
            # whatever stage 1 declines to deduplicate.
            cost_model.record_absorption(
                stats.hom_le_calls == calls_before
                and stats.checks_run == checks_before
            )
        if status != "rejected":
            _mark_family_dominated(candidate, parent)
            if reorder and stats.hom_le_calls == calls_before:
                stats.admissions_resolved_by_order += 1
        controller.update()
        if checkpoint is not None:
            checkpoint.after_candidate(frontier)
    _note_exhaustion(budget, stats)
    _harvest_spill(frontier, stats)
    # The same quantity the budget's tracked-size probe watches: frontier
    # state plus the membership memo.  Recorded as a per-process peak
    # (max-absorbed across shards), it is the footprint a per-worker
    # memory ceiling binds on — the number that must *shrink* as workers
    # are added for a fixed ceiling to admit larger instances.
    stats.peak_tracked_entries = max(
        stats.peak_tracked_entries,
        frontier.tracked_entries() + len(tester._memo),
    )
    if checkpoint is not None:
        if stats.exhausted:
            # A budget stop keeps the snapshot (and refreshes it): rerun
            # with a bigger budget and the run resumes where it stopped.
            checkpoint.save_now(frontier)
        else:
            checkpoint.finalize()
    if reorder:
        frontier.restore_generation_order()
    return frontier


#: Per-worker shard context: ``(base_data, cls, max_extra_atoms,
#: allow_fresh, automorphisms, order, generation, budget_spec,
#: spill_dir)``, installed once per worker process by the executor
#: initializer (and inline for a serial executor).  Shipping the base
#: tableau and its orbit data with the *context* instead of every task
#: payload serializes them once per worker and spares each worker the
#: startup endomorphism scan.
_SHARD_CONTEXT: tuple | None = None


def _install_shard_context(context: tuple) -> None:
    global _SHARD_CONTEXT
    _SHARD_CONTEXT = context


def run_shard(
    context: tuple, shard: tuple[int, int]
) -> tuple[tuple[tuple, ...], dict]:
    """The full pipeline loop on one shard slice, reentrant.

    The shared body behind the pool task (strategy ``"shards"``) and the
    fabric worker's ``shard`` op (:mod:`repro.fabric.worker`) — the pool
    path installs ``context`` once per process, the fabric path threads it
    per call, both run the same code.  Shard workers share the driver's
    admission order and generation regime (each worker's cost model
    controls its own slice under ``"model"``): plain quotient slices are
    reduced fine-to-coarse (coarseness-ordered shard iteration — the
    buffered slice is one shard, not the whole stream), extension slices
    in generation order.  Each returned member ships as ``(encoded
    tableau, partition codes, kernel codes)`` — codes over the shared
    base element order (``None`` off the integer path), kernel codes the
    member's built kernel index flattened by
    :meth:`Frontier.kernel_exports` (``None`` when never built) — so the
    driver's merge can route cross-shard admissions through the
    refinement index and decide dominance through the shipped kernels
    instead of re-answering reverse queries per shard.
    """
    (
        base_data,
        cls,
        max_extra_atoms,
        allow_fresh,
        automorphisms,
        order,
        generation,
        budget_spec,
        spill_dir,
    ) = context
    base = decode_tableau(base_data)
    stats = PipelineStats()
    cost_model = DedupCostModel()
    # Budgets apply per shard: each worker rebuilds the spec (the remaining
    # deadline and the caps are frozen at dispatch time), so a shard that
    # exhausts its slice of the budget returns its partial frontier and the
    # driver's absorb ORs the ``exhausted`` flags together.
    budget = RunBudget(**budget_spec) if budget_spec is not None else None
    candidates = _candidate_source(
        base,
        cls,
        max_extra_atoms=max_extra_atoms,
        allow_fresh=allow_fresh,
        cost_model=cost_model,
        shard=shard,
        automorphisms=automorphisms,
        generation=generation,
    )
    frontier = _reduce_inline(
        candidates,
        cls,
        stats,
        cost_model,
        order=order,
        budget=budget,
        spill=_spill_config(spill_dir, budget),
    )
    stats.generation_switches += cost_model.mode_switches
    kernels = frontier.kernel_exports()
    return (
        tuple(
            (
                encode_tableau(member),
                frontier._codes.get(id(member)),
                kernel,
            )
            for member, kernel in zip(frontier.members, kernels)
        ),
        stats.as_dict(),
    )


def _shard_task(shard: tuple[int, int]) -> tuple[tuple[tuple, ...], dict]:
    """Pool task (strategy ``"shards"``): :func:`run_shard` on the
    process-installed context."""
    return run_shard(_SHARD_CONTEXT, shard)


#: CLI/config spellings of the admission orders (the CLI exposes
#: ``generation`` — stream generation order — for what the internals call
#: insertion order, and dashes where the internals use underscores).
_ADMISSION_ORDER_ALIASES = {
    "generation": "insertion",
    "fine-to-coarse": "fine_to_coarse",
}


def _resolve_admission_order(
    admission_order: str, cls: QueryClass, max_extra_atoms: int
) -> str:
    """The effective stage-3 admission order for a pipeline run.

    ``"auto"`` picks fine-to-coarse exactly for *plain quotient* streams
    (graph classes, and hypergraph classes with the extension space off) —
    the streams without generator feedback, where buffering is sound.
    Extension-space runs stay in generation order: their reducer feeds
    dominance verdicts back into the (lazy) enumerator, which a buffered
    replay would silence.  The CLI spellings ``"generation"`` and
    ``"fine-to-coarse"`` are accepted as aliases.
    """
    admission_order = _ADMISSION_ORDER_ALIASES.get(
        admission_order, admission_order
    )
    if admission_order not in {"auto", "fine_to_coarse", "insertion"}:
        raise ValueError(f"unknown admission order {admission_order!r}")
    if admission_order != "auto":
        return admission_order
    plain_stream = getattr(cls, "kind", None) == "graph" or max_extra_atoms <= 0
    return "fine_to_coarse" if plain_stream else "insertion"


def _resolve_generation_mode(
    generation: str, cls: QueryClass, max_extra_atoms: int, workers: int,
    parallel: str, order: str,
) -> str:
    """The effective stage-1 generation regime for a pipeline run.

    ``"auto"`` resolves by the run's structure:

    * Plain quotient streams reduced **fine-to-coarse** (the default for
      graph classes and extension-free hypergraph runs, serially and in
      every shard worker) go ``"orbit"`` — the raw replay with
      automorphism-orbit pruning.  Their reduction is *deferred* — the
      stream is buffered in full before any candidate meets the frontier
      — so stage-1 dedup can never be informed by downstream feedback,
      and canonical keying is provably not worth its price: the reducer
      defers canonicalization to the point of need (``late_key``), keying
      a candidate only after the dominance memo, the refinement index,
      and the class-status memo all missed, so the stream pays at most
      the canonizations canonical generation pays, minus every one the
      absorption machinery soaked up first.  The orbit filter stays on
      because it is the opposite trade: on rigid bases (no automorphisms
      — every benchmark workload) it costs literally nothing and the
      regime degenerates to ``"raw"``, while on symmetric bases (cycles:
      ~10x duplication) it prunes the flood with an O(n·aut) integer
      test per candidate, where a pure raw stream would pay a late
      canonization per duplicate.
    * Plain streams reduced in **insertion order** go ``"model"``:
      generation and reduction interleave, so the cost model's windowed
      three-way controller can steer on live canonization cost, duplicate
      rate, and absorption feedback — and flip mid-run.
    * The pooled ``"checks"`` strategy follows the same order split:
      fine-to-coarse pooled runs go ``"orbit"`` too, because the pooled
      reducer now interleaves with the batcher and its dispatch gate
      (:meth:`Frontier.absorbable`) absorbs raw repeats *before* they
      reach the pool — the historical reason for forcing ``"adaptive"``
      here (every undeduplicated candidate became a pool check) no
      longer holds.  Insertion-order pooled runs keep the legacy
      ``"adaptive"`` cutoff: their reducer consumes verdicts eagerly
      with no dispatch gate, so an undeduplicated stream would still
      multiply pool work.
    * Extension-space runs keep ``"adaptive"``: their dedup keyspace is
      shared between quotients and extensions, and the extension side
      canonizes regardless.

    Explicit regimes (``"canonical"``, ``"orbit"``, ``"raw"``,
    ``"adaptive"``, ``"model"``) are forced as given.
    """
    if generation != "auto":
        if generation not in {"adaptive", "model", *GENERATION_MODES}:
            raise ValueError(f"unknown generation mode {generation!r}")
        return generation
    plain_stream = getattr(cls, "kind", None) == "graph" or max_extra_atoms <= 0
    if not plain_stream:
        return "adaptive"
    if order == "fine_to_coarse":
        return "orbit"
    if effective_workers(workers) > 1 and parallel == "checks":
        return "adaptive"
    return "model"


def run_pipeline(
    tableau: Tableau,
    cls: QueryClass,
    *,
    workers: int = 1,
    parallel: str = "checks",
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_extra_atoms: int = 1,
    allow_fresh: bool = True,
    admission_order: str = "auto",
    generation: str = "auto",
    budget: RunBudget | None = None,
    checkpoint: CheckpointManager | str | None = None,
    batch_timeout: float | None = None,
    fabric: Iterable[str] | None = None,
    spill_dir: str | os.PathLike | None = None,
    heartbeat_interval: float = 2.0,
    shard_timeout: float | None = None,
) -> PipelineResult:
    """Run the three-stage pipeline and return the →-minimal frontier.

    ``workers <= 1`` runs everything inline (bit-identical to the historic
    serial algorithm); ``parallel`` picks the scaling strategy for
    ``workers > 1`` — see the module docstring for the two strategies and
    their determinism guarantees.  ``admission_order`` selects stage 3's
    reduction order (:func:`_resolve_admission_order`): ``"auto"`` (the
    default) reduces plain quotient streams fine-to-coarse — bit-identical
    to ``"insertion"``, the historical generation order, via representative
    repair — and extension streams in generation order.  ``generation``
    selects stage 1's dedup regime (:func:`_resolve_generation_mode`):
    ``"auto"`` replays fine-to-coarse plain streams orbit-pruned-raw
    (canonicalization deferred to the reducer's point of need), runs
    insertion-order plain streams under the cost model's windowed
    three-way controller, and keeps pooled/extension runs on the legacy
    adaptive cutoff; forcing ``"canonical"``/``"orbit"``/``"raw"`` pins
    the regime.  Results are invariant — serial and pooled runs
    bit-identical — across all generation regimes: stage-1 dedup only ever
    prunes candidates isomorphic to earlier stream elements, and the
    reducer's representative repair restores the first-generated member of
    each class whatever survives.

    ``budget`` (a :class:`~repro.runtime.budget.RunBudget`) turns the run
    *anytime*: when a budget dimension trips, stage 1 stops producing, any
    in-flight pool batches drain, and the best-so-far frontier is returned
    with ``stats.exhausted`` set — every member still a sound
    C-overapproximation, only minimality/completeness forfeited.  Under
    ``parallel="shards"`` the budget applies per shard (remaining deadline
    and caps frozen at dispatch).  ``checkpoint`` (a
    :class:`~repro.runtime.checkpoint.CheckpointManager` or a path) enables
    periodic snapshot/resume — serial plain-quotient-stream runs only, and
    the timing-dependent generation regimes are forced down to ``"orbit"``
    so the resumed stream is reproduced exactly.  ``batch_timeout`` bounds
    the wait on any one pooled check batch; an expired batch is quarantined
    into ``result.faults`` (its candidates skipped, counted in
    ``stats.quarantined``) instead of killing the run.

    ``fabric`` — a list of worker addresses (``"host:port"`` or a unix
    socket path) — dispatches the shard strategy's slices to *network*
    shard workers (``repro worker``) through the
    :class:`~repro.fabric.coordinator.FabricCoordinator` instead of a
    local process pool: heartbeats and per-shard deadlines
    (``heartbeat_interval``, ``shard_timeout``) detect lost and hung
    workers, lost shards are re-dispatched with capped exponential
    backoff (at-least-once — safe because :meth:`Frontier.merge` is
    idempotent), stragglers are speculatively re-executed on idle
    workers (first result wins, duplicates absorbed), repeatedly-failing
    workers are blacklisted, and when every worker is blacklisted the
    remaining shards run locally — the run completes with a degraded
    fabric rather than failing.  Shard-level faults are threaded into
    ``result.faults`` as :class:`~repro.fabric.coordinator.ShardFault`
    records.  ``fabric`` overrides ``parallel``/``workers``.

    ``spill_dir`` enables the memory-bounded spill policy
    (:mod:`repro.runtime.spill`) on every frontier this run constructs —
    driver, shard workers, and fabric merge alike: the class-status memo
    and the refinement index (the two structures that grow with classes
    *seen*, not frontier size) keep bounded residency with cold entries
    on disk, and the budget's tracked-size probe counts resident entries
    only, so ``exact_limit`` sizes that used to trip a fixed
    ``memory_limit`` on memo growth complete inside it.
    """
    if parallel not in {"checks", "shards"}:
        raise ValueError(f"unknown parallel strategy {parallel!r}")
    order = _resolve_admission_order(admission_order, cls, max_extra_atoms)
    generation = _resolve_generation_mode(
        generation, cls, max_extra_atoms, workers, parallel, order
    )
    checkpoint_manager = (
        CheckpointManager(checkpoint)
        if isinstance(checkpoint, (str, os.PathLike))
        else checkpoint
    )
    if checkpoint_manager is not None:
        if effective_workers(workers) > 1:
            raise ValueError("checkpointing requires a serial run (workers=1)")
        plain_stream = (
            getattr(cls, "kind", None) == "graph" or max_extra_atoms <= 0
        )
        if not plain_stream:
            raise ValueError(
                "checkpointing requires a plain quotient stream (the "
                "extension enumerator's dominance feedback makes its stream "
                "non-resumable); set max_extra_atoms=0"
            )
        if generation in ("adaptive", "model"):
            # Timing-dependent regimes emit different streams run to run;
            # a resume cursor needs the exact original stream, so force the
            # deterministic orbit regime.
            generation = "orbit"
    stats = PipelineStats()
    cost_model = DedupCostModel()
    if budget is not None:
        budget.start()
    automorphisms = _base_orbit_data(tableau, stats)

    fabric_addresses = tuple(fabric) if fabric is not None else ()
    if fabric_addresses or (
        effective_workers(workers) > 1 and parallel == "shards"
    ):
        if fabric_addresses:
            shard_count = len(fabric_addresses) * _SHARDS_PER_WORKER
        else:
            shard_count = effective_workers(workers) * _SHARDS_PER_WORKER
        stats.shards = shard_count
        budget_spec = None
        if budget is not None:
            remaining = budget.remaining_deadline()
            budget_spec = {
                # An already-expired deadline still ships as a (tiny)
                # positive allowance: each shard trips on its first check.
                "deadline": max(remaining, 1e-9) if remaining is not None else None,
                "memory_limit": budget.memory_limit,
                "max_candidates": budget.max_candidates,
                "max_checks": budget.max_checks,
            }
        context = (
            encode_tableau(tableau),
            cls,
            max_extra_atoms,
            allow_fresh,
            automorphisms,
            order,
            generation,
            budget_spec,
            os.fspath(spill_dir) if spill_dir is not None else None,
        )
        shards = [(index, shard_count) for index in range(shard_count)]

        if fabric_addresses:
            from repro.fabric.coordinator import FabricCoordinator

            frontier = Frontier(stats=stats, spill=_spill_config(spill_dir, budget))
            if budget is not None:
                budget.register_probe(frontier.tracked_entries)
            coordinator = FabricCoordinator(
                fabric_addresses,
                context,
                heartbeat_interval=heartbeat_interval,
                shard_timeout=shard_timeout,
                local_runner=run_shard,
            )
            merged: set = set()
            for shard_index, encoded_members, shard_stats in coordinator.run(
                shards
            ):
                if shard_index in merged:
                    # A speculative or re-dispatched duplicate: its stats
                    # would double-count, but its members merge
                    # idempotently — absorbing them is what makes
                    # at-least-once delivery safe.
                    stats.duplicate_results += 1
                else:
                    merged.add(shard_index)
                    stats.absorb(PipelineStats(**shard_stats))
                frontier.merge(
                    [decode_tableau(data) for data, _, _ in encoded_members],
                    [codes for _, codes, _ in encoded_members],
                    [kernel for _, _, kernel in encoded_members],
                )
            stats.shard_retries += coordinator.retries
            stats.speculative_dispatches += coordinator.speculations
            stats.workers_blacklisted += coordinator.blacklisted
            stats.heartbeat_misses += coordinator.heartbeat_misses
            stats.fabric_local_shards += coordinator.local_shards
            _note_exhaustion(budget, stats)
            _harvest_spill(frontier, stats)
            return PipelineResult(
                frontier.members, stats, list(coordinator.faults)
            )

        with make_executor(
            workers, initializer=_install_shard_context, initargs=(context,)
        ) as executor:
            frontier = Frontier(stats=stats, spill=_spill_config(spill_dir, budget))
            for encoded_members, shard_stats in executor.imap(
                _shard_task, shards
            ):
                stats.absorb(PipelineStats(**shard_stats))
                frontier.merge(
                    [decode_tableau(data) for data, _, _ in encoded_members],
                    [codes for _, codes, _ in encoded_members],
                    [kernel for _, _, kernel in encoded_members],
                )
            faults = _harvest_executor(executor, stats)
            _harvest_spill(frontier, stats)
            return PipelineResult(frontier.members, stats, faults)

    session = None
    resume = None
    source_cursor = 0
    if checkpoint_manager is not None:
        run_key = (
            "pipeline-checkpoint-v1",
            encode_tableau(tableau),
            cls.name,
            max_extra_atoms,
            allow_fresh,
            order,
            generation,
        )
        session = _CheckpointSession(checkpoint_manager, run_key, stats)
        resume = session.load()
        if resume is not None and order == "insertion":
            source_cursor = resume["cursor"]

    with make_executor(workers, batch_timeout=batch_timeout) as executor:
        candidates = _candidate_source(
            tableau,
            cls,
            max_extra_atoms=max_extra_atoms,
            allow_fresh=allow_fresh,
            cost_model=cost_model,
            automorphisms=automorphisms,
            generation=generation,
            cursor=source_cursor,
        )
        if isinstance(executor, SerialExecutor):
            frontier = _reduce_inline(
                candidates,
                cls,
                stats,
                cost_model,
                order=order,
                budget=budget,
                checkpoint=session,
                resume=resume,
                spill=_spill_config(spill_dir, budget),
            )
            stats.generation_switches += cost_model.mode_switches
            return PipelineResult(frontier.members, stats)

        # The pooled "checks" strategy is check-first by construction: the
        # pool exists to make membership checks cheap, and dispatching them
        # eagerly is what overlaps stage 2 with stages 1 and 3.  The
        # cost-modeled check-vs-dominance ordering applies to the inline
        # stages (serial runs and shard workers), where both orders execute
        # in the same process.
        frontier = Frontier(
            stats=stats,
            ordered=order == "fine_to_coarse",
            spill=_spill_config(spill_dir, budget),
        )
        if budget is not None:
            budget.register_probe(frontier.tracked_entries)
            # A tripped budget simply ends the batcher's intake; the
            # batches already in flight drain through the executor's
            # bounded window — at most ``inflight`` batch waits, so the
            # drain is bounded by the in-flight work, not the stream.
            candidates = _budget_gate(candidates, budget, stats)
        if order == "fine_to_coarse":
            # Plain quotient streams: buffer the *raw* stream, replay it
            # fine-to-coarse through the batcher, and reduce as verdicts
            # stream back.  Checking in reduction order is what arms the
            # batcher's absorption gate (:meth:`Frontier.absorbable`):
            # the reducer's memo structures grow while later candidates
            # are still queuing for dispatch, so raw/orbit repeats and
            # coarsenings the frontier already settles are emitted with
            # the :data:`ABSORBED` sentinel and never cost a pool
            # round-trip — which is why pooled fine-to-coarse runs can
            # afford the raw orbit regime (see
            # :func:`_resolve_generation_mode`).  Gate decisions are
            # monotone, so the frontier stays exactly the serial
            # fine-to-coarse one (repair plus the final generation-order
            # sort keep it bit-identical to insertion order) for any
            # worker count and any gate timing; absorbed candidates
            # resolve with a driver-side membership fallback, consulted
            # only if a repair needs it.  On a budget stop the batcher's
            # intake ends and the in-flight window drains — every paid
            # check still reaches the frontier.
            buffered = list(candidates)
            ordered_stream: Iterable = coarseness_ordered(buffered)
            if budget is not None:
                ordered_stream = _budget_gate(ordered_stream, budget, stats)
            tester = MembershipTester(cls, stats, cost_model)
            checked = _iter_membership_candidates(
                ordered_stream,
                cls,
                executor,
                batch_size=batch_size,
                stats=stats,
                cost_model=cost_model,
                absorb=frontier.absorbable,
            )
            for candidate, is_member in checked:
                if is_member is ABSORBED:
                    membership = lambda c=candidate: tester(c)  # noqa: E731
                elif not is_member:
                    continue
                else:
                    membership = None
                calls_before = stats.hom_le_calls
                frontier.resolve(
                    candidate,
                    key=dominance_key(candidate),
                    generation=candidate.generation,
                    membership=membership,
                    late_key=_deferred_class_key(candidate, stats),
                )
                if stats.hom_le_calls == calls_before:
                    stats.admissions_resolved_by_order += 1
            frontier.restore_generation_order()
            stats.generation_switches += cost_model.mode_switches
            _note_exhaustion(budget, stats)
            _harvest_spill(frontier, stats)
            faults = _harvest_executor(executor, stats)
            return PipelineResult(frontier.members, stats, faults)
        checked = _iter_membership_candidates(
            candidates,
            cls,
            executor,
            batch_size=batch_size,
            stats=stats,
            cost_model=cost_model,
        )

        for candidate, is_member in checked:
            parent = getattr(candidate, "parent", None)
            if parent is not None and parent.extensions_dominated:
                # Family dominance shortcut (see _reduce_inline): children
                # that beat their parent's verdict into the batcher are
                # skipped here without check results (the batcher cancels
                # not-yet-dispatched ones; see _check_pooled), the rest on
                # their streamed verdict — either way no dominance search.
                stats.extension_short_circuits += 1
                continue
            if is_member:
                _mark_family_dominated(candidate, parent)
                frontier.add(
                    candidate.materialize(),
                    candidate.codes,
                    dominance_key(candidate),
                )
        stats.generation_switches += cost_model.mode_switches
        _note_exhaustion(budget, stats)
        faults = _harvest_executor(executor, stats)
        return PipelineResult(frontier.members, stats, faults)
