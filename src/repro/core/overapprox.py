"""Syntactic overapproximations — the Section 7 (future work) direction.

The paper's conclusions sketch *overapproximations*: queries from a
tractable class that return **all** correct results (``Q ⊆ Q''``), possibly
with false positives — the dual of the underapproximations studied in the
body.  A full semantic treatment appeared only in the authors' follow-up
work; here we implement the natural *syntactic* variant, which is sound,
simple, and useful in practice:

dropping atoms from a CQ only weakens it, so every subset ``S`` of the body
with a class-member query ``Q_S`` satisfies ``Q ⊆ Q_S``.  A syntactic
C-overapproximation is a ⊆-minimal such ``Q_S`` (equivalently, a maximal
constraint subset whose hypergraph/graph falls in the class).  For Boolean
queries the subset must stay connected to be informative; we keep the
connected component of the head otherwise.

This is weaker than the semantic notion (some semantic overapproximations
are not atom-subsets), which is exactly why the paper leaves the semantic
theory open; the module documents the gap.
"""

from __future__ import annotations

import itertools

from repro.cq.containment import is_contained_in
from repro.cq.query import ConjunctiveQuery
from repro.core.classes import QueryClass
from repro.core.pipeline import iter_membership
from repro.homomorphism.engine import default_engine
from repro.parallel import make_executor


def _subset_queries(query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    """All well-formed queries from non-empty atom subsets containing the
    head variables."""
    head = set(query.head)
    out = []
    atoms = list(query.atoms)
    for size in range(len(atoms), 0, -1):
        for subset in itertools.combinations(atoms, size):
            used = {v for atom in subset for v in atom.variables}
            if head <= used:
                out.append(ConjunctiveQuery(query.head, subset))
    return out


def syntactic_overapproximations(
    query: ConjunctiveQuery, cls: QueryClass, *, workers: int = 1
) -> list[ConjunctiveQuery]:
    """The ⊆-minimal class members among atom-subset weakenings of ``Q``.

    Every returned query ``Q''`` satisfies ``Q ⊆ Q''`` and ``Q'' ∈ C``, and
    no other atom-subset weakening sits strictly between.  Returns ``[Q]``
    itself (minimized) when the query is already in the class.

    The class-membership filter over the (exponentially many) atom subsets
    is the pipeline's stage 2: verdicts are memoized under the subsets'
    primal graphs / hypergraphs, and with ``workers > 1`` the checks spread
    over a process pool.  (Subset queries enter the stage through
    :meth:`~repro.core.quotients.QuotientCandidate.from_tableau` — the same
    candidate interface the integer-form quotient/extension streams use, so
    all stage-2 consumers share one code path.)
    """
    if cls.contains_query(query):
        return [query]
    subsets = _subset_queries(query)
    subset_tableaux = [q.tableau() for q in subsets]
    with make_executor(workers) as executor:
        flags = [
            is_member
            for _, is_member in iter_membership(subset_tableaux, cls, executor)
        ]
    members = [q for q, is_member in zip(subsets, flags) if is_member]
    # ``q ⊆ q'`` ⇔ ``T_q' → T_q``; compute each tableau once and compare
    # through the engine, whose memoized hom_le absorbs the quadratic number
    # of order queries among the (often heavily overlapping) subset queries.
    engine = default_engine()
    tableaux = [
        tableau
        for tableau, is_member in zip(subset_tableaux, flags)
        if is_member
    ]
    minimal: list[tuple[ConjunctiveQuery, object]] = []
    for candidate, candidate_tab in zip(members, tableaux):
        if any(
            engine.strictly_below(candidate_tab, other_tab)
            for other_tab in tableaux
        ):
            continue
        if any(
            engine.hom_equivalent(candidate_tab, kept_tab)
            for _, kept_tab in minimal
        ):
            continue
        minimal.append((candidate, candidate_tab))
    return [candidate for candidate, _ in minimal]


def syntactic_overapproximate(
    query: ConjunctiveQuery, cls: QueryClass, *, workers: int = 1
) -> ConjunctiveQuery:
    """One syntactic overapproximation (the first minimal one)."""
    results = syntactic_overapproximations(query, cls, workers=workers)
    if not results:
        raise ValueError(f"no atom subset of the query falls in {cls.name}")
    return results[0]


def sandwich(query: ConjunctiveQuery, cls: QueryClass, under: ConjunctiveQuery,
             over: ConjunctiveQuery) -> bool:
    """Check the sandwich ``under ⊆ Q ⊆ over`` with both bounds in class.

    The practical payoff of combining the paper's underapproximations with
    overapproximations: evaluating the two tractable bounds brackets the
    exact answer set.
    """
    return (
        cls.contains_query(under)
        and cls.contains_query(over)
        and is_contained_in(under, query)
        and is_contained_in(query, over)
    )
