"""Acyclic approximations of digraphs (Corollary 4.10).

The paper reinterprets its query results in pure graph terms: an acyclic
digraph ``T`` is an *acyclic approximation* of a digraph ``G`` if ``G → T``
and there is no acyclic ``T'`` with ``G → T' ⥮ T``.  Every digraph has one;
the number of non-isomorphic cores of acyclic approximations is at most
``2^(n log n)`` and can be as large as ``2^n`` (Proposition 4.4).
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.core.approximation import (
    ApproximationConfig,
    DEFAULT_CONFIG,
    all_approximations,
    approximate,
)
from repro.core.classes import TreewidthClass
from repro.core.identification import is_approximation

_TW1 = TreewidthClass(1)


def _as_query(g: Structure) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_tableau(Tableau(g), prefix="v")


def acyclic_digraph_approximation(
    g: Structure, config: ApproximationConfig = DEFAULT_CONFIG
) -> Structure:
    """One acyclic approximation of the digraph ``G`` (as a digraph)."""
    query = approximate(_as_query(g), _TW1, config=config)
    return query.tableau().structure


def all_acyclic_digraph_approximations(
    g: Structure, config: ApproximationConfig = DEFAULT_CONFIG
) -> list[Structure]:
    """All cores of acyclic approximations of ``G`` (up to equivalence)."""
    return [
        query.tableau().structure
        for query in all_approximations(_as_query(g), _TW1, config)
    ]


def is_acyclic_digraph_approximation(
    g: Structure, t: Structure, config: ApproximationConfig = DEFAULT_CONFIG
) -> bool:
    """The ``Graph Acyclic Approximation`` decision problem (Theorem 4.12)."""
    return is_approximation(_as_query(g), _as_query(t), _TW1, config)


def count_acyclic_approximation_cores(
    g: Structure, config: ApproximationConfig = DEFAULT_CONFIG
) -> int:
    """``|TW(1)-APPR_min|`` of the Boolean query with tableau ``G``."""
    return len(all_approximations(_as_query(g), _TW1, config))
