"""Candidate tableaux for the approximation search.

Theorem 4.1 shows that every graph-based C-approximation of ``Q`` is
equivalent to one whose tableau is a homomorphic image of ``(T_Q, x̄)`` —
i.e. a quotient of the tableau by a partition of its variables.  This module
enumerates those quotients.

For hypergraph-based classes quotients alone are not enough: acyclic
hypergraphs are not closed under subhypergraphs, and Claim 6.2 repairs
quotients by *adding* bounded extension atoms (possibly with fresh padding
variables; see Example 6.6's third approximation, which has more atoms than
the query it approximates).  ``iter_extended_tableaux`` enumerates quotients
together with bounded sets of extension atoms.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.util.naming import fresh_names
from repro.util.partitions import bell_number, partition_to_mapping, set_partitions


def iter_quotient_tableaux(tableau: Tableau) -> Iterator[Tableau]:
    """All quotients of a tableau, one per set partition of its domain.

    The identity quotient (the tableau itself) is included.  The number of
    quotients is ``bell_number(|domain|)``.
    """
    elements = sorted(tableau.structure.domain, key=repr)
    for partition in set_partitions(elements):
        mapping = partition_to_mapping(partition)
        yield tableau.rename(mapping)


def quotient_count(tableau: Tableau) -> int:
    return bell_number(len(tableau.structure.domain))


def iter_extension_atoms(
    structure: Structure,
    *,
    allow_fresh: bool = True,
    min_cover: int = 2,
) -> Iterator[tuple[str, tuple]]:
    """Candidate extension atoms over a quotient's domain.

    Each candidate is a fact ``R(t)`` whose entries are existing elements or
    fresh padding variables (marked as ``("fresh", i)`` placeholders, later
    renamed).  Mirroring Claim 6.2's extension tuples we require the atom to
    cover at least ``min_cover`` existing elements — extension atoms exist to
    cover (hyper-)edges, and covers of fewer than two elements cannot change
    the hypergraph's cyclicity.
    """
    domain = sorted(structure.domain, key=repr)
    for name in sorted(structure.vocabulary):
        arity = structure.arity(name)
        pool: list = list(domain)
        if allow_fresh:
            pool = pool + [None]  # None = a fresh element at this position
        for pattern in itertools.product(pool, repeat=arity):
            concrete = [value for value in pattern if value is not None]
            if len(set(concrete)) < min_cover:
                continue
            fresh_index = itertools.count()
            row = tuple(
                ("fresh", next(fresh_index)) if value is None else value
                for value in pattern
            )
            if row in structure.tuples(name):
                continue
            yield name, row


def _with_extensions(
    base: Tableau, extras: tuple[tuple[str, tuple], ...]
) -> Tableau:
    """Attach extension atoms, renaming fresh markers to real fresh names."""
    namer = fresh_names(
        {str(value) for value in base.structure.domain}, prefix="z"
    )
    facts = []
    for name, row in extras:
        concrete_row = tuple(
            next(namer) if isinstance(value, tuple) and value and value[0] == "fresh"
            else value
            for value in row
        )
        facts.append((name, concrete_row))
    return Tableau(base.structure.add_facts(facts), base.distinguished)


def iter_extended_tableaux(
    tableau: Tableau,
    *,
    max_extra_atoms: int = 1,
    allow_fresh: bool = True,
) -> Iterator[Tableau]:
    """Quotients plus up to ``max_extra_atoms`` extension atoms each.

    This is the hypergraph-class candidate space (Theorem 6.1 / Claim 6.2),
    truncated by ``max_extra_atoms``: the paper's bound on extension tuples
    is polynomial in ``|Q|``, and the enumeration cost grows steeply, so the
    cap is an explicit knob.  With ``max_extra_atoms=0`` this degenerates to
    plain quotients.
    """
    for quotient in iter_quotient_tableaux(tableau):
        yield quotient
        if max_extra_atoms <= 0:
            continue
        extension_pool = list(
            iter_extension_atoms(quotient.structure, allow_fresh=allow_fresh)
        )
        for count in range(1, max_extra_atoms + 1):
            for extras in itertools.combinations(extension_pool, count):
                yield _with_extensions(quotient, extras)
