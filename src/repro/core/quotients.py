"""Candidate tableaux for the approximation search.

Theorem 4.1 shows that every graph-based C-approximation of ``Q`` is
equivalent to one whose tableau is a homomorphic image of ``(T_Q, x̄)`` —
i.e. a quotient of the tableau by a partition of its variables.  This module
enumerates those quotients.

For hypergraph-based classes quotients alone are not enough: acyclic
hypergraphs are not closed under subhypergraphs, and Claim 6.2 repairs
quotients by *adding* bounded extension atoms (possibly with fresh padding
variables; see Example 6.6's third approximation, which has more atoms than
the query it approximates).  ``iter_extended_tableaux`` enumerates quotients
together with bounded sets of extension atoms; its deduplicated form runs on
``iter_extended_candidates``, which enumerates extension atoms directly over
the integer-form quotient (block ids plus a fresh-id namespace starting at
``block_count``), prunes extension sets that are equivalent modulo the
quotient's automorphism orbits before any key or ``Structure`` exists, and
keys the survivors with the same fact-level canonical form as the plain
quotient stream — so an extended candidate that happens to be isomorphic to
an earlier plain quotient (or to an earlier extended candidate of another
quotient) is deduplicated too.

Both enumerators accept ``dedup=True``: candidates are then deduplicated by
canonical form (:func:`repro.homomorphism.signatures.canonical_key`).
Distinct partitions of a symmetric tableau routinely produce isomorphic
quotients (a directed ``n``-cycle has ``Bell(n)`` partitions but far fewer
quotients up to isomorphism), and every downstream consumer —
class-membership tests, the frontier's ``hom_le`` churn, core computation —
is isomorphism-invariant, so deduplication changes nothing up to homomorphic
equivalence while shrinking the candidate stream several-fold.

The dedup is **best-effort, sound for pruning only**: every isomorphism
class is always represented in the output, but duplicates can still appear —
canonization is abandoned mid-stream when an early prefix shows the base is
too asymmetric to profit (see ``_ADAPTIVE_PREFIX``), and structures beyond
the canonizer's effort caps pass through unkeyed.  Callers must not use
``dedup=True`` to *count* isomorphism classes.  The default stays
``dedup=False``: the raw stream is in bijection with set partitions, which
``quotient_count`` and several callers rely on.

Canonicalization is **optional per run**: ``iter_quotient_candidates`` takes
a ``generation`` regime — ``"canonical"`` (full fact-level dedup),
``"orbit"`` (automorphism-orbit pruning only), ``"raw"`` (no stage-1 dedup;
downstream memos and the refinement index absorb the repeats), the legacy
one-shot ``"adaptive"`` cutoff, or ``"model"``, where the
:class:`DedupCostModel`'s windowed three-way controller picks the regime
live from measured canonization cost, duplicate rate, and downstream
absorption.  Every regime prunes only candidates isomorphic to an earlier
stream element, so downstream results are identical across regimes.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable, Iterator

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.homomorphism.engine import default_engine
from repro.homomorphism.signatures import canonical_key_indexed
from repro.util.naming import fresh_names
from repro.util.partitions import (
    bell_number,
    partition_to_mapping,
    rgs_prefixes,
    set_partitions,
)


#: Adaptive dedup cutoff: after canonizing this many partitions, dedup stays
#: on only if at least this fraction were duplicates (isomorphic to an
#: earlier candidate).  Canonization costs roughly half of what a duplicate
#: saves downstream (class check + quotient construction), so a duplicate
#: rate around one half is the break-even point — unless a
#: :class:`DedupCostModel` with live measurements says otherwise.
_ADAPTIVE_PREFIX = 160
_ADAPTIVE_MIN_DUP_RATE = 0.5

#: Windowed three-way generation controller: review cadence (candidates),
#: minimum measured samples per estimate, and the switch margin — a rival
#: mode must look decisively (1/margin-fold) cheaper than the current one,
#: in two consecutive windows, before the stream flips (the same hysteresis
#: discipline as the pipeline's ``_OrderController``).
_GENERATION_REVIEW_EVERY = 128
_GENERATION_MIN_SAMPLES = 32
_GENERATION_SWITCH_MARGIN = 0.5

#: The three per-candidate generation regimes of the quotient stream.
GENERATION_MODES = ("canonical", "orbit", "raw")


class DedupCostModel:
    """Measured costs of the three candidate-generation regimes.

    Historically this was the break-even model of the one-shot adaptive
    dedup cutoff: deduplication pays one canonization per candidate to
    save, per pruned duplicate, the downstream cost of processing that
    duplicate, so it is profitable when ``duplicate_rate * downstream_cost
    >= canonization_cost`` and the break-even duplicate rate is
    ``canonization_cost / downstream_cost`` (:meth:`min_duplicate_rate`,
    still serving the legacy ``generation="adaptive"`` path).

    It is now a **three-way generation cost model**: the quotient stream
    can run per-candidate in one of three regimes —

    ``"canonical"``
        orbit pruning plus fact-level canonical-key dedup (the historical
        stage-1 path; duplicates cost one canonization and nothing else);
    ``"orbit"``
        orbit pruning only: automorphic repeats are dropped by an O(n·aut)
        integer test, canonization is skipped, the remaining isomorphic
        repeats flow downstream;
    ``"raw"``
        no stage-1 dedup at all: every partition is emitted and the
        downstream memos (the class-check key memo, the dominance memo,
        the refinement index) absorb the repeats.

    Which regime is cheapest depends on three measured quantities: the
    per-candidate canonization/orbit cost (:meth:`record_canonization` /
    :meth:`record_orbit`), the duplicate rate of the stream (fed by the
    enumerator while a dedup-capable regime runs), and the **downstream
    absorption rate** — the fraction of candidates the reducer resolves
    with zero engine searches and zero fresh class checks
    (:meth:`record_absorption`, fed back from stage 3).  Member-heavy
    fine-to-coarse runs absorb nearly every repeat through the refinement
    index, so the raw stream beats paying canonization per candidate even
    at high duplicate rates — the regime the one-shot cutoff always got
    wrong, and the stage-1 tax this model exists to kill.

    :meth:`observe_candidate` drives a windowed controller mirroring the
    pipeline's ``_OrderController``: every ``review_every`` candidates the
    three per-candidate cost estimates are recomputed and the mode flips
    only when a rival looks decisively cheaper in two consecutive windows.
    The controller starts in ``"canonical"`` (the only regime that can
    measure the duplicate rate) and never flips before every estimate has
    ``min_samples`` measurements, so small streams keep the seed behavior.

    Measurements are process-local: every pool worker builds and feeds its
    own model, mirroring the per-worker engine handles.
    """

    __slots__ = (
        "default_rate",
        "floor",
        "ceiling",
        "review_every",
        "min_samples",
        "switch_margin",
        "mode",
        "mode_switches",
        "_pending_mode",
        "_observed",
        "_review_at",
        "_canon_seconds",
        "_canon_count",
        "_downstream_seconds",
        "_downstream_count",
        "_orbit_seconds",
        "_orbit_count",
        "_canonical_candidates",
        "_canonical_duplicates",
        "_orbit_candidates",
        "_orbit_pruned",
        "_absorbed",
        "_absorptions",
        "_window_absorbed",
        "_window_absorptions",
    )

    def __init__(
        self,
        *,
        default_rate: float = _ADAPTIVE_MIN_DUP_RATE,
        floor: float = 0.02,
        ceiling: float = 0.9,
        review_every: int = _GENERATION_REVIEW_EVERY,
        min_samples: int = _GENERATION_MIN_SAMPLES,
        switch_margin: float = _GENERATION_SWITCH_MARGIN,
    ) -> None:
        if not 0.0 < floor <= ceiling <= 1.0:
            raise ValueError("need 0 < floor <= ceiling <= 1")
        self.default_rate = default_rate
        self.floor = floor
        self.ceiling = ceiling
        self.review_every = review_every
        self.min_samples = min_samples
        self.switch_margin = switch_margin
        self.mode = "canonical"
        self.mode_switches = 0
        self._pending_mode: str | None = None
        self._observed = 0
        self._review_at = review_every
        self._canon_seconds = 0.0
        self._canon_count = 0
        self._downstream_seconds = 0.0
        self._downstream_count = 0
        self._orbit_seconds = 0.0
        self._orbit_count = 0
        self._canonical_candidates = 0
        self._canonical_duplicates = 0
        self._orbit_candidates = 0
        self._orbit_pruned = 0
        self._absorbed = 0
        self._absorptions = 0
        self._window_absorbed = 0
        self._window_absorptions = 0

    # ----------------------------------------------------- raw measurements

    def record_canonization(self, seconds: float) -> None:
        self._canon_seconds += seconds
        self._canon_count += 1

    def record_downstream(self, seconds: float) -> None:
        self._downstream_seconds += seconds
        self._downstream_count += 1

    def record_orbit(self, seconds: float) -> None:
        """One orbit-minimality test's wall time (model-driven streams)."""
        self._orbit_seconds += seconds
        self._orbit_count += 1

    def record_absorption(self, absorbed: bool) -> None:
        """Stage-3 feedback: was the candidate resolved for (nearly) free?

        ``absorbed=True`` means the reducer settled the candidate with zero
        engine ``hom_le`` calls and zero fresh class checks — a dominance-
        memo hit, a refinement-index hit, or a memoized check carried it.
        This is the rate at which downstream machinery soaks up whatever
        stage 1 declines to deduplicate.
        """
        self._absorptions += 1
        self._window_absorptions += 1
        if absorbed:
            self._absorbed += 1
            self._window_absorbed += 1

    def note_duplicate(self, *, orbit: bool = False) -> None:
        """A stage-1 duplicate was detected (and pruned) by the current mode."""
        if orbit:
            self._orbit_pruned += 1
        if self.mode == "canonical":
            # Only canonical mode sees every duplicate, so only it may feed
            # the duplicate-rate numerator (its denominator counts exactly
            # the candidates observed under canonical mode).
            self._canonical_duplicates += 1

    # ------------------------------------------------------ derived costs

    @property
    def canonization_cost(self) -> float | None:
        """Mean seconds per canonized candidate (``None`` before data)."""
        if not self._canon_count:
            return None
        return self._canon_seconds / self._canon_count

    @property
    def downstream_cost(self) -> float | None:
        """Mean seconds a pruned duplicate would have cost downstream."""
        if not self._downstream_count:
            return None
        return self._downstream_seconds / self._downstream_count

    @property
    def orbit_cost(self) -> float:
        """Mean seconds per orbit-minimality test (0.0 before data)."""
        if not self._orbit_count:
            return 0.0
        return self._orbit_seconds / self._orbit_count

    @property
    def duplicate_rate(self) -> float | None:
        """Observed duplicate fraction (``None`` until canonical mode ran)."""
        if not self._canonical_candidates:
            return None
        return self._canonical_duplicates / self._canonical_candidates

    @property
    def absorption_rate(self) -> float | None:
        """Fraction of reducer resolutions that were free (``None``: no data)."""
        if not self._absorptions:
            return None
        return self._absorbed / self._absorptions

    def min_duplicate_rate(self) -> float:
        """The duplicate rate below which dedup should switch itself off."""
        canon = self.canonization_cost
        downstream = self.downstream_cost
        if canon is None or downstream is None or downstream <= 0.0:
            return self.default_rate
        return min(max(canon / downstream, self.floor), self.ceiling)

    # ------------------------------------------- the windowed mode controller

    def observe_candidate(self) -> str:
        """Advance the controller by one stream candidate; return the mode."""
        self._observed += 1
        if self._observed >= self._review_at:
            self._review_at = self._observed + self.review_every
            self._review()
        if self.mode != "raw":
            self._orbit_candidates += 1
            if self.mode == "canonical":
                self._canonical_candidates += 1
        return self.mode

    def generation_estimates(self) -> dict[str, float] | None:
        """Estimated per-candidate seconds of each generation regime.

        ``None`` while any required estimate lacks ``min_samples``
        measurements.  The estimates: a unique candidate costs
        ``downstream`` in every regime; a duplicate costs one canonization
        under ``"canonical"``, one orbit test (plus, if it survives the
        orbit filter, the partially-absorbed downstream) under
        ``"orbit"``, and the partially-absorbed downstream under
        ``"raw"`` — absorbed repeats cost ~0 (a memo or index hit), the
        rest pay the full downstream mean.  The duplicate and orbit rates
        are lifetime figures (they freeze while ``"raw"`` runs, which
        cannot observe them); the absorption rate prefers the current
        window so regime changes downstream — a cooling refinement index,
        a filled memo — show up in the next review.
        """
        duplicate_rate = self.duplicate_rate
        downstream = self.downstream_cost
        canon = self.canonization_cost
        if (
            duplicate_rate is None
            or canon is None
            or downstream is None
            or self._canon_count < self.min_samples
            or self._downstream_count < self.min_samples
            or self._absorptions < self.min_samples
        ):
            return None
        if self._window_absorptions >= self.min_samples:
            absorption = self._window_absorbed / self._window_absorptions
        else:
            absorption = self._absorbed / self._absorptions
        orbit_rate = (
            self._orbit_pruned / self._orbit_candidates
            if self._orbit_candidates
            else 0.0
        )
        unique = (1.0 - duplicate_rate) * downstream
        leaked = (1.0 - absorption) * downstream
        return {
            "raw": unique + duplicate_rate * leaked,
            "orbit": self.orbit_cost
            + unique
            + max(duplicate_rate - orbit_rate, 0.0) * leaked,
            "canonical": self.orbit_cost + canon + unique,
        }

    def _review(self) -> None:
        estimates = self.generation_estimates()
        self._window_absorbed = 0
        self._window_absorptions = 0
        if estimates is None:
            self._pending_mode = None
            return
        # Cheapest regime wins, with raw preferred on ties (least machinery).
        rival = min(GENERATION_MODES[::-1], key=estimates.__getitem__)
        if rival == self.mode or not (
            estimates[rival] < self.switch_margin * estimates[self.mode]
        ):
            self._pending_mode = None
            return
        if self._pending_mode == rival:
            self.mode = rival
            self._pending_mode = None
            self.mode_switches += 1
        else:
            self._pending_mode = rival


def _shard_prefixes(
    n_elements: int, shard: tuple[int, int] | None
) -> list[tuple[int, ...]] | None:
    """The restricted-growth-string prefixes selecting one shard's slice.

    ``shard=(index, count)`` splits the partition stream into ``count``
    disjoint slices by fixing a prefix of the growth string: the prefix depth
    is grown until there are at least ``4 * count`` prefixes (for balance),
    and prefixes are dealt round-robin by lexicographic rank.  ``None`` means
    "the whole stream" (no sharding, or a single shard).
    """
    if shard is None:
        return None
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"invalid shard {shard!r}")
    if count == 1:
        return None
    depth = 2
    while depth < n_elements and bell_number(depth) < 4 * count:
        depth += 1
    depth = min(depth, n_elements)
    return [
        prefix
        for rank, prefix in enumerate(rgs_prefixes(depth))
        if rank % count == index
    ]


def shard_prefixes(
    n_elements: int, shard: tuple[int, int] | None
) -> list[tuple[int, ...]] | None:
    """Public face of the shard slicing, for dispatch-side introspection.

    The fabric coordinator and its benches use this to reason about a
    shard's slice — how many growth-string prefixes it owns and which —
    without running the enumeration; the pipeline itself calls the same
    logic through :func:`_candidate_source`.  Returns ``None`` for "the
    whole stream" (``shard`` is ``None`` or the single shard of one).
    """
    return _shard_prefixes(n_elements, shard)


def _partition_stream(
    elements: list, prefixes: list[tuple[int, ...]] | None
) -> Iterable[tuple[tuple, ...]]:
    """All partitions of ``elements``, or one shard's disjoint slice."""
    if prefixes is None:
        return set_partitions(elements)
    return itertools.chain.from_iterable(
        set_partitions(elements, prefix=prefix) for prefix in prefixes
    )


def _automorphism_inverses(
    tableau: Tableau,
    elements: list,
    index_of: dict,
    *,
    cap: int = 512,
) -> list[list[int]] | None:
    """Non-identity automorphisms of the base tableau, as inverse index
    permutations (distinguished elements fixed point-wise).

    Bijective endomorphisms of a finite structure are automorphisms, so the
    engine's endomorphism enumeration suffices; if more than ``cap``
    endomorphisms are scanned the search is abandoned and ``None`` disables
    orbit pruning (rare — the bases here have a handful of endomorphisms).
    """
    structure = tableau.structure
    pin = {element: element for element in tableau.distinguished}
    n = len(elements)
    inverses: list[list[int]] = []
    scanned = 0
    for endo in default_engine().iter_homomorphisms(structure, structure, pin=pin):
        scanned += 1
        if scanned > cap:
            return None
        if len(set(endo.values())) != n:
            continue
        inverse = [0] * n
        is_identity = True
        for i, element in enumerate(elements):
            j = index_of[endo[element]]
            inverse[j] = i
            if j != i:
                is_identity = False
        if not is_identity:
            inverses.append(inverse)
    return inverses


#: Sentinel for "derive the base automorphisms in here" (the default).  The
#: pipeline passes precomputed data instead — derived once per run and, for
#: the shard strategy, shipped to the workers with the task context — while
#: ``None`` means "derivation was attempted but capped out" and disables
#: orbit pruning.
_DERIVE = object()


def base_automorphism_inverses(
    tableau: Tableau, *, cap: int = 512
) -> list[list[int]] | None:
    """The base tableau's orbit data in shippable (picklable) form.

    Non-identity automorphisms as inverse permutations of the sorted-element
    index space — exactly what :func:`iter_quotient_candidates` derives
    internally, exposed so one derivation can be reused across shards and
    pool workers (the index space depends only on the element names, which
    :func:`repro.core.pipeline.decode_tableau` preserves).  ``None`` when
    the endomorphism scan exceeds ``cap`` (orbit pruning is then off).
    """
    elements = sorted(tableau.structure.domain, key=repr)
    index_of = {element: index for index, element in enumerate(elements)}
    return _automorphism_inverses(tableau, elements, index_of, cap=cap)


def _orbit_minimal(code: list[int], n: int, inverses: list[list[int]]) -> bool:
    """Whether the partition's growth string is lex-minimal in its orbit.

    Applying an automorphism ``σ`` to a partition yields an isomorphic
    quotient, so only the lex-minimal restricted-growth string per orbit
    needs canonization — the rest are skipped outright.
    """
    for inverse in inverses:
        relabel: dict[int, int] = {}
        for j in range(n):
            label = relabel.setdefault(code[inverse[j]], len(relabel))
            if label != code[j]:
                if label < code[j]:
                    return False
                break
    return True


class _CanonicalSeen:
    """Tracks canonical forms; tableaux without a computable form pass through."""

    def __init__(self) -> None:
        self._seen: set[tuple] = set()

    def first_sighting(self, tableau: Tableau) -> bool:
        # The engine's canonical-form cache is shared with the hom_le memo
        # keys, so keys computed here are reused by the frontier's order
        # queries on the surviving candidates.
        key = default_engine().canonical_key(tableau)
        if key is None:
            return True
        if key in self._seen:
            return False
        self._seen.add(key)
        return True


class QuotientCandidate:
    """A quotient described without building it (the pipeline's stage-1 unit).

    Carries the partition plus the quotient's facts in integer-indexed form
    (elements replaced by block ids, relations by ids into :attr:`names`).
    The actual :class:`~repro.cq.tableau.Tableau` is built only on demand by
    :meth:`materialize` — class-membership checks for graph/hypergraph
    classes need nothing beyond the integer facts, so non-members of the
    approximation pipeline never pay for ``Structure`` construction.
    Integer facts are themselves computed lazily (:meth:`facts`) so pure
    tableau consumers skip them when dedup decided not to canonize.

    Two candidates of the same stream with equal ``(block_count, facts(),
    distinguished)`` are isomorphic via the induced block bijection — the
    integer form is itself a useful (label-free) memo key for class checks.
    ``key`` carries the fact-level canonical form when the enumerator
    computed one for dedup (``None`` otherwise: the identity quotient, the
    adaptive dedup-off regime, canonizer effort caps) — the extension
    stream uses it to recognize a quotient that repeats an earlier extended
    candidate's isomorphism class.

    ``generation`` is the candidate's position in its (unreordered) stream,
    stamped by :func:`coarseness_ordered` when the pipeline replays the
    stream fine-to-coarse: the dominance-aware reducer uses it to repair
    frontier representatives back to the first-generated member of each
    equivalence class and to restore generation order in its output, which
    is what keeps the reordered reduction bit-identical to the serial
    baseline.  ``None`` on streams that are consumed in generation order.

    ``extensions_dominated`` is consumer feedback to the extension stream:
    the quotient map embeds into every member of the quotient's extension
    family (adding facts preserves homomorphisms, so the identity inclusion
    ``quotient ↪ quotient + atoms`` is a tableau homomorphism).  Hence once
    a frontier holds a member mapping into the quotient — because the
    quotient was admitted, evicted by something lower, or found dominated —
    every extended candidate of its family is dominated forever, and the
    reducer records that here.  :func:`iter_extended_candidates` reads the
    flag when it resumes after the yield and skips the whole family; every
    skipped candidate would have been dropped by the frontier anyway, so
    results are unchanged down to the bit.
    """

    __slots__ = (
        "partition",
        "codes",
        "block_count",
        "distinguished",
        "_base",
        "_base_facts",
        "names",
        "key",
        "generation",
        "extensions_dominated",
        "_facts",
        "_tableau",
    )

    def __init__(
        self,
        partition: tuple[tuple, ...],
        codes: tuple[int, ...] | None,
        block_count: int,
        distinguished: tuple[int, ...] | None,
        base: Tableau,
        base_facts: list[tuple[int, tuple[int, ...]]] | None,
        names: tuple[str, ...],
        *,
        facts: tuple[tuple[int, tuple[int, ...]], ...] | None = None,
        tableau: Tableau | None = None,
        key: tuple | None = None,
    ) -> None:
        self.partition = partition
        self.codes = codes
        self.block_count = block_count
        self.distinguished = distinguished
        self._base = base
        self._base_facts = base_facts
        self.names = names
        self.key = key
        self.generation = None
        self.extensions_dominated = False
        self._facts = facts
        self._tableau = tableau

    @property
    def base(self) -> Tableau:
        """The base tableau this candidate is a quotient of (the reducer's
        kernel-index equivalence tests factor homomorphisms through it)."""
        return self._base

    @classmethod
    def from_tableau(cls, tableau: Tableau) -> "QuotientCandidate":
        """Adapter giving a plain tableau the stage-1 candidate interface.

        No integer form (``facts()`` is ``None``, ``codes`` is ``None``), so
        class checks and dominance fall back to the materialized structure —
        the entry point for callers that hold tableaux rather than
        partitions (:func:`repro.core.pipeline.iter_membership`, the
        extension stream's non-integer fallback).
        """
        return cls((), None, 0, None, tableau, None, (), tableau=tableau)

    def facts(self) -> tuple[tuple[int, tuple[int, ...]], ...] | None:
        """The quotient's facts over block ids (``None`` if unavailable —
        the isolated-element fallback path, where only the materialized
        tableau is authoritative)."""
        if self._facts is None and self.codes is not None:
            code = self.codes
            self._facts = tuple(
                sorted(
                    {
                        (relation_id, tuple(code[value] for value in row))
                        for relation_id, row in self._base_facts
                    }
                )
            )
        return self._facts

    def materialize(self) -> Tableau:
        """The quotient tableau (built once, identical to the historical
        ``tableau.rename(partition_to_mapping(partition))``)."""
        if self._tableau is None:
            self._tableau = self._base.rename(
                partition_to_mapping(self.partition)
            )
        return self._tableau


def iter_quotient_candidates(
    tableau: Tableau,
    *,
    cost_model: DedupCostModel | None = None,
    shard: tuple[int, int] | None = None,
    automorphisms: list[list[int]] | None | object = _DERIVE,
    seen_keys: set | None = None,
    generation: str = "adaptive",
    cursor: int = 0,
) -> Iterator[QuotientCandidate]:
    """The quotient candidate stream in lazy (unmaterialized) form.

    This is the stage-1 engine behind ``iter_quotient_tableaux(dedup=True)``
    and the approximation pipeline: one candidate per surviving partition,
    in restricted-growth-string order, with the canonical/orbit/adaptive
    dedup machinery of the module docstring.  A ``cost_model`` replaces the
    fixed break-even duplicate rate with the measured canonization-to-check
    ratio (and receives canonization timings as a side effect);
    ``shard=(index, count)`` restricts enumeration to one of ``count``
    disjoint partition-prefix slices (dedup state is shard-local, so
    cross-shard duplicates survive and must be absorbed downstream).

    ``generation`` selects the per-candidate regime:

    * ``"adaptive"`` (default) — the historical one-shot cutoff: canonical
      dedup with the early-prefix duplicate-rate decision (optionally
      cost-modeled through ``min_duplicate_rate``).
    * ``"canonical"`` / ``"orbit"`` / ``"raw"`` — force one regime for the
      whole stream (see :class:`DedupCostModel`): full fact-level dedup,
      orbit pruning only, or the raw partition stream with no stage-1
      dedup at all.  Raw candidates carry codes and lazy facts but no
      canonical ``key``; their isomorphic repeats must be absorbed
      downstream (the pipeline's memos and refinement index do).
    * ``"model"`` — per-window regime chosen live by the ``cost_model``'s
      three-way controller (required; flips mid-run as measured costs
      shift).

    Whatever the regime decides, every pruned candidate is isomorphic to
    an earlier stream element, so downstream frontiers are invariant —
    including bit-identical serial results — across all generation modes.

    ``automorphisms`` takes precomputed base orbit data (the result of
    :func:`base_automorphism_inverses`) so repeated or distributed runs skip
    the endomorphism scan; the default derives it here.  ``seen_keys`` lets
    a caller observe the canonical keys of the emitted quotients (the
    extension stream checks its fact-level keys against them); the set is
    only ever *added to* — quotient-level pruning stays quotient-vs-quotient,
    because skipping a quotient also skips its whole extension family, which
    is only sound when the surviving isomorphic copy grows the same family.

    ``cursor`` skips the first ``cursor`` *emitted* candidates without
    building them (checkpoint resume).  Exact only under the stateless
    regimes — ``"orbit"`` and ``"raw"`` decide each emission from the
    partition alone, so the suffix after a skip is the exact suffix of the
    original stream.  The stateful regimes (``"canonical"``'s ``seen_keys``,
    the timing-dependent ``"adaptive"``/``"model"``) are rejected with a
    nonzero cursor: their emission decisions depend on history the skip
    would not replay.
    """
    if generation not in {"adaptive", "model", *GENERATION_MODES}:
        raise ValueError(f"unknown generation mode {generation!r}")
    if generation == "model" and cost_model is None:
        raise ValueError('generation="model" requires a cost_model')
    if cursor < 0:
        raise ValueError(f"cursor must be >= 0, got {cursor}")
    if cursor and generation not in ("orbit", "raw"):
        raise ValueError(
            "resume cursors need a stateless generation regime ('orbit' or "
            f"'raw'); got {generation!r}"
        )
    elements = sorted(tableau.structure.domain, key=repr)
    prefixes = _shard_prefixes(len(elements), shard)
    structure = tableau.structure
    index_of = {element: index for index, element in enumerate(elements)}
    names = tuple(
        sorted(name for name, rows in structure.relations.items() if rows)
    )
    base_facts = [
        (relation_id, tuple(index_of[value] for value in row))
        for relation_id, name in enumerate(names)
        for row in structure.relations[name]
    ]
    covered = {value for _, row in base_facts for value in row}
    covered.update(index_of[d] for d in tableau.distinguished)
    n_elements = len(elements)
    if len(covered) < n_elements:
        # Isolated elements (possible only with an explicitly enlarged
        # domain) would defeat the integer fast path's refinement; fall back
        # to tableau-level canonical forms, which handle them.  Candidates
        # on this path are pre-materialized and carry no integer facts.
        if cursor:
            raise ValueError(
                "resume cursors are unsupported on the isolated-element "
                "fallback path (its dedup is stateful)"
            )
        seen = _CanonicalSeen()
        for partition in _partition_stream(elements, prefixes):
            quotient = tableau.rename(partition_to_mapping(partition))
            if seen.first_sighting(quotient):
                yield QuotientCandidate(
                    partition,
                    None,
                    len(partition),
                    None,
                    tableau,
                    None,
                    names,
                    tableau=quotient,
                )
        return

    distinguished_idx = tuple(index_of[d] for d in tableau.distinguished)
    if automorphisms is _DERIVE:
        automorphisms = _automorphism_inverses(tableau, elements, index_of)
    if seen_keys is None:
        seen_keys = set()
    code = [0] * n_elements
    identity_facts = tuple(sorted(set(base_facts)))
    # Adaptive regime: deduplication pays for itself only when enough
    # partitions actually collapse onto already-seen isomorphism classes
    # (the canonization of a unique candidate is pure overhead).  Track the
    # duplicate rate over an early prefix and fall back to plain
    # enumeration when the base tableau turns out to be too asymmetric for
    # dedup to win.  The "model" regime replaces this one-shot decision
    # with the cost model's windowed three-way controller.
    checked = duplicates = 0
    dedup_active, decided = True, False
    model_driven = generation == "model"
    skip = cursor
    for partition in _partition_stream(elements, prefixes):
        if len(partition) == n_elements:
            # The identity quotient: the only partition with |domain| blocks,
            # and isomorphism preserves block count, so it cannot duplicate
            # (or be duplicated by) anything — skip the canonization.
            if skip:
                skip -= 1
                continue
            yield QuotientCandidate(
                partition,
                tuple(range(n_elements)),
                n_elements,
                distinguished_idx,
                tableau,
                base_facts,
                names,
                facts=identity_facts,
            )
            continue
        if generation == "adaptive":
            if not decided and checked >= _ADAPTIVE_PREFIX:
                decided = True
                min_rate = (
                    cost_model.min_duplicate_rate()
                    if cost_model is not None
                    else _ADAPTIVE_MIN_DUP_RATE
                )
                dedup_active = duplicates >= checked * min_rate
            mode = "canonical" if dedup_active else "raw"
        elif model_driven:
            mode = cost_model.observe_candidate()
        else:
            mode = generation
        block_count = len(partition)
        timed = cost_model is not None and mode != "raw"
        started = time.perf_counter() if timed else 0.0
        for block_id, block in enumerate(partition):
            for element in block:
                code[index_of[element]] = block_id
        if mode == "raw":
            if skip:
                skip -= 1
                continue
            yield QuotientCandidate(
                partition,
                tuple(code),
                block_count,
                tuple(code[value] for value in distinguished_idx),
                tableau,
                base_facts,
                names,
            )
            continue
        checked += 1
        if automorphisms and not _orbit_minimal(code, n_elements, automorphisms):
            duplicates += 1
            if timed:
                elapsed = time.perf_counter() - started
                if model_driven:
                    cost_model.record_orbit(elapsed)
                    cost_model.note_duplicate(orbit=True)
                else:
                    cost_model.record_canonization(elapsed)
            continue
        if model_driven:
            # Split the timings so the controller prices the orbit filter
            # and the canonization separately (orbit mode pays only the
            # former); legacy callers keep the single combined figure.
            now = time.perf_counter()
            cost_model.record_orbit(now - started)
            started = now
        if mode == "orbit":
            if skip:
                skip -= 1
                continue
            yield QuotientCandidate(
                partition,
                tuple(code),
                block_count,
                tuple(code[value] for value in distinguished_idx),
                tableau,
                base_facts,
                names,
            )
            continue
        mapped_facts = tuple(
            sorted(
                {
                    (relation_id, tuple(code[value] for value in row))
                    for relation_id, row in base_facts
                }
            )
        )
        mapped_distinguished = tuple(code[value] for value in distinguished_idx)
        key = canonical_key_indexed(
            block_count, list(mapped_facts), mapped_distinguished
        )
        if timed:
            cost_model.record_canonization(time.perf_counter() - started)
        if key is not None:
            if key in seen_keys:
                duplicates += 1
                if model_driven:
                    cost_model.note_duplicate()
                continue
            seen_keys.add(key)
        yield QuotientCandidate(
            partition,
            tuple(code),
            block_count,
            mapped_distinguished,
            tableau,
            base_facts,
            names,
            facts=mapped_facts,
            key=key,
        )


def coarseness_ordered(candidates: Iterable) -> Iterator:
    """Replay a stage-1 candidate stream finest-first (fine-to-coarse).

    Buffers the whole stream, stamps each candidate's ``generation`` (its
    position in the unreordered stream), and yields candidates bucketed by
    *descending* ``block_count`` — block count is free in integer form, and
    a partition with more blocks can never be a coarsening of one with
    fewer, so every candidate meets the frontier only after every strictly
    finer candidate.  Within one bucket the original (generation) order is
    preserved, so candidates of equal coarseness — in particular isomorphic
    ones, which always share a block count — still arrive first-generated
    first.

    Sound only for streams without generator feedback: the stream is fully
    consumed before anything is yielded, so ``extensions_dominated`` flags
    set during the reduction would never reach the (exhausted) enumerator.
    The pipeline therefore applies it to *plain quotient* streams only
    (graph classes, and hypergraph classes with the extension space off).
    """
    for bucket in coarseness_buckets(candidates):
        yield from bucket


def coarseness_buckets(candidates: Iterable) -> list[list]:
    """The buffered fine-to-coarse buckets behind :func:`coarseness_ordered`.

    Same contract (full buffering, ``generation`` stamps, descending
    ``block_count``, generation order within a bucket), exposed as a list of
    buckets so the pipeline can inspect the buffered stream — e.g. probe
    the member rate of the first sizable bucket — before replaying it.
    """
    buckets: dict[int, list] = {}
    for generation, candidate in enumerate(candidates):
        candidate.generation = generation
        buckets.setdefault(candidate.block_count or 0, []).append(candidate)
    return [buckets[count] for count in sorted(buckets, reverse=True)]


def iter_quotient_tableaux(
    tableau: Tableau,
    *,
    dedup: bool = False,
    cost_model: DedupCostModel | None = None,
    shard: tuple[int, int] | None = None,
) -> Iterator[Tableau]:
    """All quotients of a tableau, one per set partition of its domain.

    The identity quotient (the tableau itself) is included.  The number of
    quotients is ``bell_number(|domain|)``; with ``dedup=True`` isomorphic
    quotients are pruned (best-effort — see the module docstring: the
    adaptive cutoff can re-admit duplicates on asymmetric bases), which can
    leave far fewer.

    The dedup path delegates to :func:`iter_quotient_candidates`, which
    canonizes straight off the partition — facts mapped to integer block
    ids, no ``Structure`` built — so duplicated quotients cost one
    canonical-form computation and nothing else.  ``cost_model`` and
    ``shard`` are documented there; both require ``dedup=True`` sharding
    excepted (``shard`` also works on the raw stream).
    """
    if not dedup:
        elements = sorted(tableau.structure.domain, key=repr)
        prefixes = _shard_prefixes(len(elements), shard)
        for partition in _partition_stream(elements, prefixes):
            yield tableau.rename(partition_to_mapping(partition))
        return
    for candidate in iter_quotient_candidates(
        tableau, cost_model=cost_model, shard=shard
    ):
        yield candidate.materialize()


def quotient_count(tableau: Tableau) -> int:
    return bell_number(len(tableau.structure.domain))


def iter_extension_atoms(
    structure: Structure,
    *,
    allow_fresh: bool = True,
    min_cover: int = 2,
) -> Iterator[tuple[str, tuple]]:
    """Candidate extension atoms over a quotient's domain.

    Each candidate is a fact ``R(t)`` whose entries are existing elements or
    fresh padding variables (marked as ``("fresh", i)`` placeholders, later
    renamed).  Mirroring Claim 6.2's extension tuples we require the atom to
    cover at least ``min_cover`` existing elements — extension atoms exist to
    cover (hyper-)edges, and covers of fewer than two elements cannot change
    the hypergraph's cyclicity.
    """
    domain = sorted(structure.domain, key=repr)
    for name in sorted(structure.vocabulary):
        arity = structure.arity(name)
        pool: list = list(domain)
        if allow_fresh:
            pool = pool + [None]  # None = a fresh element at this position
        for pattern in itertools.product(pool, repeat=arity):
            concrete = [value for value in pattern if value is not None]
            if len(set(concrete)) < min_cover:
                continue
            fresh_index = itertools.count()
            row = tuple(
                ("fresh", next(fresh_index)) if value is None else value
                for value in pattern
            )
            if row in structure.tuples(name):
                continue
            yield name, row


def _with_extensions(
    base: Tableau, extras: tuple[tuple[str, tuple], ...]
) -> Tableau:
    """Attach extension atoms, renaming fresh markers to real fresh names."""
    namer = fresh_names(
        {str(value) for value in base.structure.domain}, prefix="z"
    )
    facts = []
    for name, row in extras:
        concrete_row = tuple(
            next(namer) if isinstance(value, tuple) and value and value[0] == "fresh"
            else value
            for value in row
        )
        facts.append((name, concrete_row))
    return Tableau(base.structure.add_facts(facts), base.distinguished)


class ExtensionCandidate:
    """An extended candidate (quotient + extension atoms) in lazy integer
    form — the stage-1 unit of hypergraph extension-space runs.

    ``block_count`` counts quotient blocks *plus* fresh padding variables:
    fresh elements occupy the id namespace ``quotient.block_count ..
    block_count - 1``, so the integer facts describe the full extended
    structure and the pipeline's membership/dominance keys and integer
    class checks work unchanged.  The tableau is built on demand only
    (:meth:`materialize`), through the same ``_with_extensions`` path as
    the historical enumerator, so surviving candidates are bit-identical
    to the pre-stream implementation while rejected ones never build a
    ``Structure``.  ``parent`` is the family's quotient candidate: since
    the quotient embeds into each of its extensions, a frontier that holds
    a member mapping into the parent dominates the whole family — the
    reducer uses the link to drop such children without any search (see
    ``QuotientCandidate.extensions_dominated``).
    """

    __slots__ = (
        "block_count",
        "distinguished",
        "parent",
        "generation",
        "_atoms",
        "_names",
        "_facts",
        "_tableau",
    )

    #: Extended candidates are not quotients of the base, so partition-code
    #: coarsening is no homomorphism witness for them (in either direction
    #: of a frontier query) — they carry no codes.
    codes = None

    def __init__(
        self,
        quotient: QuotientCandidate,
        atoms: tuple[tuple[int, tuple], ...],
        names: tuple[str, ...],
        facts: tuple[tuple[int, tuple[int, ...]], ...],
        block_count: int,
        distinguished: tuple[int, ...],
    ) -> None:
        self.parent = quotient
        self.generation = None
        self._atoms = atoms
        self._names = names
        self._facts = facts
        self.block_count = block_count
        self.distinguished = distinguished
        self._tableau: Tableau | None = None

    def facts(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """The extended candidate's facts over block + fresh ids."""
        return self._facts

    def materialize(self) -> Tableau:
        """The extended tableau, identical to the historical
        ``_with_extensions(quotient, extras)`` construction (block ids are
        resolved to block representatives, fresh ids to fresh markers that
        ``_with_extensions`` names ``z0, z1, ...`` in atom order)."""
        if self._tableau is None:
            partition = self.parent.partition
            extras = tuple(
                (
                    self._names[relation_id],
                    tuple(
                        partition[value][0] if isinstance(value, int) else value
                        for value in row
                    ),
                )
                for relation_id, row in self._atoms
            )
            self._tableau = _with_extensions(self.parent.materialize(), extras)
        return self._tableau


def _integer_automorphisms(
    n: int,
    facts: tuple[tuple[int, tuple[int, ...]], ...],
    distinguished: tuple[int, ...],
    *,
    node_cap: int = 4096,
) -> list[list[int]]:
    """Non-identity automorphisms of an integer-form quotient.

    Returned as image permutations (``perm[v]`` is the image of block
    ``v``) that map the fact set onto itself and fix distinguished elements
    pointwise — the orbit data of one extension family.  A direct
    fact-level backtracker: candidate images are confined to elements with
    equal (distinguished-position, slot-profile) colors, and every fact is
    verified the moment its largest element is assigned.  The search stops
    at ``node_cap`` nodes and returns what it found: orbit pruning with a
    *subset* of the automorphisms is still sound — a pruned extension set
    is mapped to a lexicographically earlier one, whose own pruning chain
    terminates at a kept representative, and compositions of automorphisms
    are automorphisms.
    """
    if n <= 1 or not facts:
        return []
    distinguished_positions: list[tuple[int, ...]] = [() for _ in range(n)]
    for position, element in enumerate(distinguished):
        distinguished_positions[element] += (position,)
    profiles: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for relation_id, row in facts:
        for position, element in enumerate(row):
            profiles[element].append((relation_id, position))
    colors = [
        (distinguished_positions[v], tuple(sorted(profiles[v]))) for v in range(n)
    ]
    fact_set = set(facts)
    triggers: list[list[tuple[int, tuple[int, ...]]]] = [[] for _ in range(n)]
    for fact in facts:
        triggers[max(fact[1])].append(fact)

    perms: list[list[int]] = []
    image = [-1] * n
    used = [False] * n
    nodes = 0

    def assign(v: int) -> bool:
        """Extend the partial map at element ``v``; False aborts (cap)."""
        nonlocal nodes
        if v == n:
            if any(image[i] != i for i in range(n)):
                perms.append(list(image))
            return True
        for w in range(n):
            if used[w] or colors[w] != colors[v]:
                continue
            nodes += 1
            if nodes > node_cap:
                return False
            image[v] = w
            used[w] = True
            consistent = all(
                (relation_id, tuple(image[value] for value in row)) in fact_set
                for relation_id, row in triggers[v]
            )
            if consistent and not assign(v + 1):
                used[w] = False
                image[v] = -1
                return False
            used[w] = False
        image[v] = -1
        return True

    assign(0)
    return perms


def _integer_extension_pool(
    names: tuple[str, ...],
    arities: tuple[int, ...],
    block_count: int,
    quotient_facts: tuple[tuple[int, tuple[int, ...]], ...],
    allow_fresh: bool,
) -> list[tuple[int, tuple]]:
    """Candidate extension atoms over a quotient's block ids.

    The integer mirror of :func:`iter_extension_atoms`, in the same
    enumeration order — relation ids ascending (= sorted relation names),
    block ids ascending (= the quotient's block representatives sorted by
    repr, since blocks are ordered by their first element), the fresh
    marker last.  Each atom is ``(relation_id, row)`` with entries block
    ids or per-atom ``("fresh", i)`` markers; atoms must cover at least two
    existing blocks (Claim 6.2's ``min_cover``) and not duplicate a
    quotient fact.
    """
    fact_set = set(quotient_facts)
    pool: list[tuple[int, tuple]] = []
    for relation_id in range(len(names)):
        values: list = list(range(block_count))
        if allow_fresh:
            values.append(None)
        for pattern in itertools.product(values, repeat=arities[relation_id]):
            concrete = [value for value in pattern if value is not None]
            if len(set(concrete)) < 2:
                continue
            if (relation_id, pattern) in fact_set:
                continue
            fresh_index = itertools.count()
            pool.append(
                (
                    relation_id,
                    tuple(
                        ("fresh", next(fresh_index)) if value is None else value
                        for value in pattern
                    ),
                )
            )
    return pool


def iter_extended_candidates(
    tableau: Tableau,
    *,
    max_extra_atoms: int = 1,
    allow_fresh: bool = True,
    cost_model: DedupCostModel | None = None,
    shard: tuple[int, int] | None = None,
    automorphisms: list[list[int]] | None | object = _DERIVE,
    generation: str = "adaptive",
) -> Iterator[QuotientCandidate | ExtensionCandidate]:
    """The deduplicated extension-space stream in lazy integer form.

    Stage 1 of hypergraph-class pipeline runs (Theorem 6.1 / Claim 6.2):
    every deduplicated quotient candidate, each followed by its family of
    candidates with up to ``max_extra_atoms`` extension atoms.  Extension
    atoms are enumerated straight over the quotient's integer form — fresh
    padding variables take the ids ``block_count, block_count + 1, ...`` —
    so a rejected extended candidate never builds a ``Structure``.

    Dedup is incremental and fact-level, with the per-family work computed
    once from the quotient's integer facts:

    * the quotient's automorphisms (:func:`_integer_automorphisms`) turn
      into permutations of the extension-atom pool; an extension set that
      some automorphism maps to a lexicographically earlier one is pruned
      *before any key or structure exists* — its orbit representative is
      already in the stream;
    * orbit-unique survivors are keyed with
      :func:`~repro.homomorphism.signatures.canonical_key_indexed` over the
      combined integer facts, in a keyspace shared with the quotient
      stream's own keys, so an extended candidate isomorphic to an earlier
      plain quotient — the historical blind spot — or to an earlier
      extended candidate of a *different* quotient deduplicates too.

    Like the quotient stream the dedup is best-effort and sound for pruning
    only: every pruned candidate is isomorphic to an earlier stream
    element, which keeps downstream frontiers bit-identical.  Quotient-level
    pruning remains quotient-vs-quotient (extension keys never suppress a
    quotient): skipping a quotient skips its whole extension family, which
    is only sound when the surviving isomorphic copy grows the same family.

    ``shard`` splits at the quotient level, so each quotient's extension
    family stays in its shard; ``automorphisms`` is the *base* tableau's
    orbit data as in :func:`iter_quotient_candidates`; ``generation`` is
    the quotient stream's regime knob (a raw quotient repeat re-grows no
    family that survives — its extensions dedup against the shared
    keyspace, and the reducer's ``extensions_dominated`` feedback cancels
    the rest — so results stay bit-identical across regimes here too).
    Bases outside the integer fast path (isolated domain elements,
    vocabulary relations without facts) fall back to the historical
    tableau-level enumeration, wrapped via
    :meth:`QuotientCandidate.from_tableau`.
    """
    if max_extra_atoms <= 0:
        yield from iter_quotient_candidates(
            tableau,
            cost_model=cost_model,
            shard=shard,
            automorphisms=automorphisms,
            generation=generation,
        )
        return
    structure = tableau.structure
    names = tuple(
        sorted(name for name, rows in structure.relations.items() if rows)
    )
    covered = {
        value
        for rows in structure.relations.values()
        for row in rows
        for value in row
    }
    covered.update(tableau.distinguished)
    if len(names) != len(structure.vocabulary) or len(covered) < len(
        structure.domain
    ):
        yield from _iter_extended_candidates_fallback(
            tableau,
            max_extra_atoms=max_extra_atoms,
            allow_fresh=allow_fresh,
            cost_model=cost_model,
            shard=shard,
            automorphisms=automorphisms,
        )
        return
    arities = tuple(structure.arity(name) for name in names)
    quotient_keys: set = set()
    extension_keys: set = set()
    for candidate in iter_quotient_candidates(
        tableau,
        cost_model=cost_model,
        shard=shard,
        automorphisms=automorphisms,
        seen_keys=quotient_keys,
    ):
        if candidate.key is None or candidate.key not in extension_keys:
            yield candidate
        # else: the quotient repeats an earlier extended candidate's
        # isomorphism class — suppress it, but still grow its extension
        # family (whose members dedup individually against the shared
        # keyspace; the suppressed copy's family exists nowhere else).
        if candidate.extensions_dominated:
            # Consumer feedback set while this generator was suspended: the
            # frontier already holds a member mapping into the quotient, so
            # the whole family is dominated — skip it before any key or
            # structure exists.  (Later candidates isomorphic to a skipped
            # one lose the dedup hit but are dominated for the same reason.)
            continue
        quotient_facts = candidate.facts()
        block_count = candidate.block_count
        distinguished = candidate.distinguished
        pool = _integer_extension_pool(
            names, arities, block_count, quotient_facts, allow_fresh
        )
        if not pool:
            continue
        perms = _integer_automorphisms(block_count, quotient_facts, distinguished)
        pool_perms: list[tuple[int, ...]] = []
        if perms:
            pool_index = {atom: position for position, atom in enumerate(pool)}
            for perm in perms:
                # An automorphism maps non-facts to non-facts, preserves
                # relations, concrete coverage, and fresh positions — so it
                # permutes the pool.
                pool_perms.append(
                    tuple(
                        pool_index[
                            (
                                relation_id,
                                tuple(
                                    perm[value] if isinstance(value, int) else value
                                    for value in row
                                ),
                            )
                        ]
                        for relation_id, row in pool
                    )
                )
        for count in range(1, max_extra_atoms + 1):
            if candidate.extensions_dominated:
                break
            for combo in itertools.combinations(range(len(pool)), count):
                if candidate.extensions_dominated:
                    # Late feedback: the parent's verdict landed while its
                    # family was already streaming (pooled lookahead).  The
                    # rest of the family is dominated — abandon it here
                    # instead of only at the family boundary.
                    break
                started = time.perf_counter() if cost_model is not None else 0.0
                if pool_perms and any(
                    tuple(sorted(p[i] for i in combo)) < combo for p in pool_perms
                ):
                    if cost_model is not None:
                        cost_model.record_canonization(
                            time.perf_counter() - started
                        )
                    continue
                next_fresh = block_count
                extension_facts = []
                for i in combo:
                    relation_id, row = pool[i]
                    mapped = []
                    for value in row:
                        if isinstance(value, int):
                            mapped.append(value)
                        else:
                            mapped.append(next_fresh)
                            next_fresh += 1
                    extension_facts.append((relation_id, tuple(mapped)))
                facts = tuple(
                    sorted(itertools.chain(quotient_facts, extension_facts))
                )
                key = canonical_key_indexed(next_fresh, list(facts), distinguished)
                if cost_model is not None:
                    cost_model.record_canonization(time.perf_counter() - started)
                if key is not None:
                    if key in extension_keys or key in quotient_keys:
                        continue
                    extension_keys.add(key)
                yield ExtensionCandidate(
                    candidate,
                    tuple(pool[i] for i in combo),
                    names,
                    facts,
                    next_fresh,
                    distinguished,
                )


def _iter_extended_candidates_fallback(
    tableau: Tableau,
    *,
    max_extra_atoms: int,
    allow_fresh: bool,
    cost_model: DedupCostModel | None,
    shard: tuple[int, int] | None,
    automorphisms: list[list[int]] | None | object,
) -> Iterator[QuotientCandidate]:
    """Tableau-level extension stream (the historical path) as candidates.

    Used when the base has no integer form: quotient-level dedup through
    the candidate stream, extension-level dedup through engine canonical
    forms, extended candidates wrapped without integer facts.
    """
    seen = _CanonicalSeen()
    for candidate in iter_quotient_candidates(
        tableau, cost_model=cost_model, shard=shard, automorphisms=automorphisms
    ):
        yield candidate
        if candidate.extensions_dominated:
            continue
        quotient = candidate.materialize()
        extension_pool = list(
            iter_extension_atoms(quotient.structure, allow_fresh=allow_fresh)
        )
        for count in range(1, max_extra_atoms + 1):
            if candidate.extensions_dominated:
                break
            for extras in itertools.combinations(extension_pool, count):
                if candidate.extensions_dominated:
                    break
                extended = _with_extensions(quotient, extras)
                started = time.perf_counter() if cost_model is not None else 0.0
                fresh_candidate = seen.first_sighting(extended)
                if cost_model is not None:
                    cost_model.record_canonization(time.perf_counter() - started)
                if fresh_candidate:
                    yield QuotientCandidate.from_tableau(extended)


def iter_extended_tableaux(
    tableau: Tableau,
    *,
    max_extra_atoms: int = 1,
    allow_fresh: bool = True,
    dedup: bool = False,
    cost_model: DedupCostModel | None = None,
    shard: tuple[int, int] | None = None,
) -> Iterator[Tableau]:
    """Quotients plus up to ``max_extra_atoms`` extension atoms each.

    This is the hypergraph-class candidate space (Theorem 6.1 / Claim 6.2),
    truncated by ``max_extra_atoms``: the paper's bound on extension tuples
    is polynomial in ``|Q|``, and the enumeration cost grows steeply, so the
    cap is an explicit knob.  With ``max_extra_atoms=0`` this degenerates to
    plain quotients.

    ``dedup=True`` delegates to :func:`iter_extended_candidates` and
    materializes each survivor: isomorphic candidates are pruned
    (best-effort) at the quotient level, within each quotient's extension
    family (automorphism-orbit pruning), and across the whole stream
    through one shared fact-level keyspace — including extended candidates
    isomorphic to plain quotients, which the historical tableau-level dedup
    never cross-checked.  ``cost_model``/``shard`` mirror
    :func:`iter_quotient_tableaux`: sharding splits at the quotient level
    (each quotient's whole extension family stays in its shard), and the
    cost model is additionally fed the fact-level canonization time of the
    extended candidates.
    """
    if not dedup:
        for quotient in iter_quotient_tableaux(
            tableau, dedup=False, cost_model=cost_model, shard=shard
        ):
            yield quotient
            if max_extra_atoms <= 0:
                continue
            extension_pool = list(
                iter_extension_atoms(quotient.structure, allow_fresh=allow_fresh)
            )
            for count in range(1, max_extra_atoms + 1):
                for extras in itertools.combinations(extension_pool, count):
                    yield _with_extensions(quotient, extras)
        return
    for candidate in iter_extended_candidates(
        tableau,
        max_extra_atoms=max_extra_atoms,
        allow_fresh=allow_fresh,
        cost_model=cost_model,
        shard=shard,
    ):
        yield candidate.materialize()
