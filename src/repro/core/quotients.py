"""Candidate tableaux for the approximation search.

Theorem 4.1 shows that every graph-based C-approximation of ``Q`` is
equivalent to one whose tableau is a homomorphic image of ``(T_Q, x̄)`` —
i.e. a quotient of the tableau by a partition of its variables.  This module
enumerates those quotients.

For hypergraph-based classes quotients alone are not enough: acyclic
hypergraphs are not closed under subhypergraphs, and Claim 6.2 repairs
quotients by *adding* bounded extension atoms (possibly with fresh padding
variables; see Example 6.6's third approximation, which has more atoms than
the query it approximates).  ``iter_extended_tableaux`` enumerates quotients
together with bounded sets of extension atoms.

Both enumerators accept ``dedup=True``: candidates are then deduplicated by
canonical form (:func:`repro.homomorphism.signatures.canonical_key`).
Distinct partitions of a symmetric tableau routinely produce isomorphic
quotients (a directed ``n``-cycle has ``Bell(n)`` partitions but far fewer
quotients up to isomorphism), and every downstream consumer —
class-membership tests, the frontier's ``hom_le`` churn, core computation —
is isomorphism-invariant, so deduplication changes nothing up to homomorphic
equivalence while shrinking the candidate stream several-fold.

The dedup is **best-effort, sound for pruning only**: every isomorphism
class is always represented in the output, but duplicates can still appear —
canonization is abandoned mid-stream when an early prefix shows the base is
too asymmetric to profit (see ``_ADAPTIVE_PREFIX``), and structures beyond
the canonizer's effort caps pass through unkeyed.  Callers must not use
``dedup=True`` to *count* isomorphism classes.  The default stays
``dedup=False``: the raw stream is in bijection with set partitions, which
``quotient_count`` and several callers rely on.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.homomorphism.engine import default_engine
from repro.homomorphism.signatures import canonical_key_indexed
from repro.util.naming import fresh_names
from repro.util.partitions import bell_number, partition_to_mapping, set_partitions


#: Adaptive dedup cutoff: after canonizing this many partitions, dedup stays
#: on only if at least this fraction were duplicates (isomorphic to an
#: earlier candidate).  Canonization costs roughly half of what a duplicate
#: saves downstream (class check + quotient construction), so a duplicate
#: rate around one half is the break-even point.
_ADAPTIVE_PREFIX = 160
_ADAPTIVE_MIN_DUP_RATE = 0.5


def _automorphism_inverses(
    tableau: Tableau,
    elements: list,
    index_of: dict,
    *,
    cap: int = 512,
) -> list[list[int]] | None:
    """Non-identity automorphisms of the base tableau, as inverse index
    permutations (distinguished elements fixed point-wise).

    Bijective endomorphisms of a finite structure are automorphisms, so the
    engine's endomorphism enumeration suffices; if more than ``cap``
    endomorphisms are scanned the search is abandoned and ``None`` disables
    orbit pruning (rare — the bases here have a handful of endomorphisms).
    """
    structure = tableau.structure
    pin = {element: element for element in tableau.distinguished}
    n = len(elements)
    inverses: list[list[int]] = []
    scanned = 0
    for endo in default_engine().iter_homomorphisms(structure, structure, pin=pin):
        scanned += 1
        if scanned > cap:
            return None
        if len(set(endo.values())) != n:
            continue
        inverse = [0] * n
        is_identity = True
        for i, element in enumerate(elements):
            j = index_of[endo[element]]
            inverse[j] = i
            if j != i:
                is_identity = False
        if not is_identity:
            inverses.append(inverse)
    return inverses


def _orbit_minimal(code: list[int], n: int, inverses: list[list[int]]) -> bool:
    """Whether the partition's growth string is lex-minimal in its orbit.

    Applying an automorphism ``σ`` to a partition yields an isomorphic
    quotient, so only the lex-minimal restricted-growth string per orbit
    needs canonization — the rest are skipped outright.
    """
    for inverse in inverses:
        relabel: dict[int, int] = {}
        for j in range(n):
            label = relabel.setdefault(code[inverse[j]], len(relabel))
            if label != code[j]:
                if label < code[j]:
                    return False
                break
    return True


class _CanonicalSeen:
    """Tracks canonical forms; tableaux without a computable form pass through."""

    def __init__(self) -> None:
        self._seen: set[tuple] = set()

    def first_sighting(self, tableau: Tableau) -> bool:
        # The engine's canonical-form cache is shared with the hom_le memo
        # keys, so keys computed here are reused by the frontier's order
        # queries on the surviving candidates.
        key = default_engine().canonical_key(tableau)
        if key is None:
            return True
        if key in self._seen:
            return False
        self._seen.add(key)
        return True


def iter_quotient_tableaux(
    tableau: Tableau, *, dedup: bool = False
) -> Iterator[Tableau]:
    """All quotients of a tableau, one per set partition of its domain.

    The identity quotient (the tableau itself) is included.  The number of
    quotients is ``bell_number(|domain|)``; with ``dedup=True`` isomorphic
    quotients are pruned (best-effort — see the module docstring: the
    adaptive cutoff can re-admit duplicates on asymmetric bases), which can
    leave far fewer.

    The dedup path canonizes straight off the partition — facts mapped to
    integer block ids, no ``Structure`` built — so duplicated quotients cost
    one canonical-form computation and nothing else.
    """
    elements = sorted(tableau.structure.domain, key=repr)
    if not dedup:
        for partition in set_partitions(elements):
            yield tableau.rename(partition_to_mapping(partition))
        return

    structure = tableau.structure
    index_of = {element: index for index, element in enumerate(elements)}
    names = sorted(name for name, rows in structure.relations.items() if rows)
    base_facts = [
        (relation_id, tuple(index_of[value] for value in row))
        for relation_id, name in enumerate(names)
        for row in structure.relations[name]
    ]
    covered = {value for _, row in base_facts for value in row}
    covered.update(index_of[d] for d in tableau.distinguished)
    if len(covered) < len(elements):
        # Isolated elements (possible only with an explicitly enlarged
        # domain) would defeat the integer fast path's refinement; fall back
        # to tableau-level canonical forms, which handle them.
        seen = _CanonicalSeen()
        for partition in set_partitions(elements):
            quotient = tableau.rename(partition_to_mapping(partition))
            if seen.first_sighting(quotient):
                yield quotient
        return

    distinguished_idx = tuple(index_of[d] for d in tableau.distinguished)
    automorphisms = _automorphism_inverses(tableau, elements, index_of)
    seen_keys: set[tuple] = set()
    n_elements = len(elements)
    code = [0] * n_elements
    # Deduplication pays for itself only when enough partitions actually
    # collapse onto already-seen isomorphism classes (the canonization of a
    # unique candidate is pure overhead).  Track the duplicate rate over an
    # early prefix and fall back to plain enumeration when the base tableau
    # turns out to be too asymmetric for dedup to win.
    checked = duplicates = 0
    dedup_active, decided = True, False
    for partition in set_partitions(elements):
        if len(partition) == n_elements:
            # The identity quotient: the only partition with |domain| blocks,
            # and isomorphism preserves block count, so it cannot duplicate
            # (or be duplicated by) anything — skip the canonization.
            yield tableau.rename(partition_to_mapping(partition))
            continue
        if not decided and checked >= _ADAPTIVE_PREFIX:
            decided = True
            dedup_active = duplicates >= checked * _ADAPTIVE_MIN_DUP_RATE
        if not dedup_active:
            yield tableau.rename(partition_to_mapping(partition))
            continue
        for block_id, block in enumerate(partition):
            for element in block:
                code[index_of[element]] = block_id
        checked += 1
        if automorphisms and not _orbit_minimal(code, n_elements, automorphisms):
            duplicates += 1
            continue
        mapped_facts = sorted(
            {
                (relation_id, tuple(code[value] for value in row))
                for relation_id, row in base_facts
            }
        )
        key = canonical_key_indexed(
            len(partition),
            mapped_facts,
            tuple(code[value] for value in distinguished_idx),
        )
        if key is not None:
            if key in seen_keys:
                duplicates += 1
                continue
            seen_keys.add(key)
        yield tableau.rename(partition_to_mapping(partition))


def quotient_count(tableau: Tableau) -> int:
    return bell_number(len(tableau.structure.domain))


def iter_extension_atoms(
    structure: Structure,
    *,
    allow_fresh: bool = True,
    min_cover: int = 2,
) -> Iterator[tuple[str, tuple]]:
    """Candidate extension atoms over a quotient's domain.

    Each candidate is a fact ``R(t)`` whose entries are existing elements or
    fresh padding variables (marked as ``("fresh", i)`` placeholders, later
    renamed).  Mirroring Claim 6.2's extension tuples we require the atom to
    cover at least ``min_cover`` existing elements — extension atoms exist to
    cover (hyper-)edges, and covers of fewer than two elements cannot change
    the hypergraph's cyclicity.
    """
    domain = sorted(structure.domain, key=repr)
    for name in sorted(structure.vocabulary):
        arity = structure.arity(name)
        pool: list = list(domain)
        if allow_fresh:
            pool = pool + [None]  # None = a fresh element at this position
        for pattern in itertools.product(pool, repeat=arity):
            concrete = [value for value in pattern if value is not None]
            if len(set(concrete)) < min_cover:
                continue
            fresh_index = itertools.count()
            row = tuple(
                ("fresh", next(fresh_index)) if value is None else value
                for value in pattern
            )
            if row in structure.tuples(name):
                continue
            yield name, row


def _with_extensions(
    base: Tableau, extras: tuple[tuple[str, tuple], ...]
) -> Tableau:
    """Attach extension atoms, renaming fresh markers to real fresh names."""
    namer = fresh_names(
        {str(value) for value in base.structure.domain}, prefix="z"
    )
    facts = []
    for name, row in extras:
        concrete_row = tuple(
            next(namer) if isinstance(value, tuple) and value and value[0] == "fresh"
            else value
            for value in row
        )
        facts.append((name, concrete_row))
    return Tableau(base.structure.add_facts(facts), base.distinguished)


def iter_extended_tableaux(
    tableau: Tableau,
    *,
    max_extra_atoms: int = 1,
    allow_fresh: bool = True,
    dedup: bool = False,
) -> Iterator[Tableau]:
    """Quotients plus up to ``max_extra_atoms`` extension atoms each.

    This is the hypergraph-class candidate space (Theorem 6.1 / Claim 6.2),
    truncated by ``max_extra_atoms``: the paper's bound on extension tuples
    is polynomial in ``|Q|``, and the enumeration cost grows steeply, so the
    cap is an explicit knob.  With ``max_extra_atoms=0`` this degenerates to
    plain quotients.  ``dedup=True`` prunes isomorphic candidates (again
    best-effort), both at the quotient level — skipping a duplicated
    quotient skips its whole extension family, which is isomorphic to the
    kept copy's — and among the extended tableaux themselves.  An extended
    candidate that happens to be isomorphic to a plain quotient is not
    cross-checked (the two streams keep separate key sets, sparing every
    quotient a second canonization); such coincidences are harmless
    downstream.
    """
    seen = _CanonicalSeen() if dedup else None
    for quotient in iter_quotient_tableaux(tableau, dedup=dedup):
        yield quotient
        if max_extra_atoms <= 0:
            continue
        extension_pool = list(
            iter_extension_atoms(quotient.structure, allow_fresh=allow_fresh)
        )
        for count in range(1, max_extra_atoms + 1):
            for extras in itertools.combinations(extension_pool, count):
                extended = _with_extensions(quotient, extras)
                if seen is None or seen.first_sighting(extended):
                    yield extended
