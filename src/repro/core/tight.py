"""Tight approximations (Proposition 5.6).

``Q'`` is a *tight* C-approximation of ``Q`` when additionally no CQ at all
(from any class) sits strictly between: there is no ``Q''`` with
``Q' ⊂ Q'' ⊂ Q``.  The paper exhibits an infinite family: the digraphs
``G_k`` (two directed paths with shifted cross edges, the core of
``F_k × P_{k+1}`` from the Nešetřil–Tardif gap machinery) and the paths
``P_{k+1}``.

Unlike the identification problem, strict betweenness has no obvious
bounded witness space (the paper derives its gaps from the Nešetřil–Tardif
duality machinery rather than from an algorithm).  ``gap_witness`` therefore
performs a *sound* search over two bounded families — homomorphic images
(quotients) of the upper tableau and fact-substructures of the lower
tableau — verifying all betweenness conditions explicitly.  A returned
witness always disproves the gap; exhaustion certifies the gap relative to
the searched families (which cover the path/gadget instances of
Proposition 5.6: the natural witnesses between path queries are sub-paths
of the lower tableau).
"""

from __future__ import annotations

from repro.cq.containment import is_contained_in, is_strictly_contained_in
from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.core.approximation import ApproximationConfig, DEFAULT_CONFIG
from repro.core.classes import QueryClass
from repro.core.identification import is_approximation
from repro.core.quotients import iter_quotient_tableaux
from repro.graphs.gadgets import tight_g_k
from repro.graphs.oriented_paths import directed_path
from repro.homomorphism.orders import hom_le


def _is_between(witness: Tableau, lower_tab: Tableau, upper_tab: Tableau) -> bool:
    """All four strict-betweenness conditions, checked explicitly.

    ``lower ⊂ W ⊂ upper`` in query terms is, on tableaux:
    ``T_upper → W`` and ``W ↛ T_upper`` (strictly below upper), and
    ``W → T_lower`` and ``T_lower ↛ W`` (strictly above lower).
    """
    return (
        hom_le(upper_tab, witness)
        and not hom_le(witness, upper_tab)
        and hom_le(witness, lower_tab)
        and not hom_le(lower_tab, witness)
    )


def _fact_substructures(tableau: Tableau, *, max_facts: int = 14):
    """All substructures of a tableau induced by non-empty fact subsets."""
    import itertools

    facts = list(tableau.structure.facts())
    if len(facts) > max_facts:
        return
    needed = set(tableau.distinguished)
    for size in range(1, len(facts)):
        for subset in itertools.combinations(facts, size):
            structure = Structure(
                {},
                vocabulary=tableau.structure.vocabulary,
            ).add_facts(subset)
            if not needed <= structure.domain:
                continue
            yield Tableau(structure, tableau.distinguished)


def gap_witness(
    lower: ConjunctiveQuery,
    upper: ConjunctiveQuery,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> ConjunctiveQuery | None:
    """A CQ strictly between ``lower ⊂ Q'' ⊂ upper``, or ``None``.

    Sound: any returned query verifiably sits strictly between.  The search
    covers homomorphic images of ``T_upper`` and fact-substructures of
    ``T_lower`` (see the module docstring for the completeness discussion).
    Assumes ``lower ⊆ upper``.
    """
    if not is_contained_in(lower, upper):
        raise ValueError("gap_witness expects lower ⊆ upper")
    upper_tab = upper.tableau()
    if len(upper_tab.structure.domain) > config.exact_limit:
        raise ValueError(
            f"upper query has {len(upper_tab.structure.domain)} variables; "
            f"gap checking is capped at exact_limit={config.exact_limit}"
        )
    lower_tab = lower.tableau()

    for witness in iter_quotient_tableaux(upper_tab):
        if _is_between(witness, lower_tab, upper_tab):
            return ConjunctiveQuery.from_tableau(witness, prefix="g")
    for witness in _fact_substructures(lower_tab):
        if _is_between(witness, lower_tab, upper_tab):
            return ConjunctiveQuery.from_tableau(witness, prefix="g")
    return None


def has_gap(
    lower: ConjunctiveQuery,
    upper: ConjunctiveQuery,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> bool:
    """Whether nothing lies strictly between ``lower`` and ``upper``."""
    return gap_witness(lower, upper, config) is None


def is_tight_approximation(
    query: ConjunctiveQuery,
    candidate: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> bool:
    """Tightness: a C-approximation with a gap up to ``query``."""
    if not is_approximation(query, candidate, cls, config):
        return False
    if not is_strictly_contained_in(candidate, query):
        return False
    return has_gap(candidate, query, config)


def tight_pair(n: int) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """The Proposition 5.6 pair ``(Q_n, Q'_n)``.

    ``Q_n`` has tableau ``G_{n+2}`` and ``Q'_n`` has tableau ``P_{n+3}``;
    for every ``n ≥ 1``, ``Q'_n`` is a tight acyclic approximation of
    ``Q_n``.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    query = ConjunctiveQuery.from_tableau(Tableau(tight_g_k(n + 2)), prefix="q")
    path = directed_path(n + 3)
    approx = ConjunctiveQuery.from_tableau(Tableau(path.structure), prefix="p")
    return query, approx
