"""Strong treewidth approximations (Section 5.3).

``Q'`` is a *strong treewidth approximation* of ``Q`` when ``Q'`` is a
TW(1)-approximation of ``Q`` and ``Q`` has the maximum possible treewidth
(> 1), i.e. its graph is a complete graph on its variables.  Over graphs the
notion trivializes (only ``Q_triv`` qualifies); for arity ``m > 2`` the
section shows rich behavior:

* Proposition 5.13 — every nontrivial *potential* strong treewidth
  approximation (a Boolean query over one m-ary relation whose graph has at
  most two nodes) is a strong treewidth approximation of some ``Q`` with
  ``n`` variables, for every ``n > m``;
* Proposition 5.14 — the approximation need not reduce joins (a same-join
  pair for every arity k ≥ 3);
* Proposition 5.15 — already for ternary relations, an *almost-triangle*
  tableau of maximum treewidth 3 with a same-join strong treewidth
  approximation.
"""

from __future__ import annotations

import networkx as nx

from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structure import Structure


def graph_is_complete(query: ConjunctiveQuery) -> bool:
    """Whether ``G(Q)`` is the complete graph on the query's variables."""
    graph = query.graph()
    n = graph.number_of_nodes()
    simple = nx.Graph((u, v) for u, v in graph.edges if u != v)
    return simple.number_of_edges() == n * (n - 1) // 2


def has_maximum_treewidth(query: ConjunctiveQuery) -> bool:
    """Whether ``Q`` has the maximum possible treewidth ``n - 1``."""
    return graph_is_complete(query)


def is_potential_strong_tw_approximation(query: ConjunctiveQuery) -> bool:
    """At most two variables, Boolean, single relation — ``G(Q')`` ≤ 2 nodes."""
    return query.is_boolean and len(query.variables) <= 2 and len(query.vocabulary) == 1


def is_strong_tw_approximation(
    query: ConjunctiveQuery,
    candidate: ConjunctiveQuery,
    config=None,
) -> bool:
    """Definition of Section 5.3 (checked with the identification procedure)."""
    from repro.core.approximation import DEFAULT_CONFIG
    from repro.core.classes import TreewidthClass
    from repro.core.identification import is_approximation

    if not has_maximum_treewidth(query) or query.num_variables <= 2:
        return False
    return is_approximation(
        query, candidate, TreewidthClass(1), config or DEFAULT_CONFIG
    )


# ---------------------------------------------------------- Proposition 5.13


def _case_one(chosen: Atom, minority: str, majority: str, xs: list[str],
              relation: str) -> list[Atom]:
    """Atoms from an anchor atom whose minority variable occurs twice:
    ``R(x1,...,x1, xi, xj)`` for all ``2 ≤ i ≤ j ≤ n``."""
    n = len(xs)
    pair_positions = [p for p, v in enumerate(chosen.args) if v == minority]
    atoms: list[Atom] = []
    for i in range(2, n + 1):
        for j in range(i, n + 1):
            row = [xs[0] if v == majority else v for v in chosen.args]
            row[pair_positions[0]] = xs[i - 1]
            row[pair_positions[1]] = xs[j - 1]
            atoms.append(Atom(relation, tuple(row)))
    return atoms


def _case_two(chosen: Atom, minority: str, majority: str, xs: list[str],
              relation: str) -> list[Atom]:
    """Atoms from an anchor whose minority variable occurs ``p ≥ 3`` times:
    ``R(x1,...,x1, x2,...,x_{p-1}, xi, xj)`` for ``p ≤ i < j ≤ n`` plus the
    collapse atoms ``R(x1,...,x1, xi,...,xi)`` for ``2 ≤ i ≤ n``."""
    n = len(xs)
    positions = [p for p, v in enumerate(chosen.args) if v == minority]
    p = len(positions)
    atoms: list[Atom] = []
    for i in range(p, n + 1):
        for j in range(i + 1, n + 1):
            row = [xs[0] if v == majority else v for v in chosen.args]
            for index, position in enumerate(positions[:-2]):
                row[position] = xs[index + 1]
            row[positions[-2]] = xs[i - 1]
            row[positions[-1]] = xs[j - 1]
            atoms.append(Atom(relation, tuple(row)))
    for i in range(2, n + 1):
        row = [xs[0] if v == majority else xs[i - 1] for v in chosen.args]
        atoms.append(Atom(relation, tuple(row)))
    return atoms


def prop_513_query(q_prime: ConjunctiveQuery, n: int) -> ConjunctiveQuery:
    """The query ``Q`` built from a potential approximation (Prop. 5.13).

    Both cases of the proof are implemented: an anchor atom whose repeated
    variable occurs exactly twice (first case) or at least three times
    (second case, taking the atom with the fewest repetitions).  ``Q`` has
    variables ``x1..xn`` with ``G(Q) = K_n``.
    """
    if not is_potential_strong_tw_approximation(q_prime):
        raise ValueError("q_prime must be a potential strong treewidth approximation")
    if len(q_prime.variables) != 2:
        raise ValueError("the construction needs a two-variable approximation")
    (relation,) = q_prime.vocabulary
    m = q_prime.vocabulary[relation]
    if n <= m:
        raise ValueError(f"need n > m = {m}")

    first, second = q_prime.variables

    def repeated_counts(atom: Atom) -> list[tuple[int, str]]:
        return sorted(
            (atom.args.count(v), v)
            for v in (first, second)
            if atom.args.count(v) >= 2
        )

    # Case 1: an atom where some variable occurs exactly twice.
    chosen: Atom | None = None
    minority = None
    for atom in q_prime.atoms:
        for variable in (first, second):
            if atom.args.count(variable) == 2:
                chosen, minority = atom, variable
                break
        if chosen:
            break

    xs = [f"x{i}" for i in range(1, n + 1)]
    atoms: list[Atom] = []
    if chosen is not None:
        majority = second if minority == first else first
        atoms.extend(_case_one(chosen, minority, majority, xs, relation))
    else:
        # Case 2: the atom with the minimum number p >= 3 of repetitions.
        best: tuple[int, str, Atom] | None = None
        for atom in q_prime.atoms:
            for count, variable in repeated_counts(atom):
                if best is None or count < best[0]:
                    best = (count, variable, atom)
        if best is None:
            raise ValueError("q_prime has no atom with a repeated variable")
        _, minority, chosen = best
        majority = second if minority == first else first
        atoms.extend(_case_two(chosen, minority, majority, xs, relation))

    for atom in q_prime.atoms:
        if atom == chosen:
            continue
        row = []
        seen_minority = 0
        for v in atom.args:
            if v == majority:
                row.append(xs[0])
            else:
                seen_minority += 1
                row.append(xs[seen_minority])
        atoms.append(Atom(relation, tuple(row)))
    return ConjunctiveQuery((), atoms)


# ---------------------------------------------------------- Proposition 5.14


def prop_514_pair(k: int) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """The same-join pair ``(Q, Q')`` of Proposition 5.14 for arity ``k``."""
    if k < 3:
        raise ValueError("k must be at least 3")
    xs = [f"x{i}" for i in range(1, k + 2)]  # x1..x_{k+1}
    tail = xs[3:k]  # x4..xk

    atoms = [
        Atom("R", tuple([xs[0], xs[1], xs[2], *tail])),
        Atom("R", tuple([xs[1], xs[0], xs[k], *tail])),
        Atom("R", tuple([xs[2], xs[k], xs[0], *tail])),
    ]
    for j in range(4, k + 1):
        row = [xs[j - 1]] * k
        row[j - 1] = xs[0]
        atoms.append(Atom("R", tuple(row)))
    query = ConjunctiveQuery((), atoms)

    approx_atoms = []
    for position in range(k):
        row = ["y"] * k
        row[position] = "x"
        approx_atoms.append(Atom("R", tuple(row)))
    approximation = ConjunctiveQuery((), approx_atoms)
    return query, approximation


# ---------------------------------------------------------- Proposition 5.15


def prop_515_pair() -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """The almost-triangle pair of Proposition 5.15."""
    query = parse_query("Q() :- R(x1, x2, x3), R(x2, x1, x4), R(x4, x3, x1)")
    approximation = parse_query("Q() :- R(x, y, y), R(y, x, y), R(y, y, x)")
    return query, approximation


def is_almost_triangle(structure: Structure) -> bool:
    """Whether a ternary-relation instance is an almost-triangle.

    Some element belongs to every triple, and deleting its occurrences
    leaves three pairs forming a triangle (three distinct unordered pairs
    over three elements).
    """
    names = [name for name in structure.vocabulary if structure.arity(name) == 3]
    if len(names) != 1 or len(structure.vocabulary) != 1:
        return False
    triples = sorted(structure.tuples(names[0]), key=repr)
    if len(triples) != 3:
        return False
    shared = set(triples[0])
    for triple in triples[1:]:
        shared &= set(triple)
    for center in shared:
        pairs = set()
        ok = True
        for triple in triples:
            rest = tuple(v for v in triple if v != center)
            if len(rest) != 2 or rest[0] == rest[1]:
                ok = False
                break
            pairs.add(frozenset(rest))
        if not ok:
            continue
        vertices = set().union(*pairs) if pairs else set()
        if len(pairs) == 3 and len(vertices) == 3:
            return True
    return False
