"""Deciding equivalence to a tractable class via the approximation oracle.

Proposition 4.11: if TW(k)-approximations were computable in polynomial
time, then P = NP — because ``Q`` is equivalent to a TW(k) query iff
``Q ⊆ A(Q)`` for any TW(k)-approximation ``A(Q)`` of ``Q``, and the latter
containment amounts to evaluating the bounded-treewidth query ``A(Q)`` on
the tableau of ``Q`` (polynomial).  This module implements that reduction
with our (exponential) approximation algorithm as the oracle.
"""

from __future__ import annotations

from repro.cq.containment import is_contained_in
from repro.cq.query import ConjunctiveQuery
from repro.core.approximation import ApproximationConfig, DEFAULT_CONFIG, approximate
from repro.core.classes import QueryClass, TreewidthClass


def is_equivalent_to_class(
    query: ConjunctiveQuery,
    cls: QueryClass,
    config: ApproximationConfig = DEFAULT_CONFIG,
) -> bool:
    """Whether ``Q`` is equivalent to some query of the class.

    Implements the Proposition 4.11 reduction: compute an approximation and
    test the reverse containment.
    """
    approximation = approximate(query, cls, method="exact", config=config)
    return is_contained_in(query, approximation)


def is_equivalent_to_treewidth_k(
    query: ConjunctiveQuery, k: int, config: ApproximationConfig = DEFAULT_CONFIG
) -> bool:
    """``Q ≡ some TW(k) query?`` — the NP-complete problem of [12]."""
    return is_equivalent_to_class(query, TreewidthClass(k), config)
