"""Empirical approximation quality — the quantitative angle of Section 7.

The paper develops the *qualitative* theory and leaves quantitative
guarantees (how often does an approximation disagree?) to future work.
This module provides the measurement tooling: evaluate ``Q`` and ``Q'``
side by side over sampled databases and report the disagreement statistics.
For an underapproximation the only possible disagreement is a false
negative (``ā ∈ Q(D) \\ Q'(D)``), which :func:`disagreement` verifies.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Iterable

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.engine import evaluate
from repro.evaluation.kernels import DEFAULT_ENGINE
from repro.parallel import make_executor


@dataclass(frozen=True)
class QualityReport:
    """Aggregated agreement statistics over sampled databases."""

    samples: int
    exact_answers: int
    approx_answers: int
    missed_answers: int          # in Q(D) but not Q'(D) — the only legal gap
    wrong_answers: int           # in Q'(D) but not Q(D) — must stay 0
    agreeing_databases: int      # databases with identical answer sets

    @property
    def recall(self) -> float:
        """Fraction of exact answers the approximation recovered."""
        if self.exact_answers == 0:
            return 1.0
        return self.approx_answers / self.exact_answers

    @property
    def agreement_rate(self) -> float:
        if self.samples == 0:
            return 1.0
        return self.agreeing_databases / self.samples

    @property
    def is_sound(self) -> bool:
        """Underapproximation soundness: no wrong answers anywhere."""
        return self.wrong_answers == 0


def _disagreement_sample(payload: tuple) -> tuple[int, int, int, int, int]:
    """One database's agreement counters (picklable pool task)."""
    query, approximation, db, exact_method, approx_method = payload
    exact = evaluate(query, db, method=exact_method)
    approx = evaluate(approximation, db, method=approx_method)
    return (
        len(exact),
        len(approx & exact),
        len(exact - approx),
        len(approx - exact),
        int(exact == approx),
    )


def disagreement(
    query: ConjunctiveQuery,
    approximation: ConjunctiveQuery,
    databases: Iterable[Structure],
    *,
    exact_method: str = "auto",
    approx_method: str = "auto",
    workers: int = 1,
) -> QualityReport:
    """Measure ``Q`` vs ``Q'`` over the given databases.

    Per-database evaluation pairs are independent, so with ``workers > 1``
    they spread over the pipeline's process pool (the database stream is
    consumed lazily with bounded lookahead); the aggregated report is
    identical for any worker count.
    """
    samples = exact_total = approx_total = missed = wrong = agreeing = 0
    payloads = (
        (query, approximation, db, exact_method, approx_method)
        for db in databases
    )
    with make_executor(workers) as executor:
        for exact_n, agree_n, missed_n, wrong_n, same in executor.imap(
            _disagreement_sample, payloads
        ):
            samples += 1
            exact_total += exact_n
            approx_total += agree_n
            missed += missed_n
            wrong += wrong_n
            agreeing += same
    return QualityReport(
        samples=samples,
        exact_answers=exact_total,
        approx_answers=approx_total,
        missed_answers=missed,
        wrong_answers=wrong,
        agreeing_databases=agreeing,
    )


def random_database_stream(
    generator: Callable[[int], Structure], count: int
) -> Iterable[Structure]:
    """A convenience stream of ``count`` databases from a seeded generator."""
    return (generator(seed) for seed in range(count))


@dataclass(frozen=True)
class ApproxEvalReport:
    """One approximate-then-evaluate run: the paper's headline trade.

    Compute a C-approximation ``Q'`` of ``Q``, evaluate both on the same
    instance, and report what the approximation bought (wall time) and
    what it cost (recall).  ``wrong_answers`` must be 0 — a
    C-approximation is an underapproximation (``Q' ⊆ Q``), so the only
    legal disagreement is a missed answer (the containment gap).
    """

    query: str
    approximation: str
    cls: str
    engine: str
    db_tuples: int
    exact_answers: int
    approx_answers: int
    missed_answers: int
    wrong_answers: int
    approximation_seconds: float
    exact_eval_seconds: float
    approx_eval_seconds: float

    @property
    def recall(self) -> float:
        """Fraction of exact answers the approximation recovered."""
        if self.exact_answers == 0:
            return 1.0
        return self.approx_answers / self.exact_answers

    @property
    def containment_gap(self) -> int:
        """Answers of ``Q(D)`` the approximation misses (``missed_answers``)."""
        return self.missed_answers

    @property
    def walltime_ratio(self) -> float:
        """Exact-over-approximate evaluation time (``> 1`` = approx wins)."""
        if self.approx_eval_seconds <= 0:
            return float("inf")
        return self.exact_eval_seconds / self.approx_eval_seconds

    @property
    def is_sound(self) -> bool:
        return self.wrong_answers == 0

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["recall"] = self.recall
        payload["containment_gap"] = self.containment_gap
        payload["walltime_ratio"] = self.walltime_ratio
        payload["is_sound"] = self.is_sound
        return payload


def approximate_then_evaluate(
    query: ConjunctiveQuery,
    cls,
    db: Structure,
    *,
    engine: str = DEFAULT_ENGINE,
    approx_method: str = "auto",
    exact_eval_method: str = "auto",
    approx_eval_method: str = "auto",
    config=None,
) -> ApproxEvalReport:
    """The end-to-end pitch of the paper, measured on one instance.

    Approximates ``Q`` by a member of ``cls`` (the query-side pipeline),
    evaluates both queries on ``db`` through the selected evaluation
    ``engine``, and reports recall, containment gap and the wall-time
    ratio.  The approximation time is reported separately: it depends only
    on ``|Q|``, so on growing data it amortizes to zero — exactly the
    argument of the introduction.
    """
    from repro.core.approximation import DEFAULT_CONFIG, approximate

    if config is None:
        config = DEFAULT_CONFIG
    started = time.perf_counter()
    approximation = approximate(query, cls, method=approx_method, config=config)
    approximated = time.perf_counter()
    exact = evaluate(query, db, method=exact_eval_method, engine=engine)
    exact_done = time.perf_counter()
    approx = evaluate(approximation, db, method=approx_eval_method, engine=engine)
    approx_done = time.perf_counter()
    return ApproxEvalReport(
        query=str(query),
        approximation=str(approximation),
        cls=cls.name,
        engine=engine,
        db_tuples=db.total_tuples,
        exact_answers=len(exact),
        approx_answers=len(approx & exact),
        missed_answers=len(exact - approx),
        wrong_answers=len(approx - exact),
        approximation_seconds=approximated - started,
        exact_eval_seconds=exact_done - approximated,
        approx_eval_seconds=approx_done - exact_done,
    )
