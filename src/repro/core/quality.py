"""Empirical approximation quality — the quantitative angle of Section 7.

The paper develops the *qualitative* theory and leaves quantitative
guarantees (how often does an approximation disagree?) to future work.
This module provides the measurement tooling: evaluate ``Q`` and ``Q'``
side by side over sampled databases and report the disagreement statistics.
For an underapproximation the only possible disagreement is a false
negative (``ā ∈ Q(D) \\ Q'(D)``), which :func:`disagreement` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.engine import evaluate
from repro.parallel import make_executor


@dataclass(frozen=True)
class QualityReport:
    """Aggregated agreement statistics over sampled databases."""

    samples: int
    exact_answers: int
    approx_answers: int
    missed_answers: int          # in Q(D) but not Q'(D) — the only legal gap
    wrong_answers: int           # in Q'(D) but not Q(D) — must stay 0
    agreeing_databases: int      # databases with identical answer sets

    @property
    def recall(self) -> float:
        """Fraction of exact answers the approximation recovered."""
        if self.exact_answers == 0:
            return 1.0
        return self.approx_answers / self.exact_answers

    @property
    def agreement_rate(self) -> float:
        if self.samples == 0:
            return 1.0
        return self.agreeing_databases / self.samples

    @property
    def is_sound(self) -> bool:
        """Underapproximation soundness: no wrong answers anywhere."""
        return self.wrong_answers == 0


def _disagreement_sample(payload: tuple) -> tuple[int, int, int, int, int]:
    """One database's agreement counters (picklable pool task)."""
    query, approximation, db, exact_method, approx_method = payload
    exact = evaluate(query, db, method=exact_method)
    approx = evaluate(approximation, db, method=approx_method)
    return (
        len(exact),
        len(approx & exact),
        len(exact - approx),
        len(approx - exact),
        int(exact == approx),
    )


def disagreement(
    query: ConjunctiveQuery,
    approximation: ConjunctiveQuery,
    databases: Iterable[Structure],
    *,
    exact_method: str = "auto",
    approx_method: str = "auto",
    workers: int = 1,
) -> QualityReport:
    """Measure ``Q`` vs ``Q'`` over the given databases.

    Per-database evaluation pairs are independent, so with ``workers > 1``
    they spread over the pipeline's process pool (the database stream is
    consumed lazily with bounded lookahead); the aggregated report is
    identical for any worker count.
    """
    samples = exact_total = approx_total = missed = wrong = agreeing = 0
    payloads = (
        (query, approximation, db, exact_method, approx_method)
        for db in databases
    )
    with make_executor(workers) as executor:
        for exact_n, agree_n, missed_n, wrong_n, same in executor.imap(
            _disagreement_sample, payloads
        ):
            samples += 1
            exact_total += exact_n
            approx_total += agree_n
            missed += missed_n
            wrong += wrong_n
            agreeing += same
    return QualityReport(
        samples=samples,
        exact_answers=exact_total,
        approx_answers=approx_total,
        missed_answers=missed,
        wrong_answers=wrong,
        agreeing_databases=agreeing,
    )


def random_database_stream(
    generator: Callable[[int], Structure], count: int
) -> Iterable[Structure]:
    """A convenience stream of ``count`` databases from a seeded generator."""
    return (generator(seed) for seed in range(count))
