"""Empirical approximation quality — the quantitative angle of Section 7.

The paper develops the *qualitative* theory and leaves quantitative
guarantees (how often does an approximation disagree?) to future work.
This module provides the measurement tooling: evaluate ``Q`` and ``Q'``
side by side over sampled databases and report the disagreement statistics.
For an underapproximation the only possible disagreement is a false
negative (``ā ∈ Q(D) \\ Q'(D)``), which :func:`disagreement` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cq.query import ConjunctiveQuery
from repro.cq.structure import Structure
from repro.evaluation.engine import evaluate


@dataclass(frozen=True)
class QualityReport:
    """Aggregated agreement statistics over sampled databases."""

    samples: int
    exact_answers: int
    approx_answers: int
    missed_answers: int          # in Q(D) but not Q'(D) — the only legal gap
    wrong_answers: int           # in Q'(D) but not Q(D) — must stay 0
    agreeing_databases: int      # databases with identical answer sets

    @property
    def recall(self) -> float:
        """Fraction of exact answers the approximation recovered."""
        if self.exact_answers == 0:
            return 1.0
        return self.approx_answers / self.exact_answers

    @property
    def agreement_rate(self) -> float:
        if self.samples == 0:
            return 1.0
        return self.agreeing_databases / self.samples

    @property
    def is_sound(self) -> bool:
        """Underapproximation soundness: no wrong answers anywhere."""
        return self.wrong_answers == 0


def disagreement(
    query: ConjunctiveQuery,
    approximation: ConjunctiveQuery,
    databases: Iterable[Structure],
    *,
    exact_method: str = "auto",
    approx_method: str = "auto",
) -> QualityReport:
    """Measure ``Q`` vs ``Q'`` over the given databases."""
    samples = exact_total = approx_total = missed = wrong = agreeing = 0
    for db in databases:
        samples += 1
        exact = evaluate(query, db, method=exact_method)
        approx = evaluate(approximation, db, method=approx_method)
        exact_total += len(exact)
        approx_total += len(approx & exact)
        missed += len(exact - approx)
        wrong += len(approx - exact)
        if exact == approx:
            agreeing += 1
    return QualityReport(
        samples=samples,
        exact_answers=exact_total,
        approx_answers=approx_total,
        missed_answers=missed,
        wrong_answers=wrong,
        agreeing_databases=agreeing,
    )


def random_database_stream(
    generator: Callable[[int], Structure], count: int
) -> Iterable[Structure]:
    """A convenience stream of ``count`` databases from a seeded generator."""
    return (generator(seed) for seed in range(count))
