"""repro — a reproduction of "Efficient Approximations of Conjunctive Queries"
(Barceló, Libkin, Romero; PODS 2012).

The package provides:

* ``repro.cq`` — conjunctive queries, structures, tableaux, containment,
  minimization;
* ``repro.homomorphism`` — the homomorphism engine, cores and the
  homomorphism preorder;
* ``repro.graphs`` — digraph theory (oriented paths, balancedness, levels,
  colorings) and the paper's gadget constructions;
* ``repro.hypergraphs`` — acyclicity (GYO), tree decompositions, treewidth,
  (generalized) hypertree width;
* ``repro.evaluation`` — the query evaluation engine (naive, Yannakakis,
  bounded treewidth, bounded hypertree width);
* ``repro.core`` — the paper's contribution: C-approximations, their
  identification, trichotomies and structure theorems;
* ``repro.workloads`` — random query/database generators and the paper's
  query families.
"""

__version__ = "1.0.0"

from repro.cq import (
    Atom,
    ConjunctiveQuery,
    Structure,
    Tableau,
    Vocabulary,
    are_equivalent,
    is_contained_in,
    minimize,
    parse_query,
)
from repro.core import (
    AC,
    TW1,
    AcyclicClass,
    ApproximationConfig,
    GeneralizedHypertreeClass,
    HypertreeClass,
    TreewidthClass,
    all_approximations,
    approximate,
    classify_boolean_graph_query,
    is_approximation,
)
from repro.evaluation import EvalStats, evaluate

__all__ = [
    "AC",
    "AcyclicClass",
    "ApproximationConfig",
    "Atom",
    "ConjunctiveQuery",
    "EvalStats",
    "GeneralizedHypertreeClass",
    "HypertreeClass",
    "Structure",
    "TW1",
    "Tableau",
    "TreewidthClass",
    "Vocabulary",
    "all_approximations",
    "approximate",
    "are_equivalent",
    "classify_boolean_graph_query",
    "evaluate",
    "is_approximation",
    "is_contained_in",
    "minimize",
    "parse_query",
    "__version__",
]
