"""The homomorphism preorder on structures and tableaux.

The paper works with two dual preorders: containment of CQs and the existence
of homomorphisms between their tableaux (``Q ⊆ Q' ⇔ T_Q' → T_Q``).  This
module provides the tableau side: ``hom_le``, strictness (the paper's ``⥮``
symbol, rendered ``upslope`` in the text: ``D ⥮ D'`` iff ``D → D'`` but not
``D' → D``), and homomorphic equivalence.

All order queries delegate to the shared
:class:`~repro.homomorphism.engine.HomEngine`, which memoizes verdicts under
canonical tableau forms and refutes most negatives via signature fast paths —
the approximation frontier issues the same comparisons over and over, so the
memo is what keeps Corollary 4.3's enumeration tractable.
"""

from __future__ import annotations

from repro.cq.tableau import Tableau
from repro.homomorphism.engine import default_engine


def tableau_hom(source: Tableau, target: Tableau) -> dict | None:
    """A homomorphism of tableaux ``(D1, ā1) → (D2, ā2)``, or ``None``.

    The distinguished tuple of the source must be mapped position-wise onto
    the distinguished tuple of the target.
    """
    return default_engine().tableau_hom(source, target)


def hom_le(source: Tableau, target: Tableau) -> bool:
    """Whether ``source → target`` in the homomorphism preorder."""
    return default_engine().hom_le(source, target)


def hom_equivalent(a: Tableau, b: Tableau) -> bool:
    """Homomorphic equivalence: both directions hold (same core)."""
    return default_engine().hom_equivalent(a, b)


def strictly_below(a: Tableau, b: Tableau) -> bool:
    """The paper's strict order: ``a → b`` holds but ``b → a`` does not."""
    return default_engine().strictly_below(a, b)
