"""The homomorphism preorder on structures and tableaux.

The paper works with two dual preorders: containment of CQs and the existence
of homomorphisms between their tableaux (``Q ⊆ Q' ⇔ T_Q' → T_Q``).  This
module provides the tableau side: ``hom_le``, strictness (the paper's ``⥮``
symbol, rendered ``upslope`` in the text: ``D ⥮ D'`` iff ``D → D'`` but not
``D' → D``), and homomorphic equivalence.
"""

from __future__ import annotations

from repro.cq.tableau import Tableau, pin_for
from repro.homomorphism.search import find_homomorphism


def tableau_hom(source: Tableau, target: Tableau) -> dict | None:
    """A homomorphism of tableaux ``(D1, ā1) → (D2, ā2)``, or ``None``.

    The distinguished tuple of the source must be mapped position-wise onto
    the distinguished tuple of the target.
    """
    pin = pin_for(source, target)
    if pin is None:
        return None
    return find_homomorphism(source.structure, target.structure, pin=pin)


def hom_le(source: Tableau, target: Tableau) -> bool:
    """Whether ``source → target`` in the homomorphism preorder."""
    return tableau_hom(source, target) is not None


def hom_equivalent(a: Tableau, b: Tableau) -> bool:
    """Homomorphic equivalence: both directions hold (same core)."""
    return hom_le(a, b) and hom_le(b, a)


def strictly_below(a: Tableau, b: Tableau) -> bool:
    """The paper's strict order: ``a → b`` holds but ``b → a`` does not."""
    return hom_le(a, b) and not hom_le(b, a)
