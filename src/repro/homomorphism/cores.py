"""Cores of structures and tableaux.

A structure ``D`` is a core if there is no homomorphism from ``D`` into a
proper substructure of ``D``; every structure has a unique core up to
isomorphism (Hell & Nešetřil), and the core of the tableau of a CQ is the
tableau of its minimized equivalent (Chandra & Merlin).

For tableaux, endomorphisms must fix the distinguished tuple point-wise, so
the distinguished elements are pinned during the search.

The endomorphism searches run through the shared
:class:`~repro.homomorphism.engine.HomEngine` (indexed targets, trailing
propagation, signature refutation); the algorithm is the classical
element-avoidance loop: a structure is a core exactly when no single element
can be avoided, and replacing the structure by the image of a found
endomorphism strictly shrinks it, so the loop terminates in at most ``|D|``
rounds.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.homomorphism.engine import default_engine

Element = Hashable


def core(
    structure: Structure, *, pinned: tuple[Element, ...] = ()
) -> tuple[Structure, dict[Element, Element]]:
    """The core of ``structure`` and a retraction onto it.

    ``pinned`` elements must be mapped to themselves by every endomorphism
    considered (they always survive into the core).  Returns the core as a
    substructure of the input, together with the composed retraction map from
    the original domain onto the core's domain.
    """
    return default_engine().core(structure, pinned=pinned)


def is_core(structure: Structure, *, pinned: tuple[Element, ...] = ()) -> bool:
    """Whether no endomorphism avoids any element (fixing ``pinned``)."""
    return default_engine().is_core(structure, pinned=pinned)


def core_tableau(tableau: Tableau) -> Tableau:
    """The core of a tableau (the tableau of the minimized query)."""
    return default_engine().core_tableau(tableau)


def retract_exists(structure: Structure, sub_domain: frozenset[Element]) -> bool:
    """Whether ``structure`` retracts into its substructure induced by ``sub_domain``.

    A retraction is an endomorphism fixing the substructure point-wise with
    image inside it.
    """
    target = structure.induced(sub_domain)
    pin = {element: element for element in sub_domain if element in structure.domain}
    return default_engine().find_homomorphism(structure, target, pin=pin) is not None
