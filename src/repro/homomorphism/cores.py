"""Cores of structures and tableaux.

A structure ``D`` is a core if there is no homomorphism from ``D`` into a
proper substructure of ``D``; every structure has a unique core up to
isomorphism (Hell & Nešetřil), and the core of the tableau of a CQ is the
tableau of its minimized equivalent (Chandra & Merlin).

For tableaux, endomorphisms must fix the distinguished tuple point-wise, so
the distinguished elements are pinned during the search.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau
from repro.homomorphism.search import find_homomorphism, image

Element = Hashable


def _identity_pin(pinned: tuple[Element, ...]) -> dict[Element, Element]:
    return {element: element for element in pinned}


def core(
    structure: Structure, *, pinned: tuple[Element, ...] = ()
) -> tuple[Structure, dict[Element, Element]]:
    """The core of ``structure`` and a retraction onto it.

    ``pinned`` elements must be mapped to themselves by every endomorphism
    considered (they always survive into the core).  Returns the core as a
    substructure of the input, together with the composed retraction map from
    the original domain onto the core's domain.

    The algorithm repeatedly looks for an endomorphism avoiding some element;
    a structure is a core exactly when no single element can be avoided, and
    replacing the structure by the image of a found endomorphism strictly
    shrinks it, so the loop terminates in at most ``|D|`` rounds.
    """
    pin = _identity_pin(pinned)
    current = structure
    retraction: dict[Element, Element] = {value: value for value in structure.domain}

    shrunk = True
    while shrunk:
        shrunk = False
        removable = sorted(current.domain - set(pinned), key=repr)
        for element in removable:
            endo = find_homomorphism(current, current.without(element), pin=pin)
            if endo is None:
                continue
            current = image(current, endo)
            retraction = {
                origin: endo[target] for origin, target in retraction.items()
            }
            shrunk = True
            break
    return current, retraction


def is_core(structure: Structure, *, pinned: tuple[Element, ...] = ()) -> bool:
    """Whether no endomorphism avoids any element (fixing ``pinned``)."""
    pin = _identity_pin(pinned)
    for element in sorted(structure.domain - set(pinned), key=repr):
        if find_homomorphism(structure, structure.without(element), pin=pin):
            return False
    return True


def core_tableau(tableau: Tableau) -> Tableau:
    """The core of a tableau (the tableau of the minimized query)."""
    cored, retraction = core(
        tableau.structure, pinned=tuple(dict.fromkeys(tableau.distinguished))
    )
    distinguished = tuple(retraction[x] for x in tableau.distinguished)
    return Tableau(cored, distinguished)


def retract_exists(structure: Structure, sub_domain: frozenset[Element]) -> bool:
    """Whether ``structure`` retracts into its substructure induced by ``sub_domain``.

    A retraction is an endomorphism fixing the substructure point-wise with
    image inside it.
    """
    target = structure.induced(sub_domain)
    pin = {element: element for element in sub_domain if element in structure.domain}
    return find_homomorphism(structure, target, pin=pin) is not None
