"""k-consistency — the existential pebble-game relaxation of homomorphism.

The paper's tractability landscape rests on the CSP connection of Kolaitis
and Vardi [30, 31]: the existential (k+1)-pebble game characterizes
bounded-treewidth evaluation, and *establishing k-consistency* is its
algorithmic side.  The procedure maintains the set of partial
homomorphisms on at most ``k+1`` source elements closed under restriction
and extension:

* if the closure becomes empty (some ``≤ k``-subset has no viable partial
  map), **no homomorphism exists** — a sound refutation;
* if the source has treewidth at most ``k``, survival of the closure is
  also *complete*: a homomorphism exists (the bags of a decomposition can
  be glued along the surviving family).

This yields a polynomial no-certificate that complements the exact engines
(`search`, `bounded_tw`), and it is the algorithm underlying the *minimal
TW(k) overapproximation* in the follow-up literature.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Mapping

from repro.cq.structure import Structure

Element = Hashable
Partial = tuple[tuple[Element, Element], ...]  # sorted (source, target) pairs


def _compatible(partial: dict, source: Structure, target: Structure) -> bool:
    """Whether a partial map violates no fact fully inside its domain."""
    scope = set(partial)
    for name, row in source.facts():
        if set(row) <= scope:
            mapped = tuple(partial[v] for v in row)
            if mapped not in target.tuples(name):
                return False
    return True


def k_consistency(
    source: Structure,
    target: Structure,
    k: int,
    *,
    pin: Mapping[Element, Element] | None = None,
) -> bool:
    """Establish k-consistency; ``False`` certifies ``source ↛ target``.

    ``True`` means the closure survived — a homomorphism *may* exist, and
    does exist whenever ``source`` has treewidth ≤ k.  Runs in time
    polynomial in ``|target|^(k+1)`` for fixed ``k``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    elements = sorted(source.domain, key=repr)
    if not elements:
        return True
    pin = dict(pin or {})

    def candidate_maps(subset: tuple[Element, ...]):
        pools = []
        for v in subset:
            pools.append([pin[v]] if v in pin else sorted(target.domain, key=repr))
        for values in itertools.product(*pools):
            partial = dict(zip(subset, values))
            if _compatible(partial, source, target):
                yield tuple(sorted(partial.items(), key=repr))

    # H[subset] = surviving partial homomorphisms on that subset.
    subsets: list[tuple[Element, ...]] = []
    for size in range(1, min(k + 1, len(elements)) + 1):
        subsets.extend(itertools.combinations(elements, size))
    families: dict[tuple[Element, ...], set[Partial]] = {
        subset: set(candidate_maps(subset)) for subset in subsets
    }
    if any(not family for family in families.values()):
        return False

    def restriction_survives(partial: Partial, subset: tuple[Element, ...]) -> bool:
        """Down-closure: every restriction must itself survive."""
        mapping = dict(partial)
        for smaller_size in range(1, len(subset)):
            for smaller in itertools.combinations(subset, smaller_size):
                restricted = tuple(
                    sorted(((v, mapping[v]) for v in smaller), key=repr)
                )
                if restricted not in families[smaller]:
                    return False
        return True

    def extension_survives(partial: Partial, subset: tuple[Element, ...]) -> bool:
        """Forth condition: every ≤ k-subset extends to any extra element."""
        if len(subset) > k:
            return True
        mapping = dict(partial)
        for extra in elements:
            if extra in subset:
                continue
            bigger = tuple(sorted((*subset, extra), key=repr))
            extended = False
            for candidate in families[bigger]:
                candidate_map = dict(candidate)
                if all(candidate_map[v] == mapping[v] for v in subset):
                    extended = True
                    break
            if not extended:
                return False
        return True

    changed = True
    while changed:
        changed = False
        for subset in subsets:
            survivors = {
                partial
                for partial in families[subset]
                if restriction_survives(partial, subset)
                and extension_survives(partial, subset)
            }
            if survivors != families[subset]:
                families[subset] = survivors
                changed = True
                if not survivors:
                    return False
    return True


def pebble_refutes(source: Structure, target: Structure, k: int) -> bool:
    """Whether the k-pebble relaxation refutes ``source → target``."""
    return not k_consistency(source, target, k)
