"""Homomorphism search between finite relational structures.

A homomorphism ``h : D1 → D2`` maps every fact of ``D1`` to a fact of ``D2``
(Section 2 of the paper).  Finding one is an NP-complete constraint
satisfaction problem; this module implements a backtracking solver with

* per-fact generalized arc consistency (the projection of each source fact's
  support set prunes the candidate sets of its variables),
* minimum-remaining-values variable ordering,
* optional externally supplied candidate sets (used to inject the
  level-preservation filter of Lemma 4.5 for balanced digraphs), and
* optional pinning of elements (used for distinguished tuples of tableaux).

All higher-level operations of the library — CQ containment, cores,
approximation orderings, even query evaluation — reduce to this search.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Iterator, Mapping

from repro.cq.structure import Structure

Element = Hashable
Assignment = dict[Element, Element]


@lru_cache(maxsize=512)
def _target_index(target: Structure) -> dict[str, tuple[tuple, ...]]:
    """Tuples of each target relation, materialized once per structure."""
    return {name: tuple(rows) for name, rows in target.relations.items()}


def _source_facts(source: Structure) -> list[tuple[str, tuple]]:
    return [(name, row) for name, row in source.facts()]


def _facts_by_element(facts: list[tuple[str, tuple]]) -> dict[Element, list[int]]:
    by_element: dict[Element, list[int]] = {}
    for index, (_, row) in enumerate(facts):
        for value in set(row):
            by_element.setdefault(value, []).append(index)
    return by_element


def _supports(
    row: tuple,
    target_rows: Iterable[tuple],
    domains: Mapping[Element, set[Element]],
) -> list[tuple]:
    """Target tuples compatible with the current candidate sets for ``row``.

    Compatibility requires position-wise membership in the candidate sets and
    consistency on repeated variables (the equality pattern of ``row``).
    """
    out = []
    for candidate in target_rows:
        seen: dict[Element, Element] = {}
        for src, dst in zip(row, candidate):
            if dst not in domains[src]:
                break
            if seen.setdefault(src, dst) != dst:
                break
        else:
            out.append(candidate)
    return out


def _propagate(
    facts: list[tuple[str, tuple]],
    target_rows: Mapping[str, tuple[tuple, ...]],
    domains: dict[Element, set[Element]],
    queue: set[int],
    facts_of: Mapping[Element, list[int]],
) -> bool:
    """Generalized arc consistency over the facts in ``queue``.

    Shrinks ``domains`` in place; returns ``False`` on a wipe-out.
    """
    while queue:
        fact_index = queue.pop()
        name, row = facts[fact_index]
        support = _supports(row, target_rows.get(name, ()), domains)
        if not support:
            return False
        for position, variable in enumerate(row):
            projected = {candidate[position] for candidate in support}
            if not domains[variable] <= projected:
                domains[variable] &= projected
                if not domains[variable]:
                    return False
                queue.update(facts_of.get(variable, ()))
    return True


def iter_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``source`` to ``target``.

    ``pin`` forces specific images; ``candidates`` restricts the search to the
    given candidate sets (a sound filter supplied by the caller).
    """
    facts = _source_facts(source)
    target_rows = _target_index(target)
    facts_of = _facts_by_element(facts)

    domains: dict[Element, set[Element]] = {}
    for element in source.domain:
        if candidates is not None and element in candidates:
            domains[element] = set(candidates[element]) & set(target.domain)
        else:
            domains[element] = set(target.domain)
    if pin:
        for element, image in pin.items():
            if element not in domains:
                raise ValueError(f"pinned element {element!r} not in source domain")
            domains[element] &= {image}
    if any(not values for values in domains.values()):
        return
    if not _propagate(facts, target_rows, domains, set(range(len(facts))), facts_of):
        return

    order_hint = sorted(domains, key=repr)

    def search(domains: dict[Element, set[Element]]) -> Iterator[Assignment]:
        unassigned = [v for v in order_hint if len(domains[v]) > 1]
        if not unassigned:
            yield {v: next(iter(values)) for v, values in domains.items()}
            return
        variable = min(unassigned, key=lambda v: len(domains[v]))
        for value in sorted(domains[variable], key=repr):
            branched = {v: set(values) for v, values in domains.items()}
            branched[variable] = {value}
            queue = set(facts_of.get(variable, ()))
            if _propagate(facts, target_rows, branched, queue, facts_of):
                yield from search(branched)

    yield from search(domains)


def find_homomorphism(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> Assignment | None:
    """One homomorphism from ``source`` to ``target``, or ``None``."""
    for hom in iter_homomorphisms(source, target, pin=pin, candidates=candidates):
        return hom
    return None


def homomorphism_exists(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> bool:
    """Whether ``source → target`` holds."""
    return find_homomorphism(source, target, pin=pin, candidates=candidates) is not None


def count_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> int:
    """Number of homomorphisms from ``source`` to ``target``."""
    return sum(1 for _ in iter_homomorphisms(source, target, pin=pin, candidates=candidates))


def image(source: Structure, hom: Mapping[Element, Element]) -> Structure:
    """The homomorphic image ``Im(h)`` of ``source`` under ``hom``."""
    return source.rename(dict(hom))


def is_homomorphism(
    source: Structure, target: Structure, mapping: Mapping[Element, Element]
) -> bool:
    """Verify that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    if any(element not in mapping for element in source.domain):
        return False
    if any(mapping[element] not in target.domain for element in source.domain):
        return False
    for name, row in source.facts():
        mapped = tuple(mapping[value] for value in row)
        if mapped not in target.tuples(name):
            return False
    return True
