"""Homomorphism search between finite relational structures.

A homomorphism ``h : D1 → D2`` maps every fact of ``D1`` to a fact of ``D2``
(Section 2 of the paper).  Finding one is an NP-complete constraint
satisfaction problem; the search itself lives in
:class:`repro.homomorphism.engine.HomEngine`, which combines

* per-fact generalized arc consistency over inverted target indexes,
* trailing (undo-based) propagation instead of per-branch domain copies,
* minimum-remaining-values variable ordering,
* signature fast paths that refute most non-homomorphisms without search,
* optional externally supplied candidate sets (used to inject the
  level-preservation filter of Lemma 4.5 for balanced digraphs), and
* optional pinning of elements (used for distinguished tuples of tableaux).

The functions here are thin wrappers over the shared
:data:`~repro.homomorphism.engine.DEFAULT_ENGINE`; all higher-level
operations of the library — CQ containment, cores, approximation orderings,
even query evaluation — reduce to them.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.cq.structure import Structure
from repro.homomorphism.engine import default_engine

Element = Hashable
Assignment = dict[Element, Element]


def iter_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``source`` to ``target``.

    ``pin`` forces specific images; ``candidates`` restricts the search to the
    given candidate sets (a sound filter supplied by the caller).
    """
    return default_engine().iter_homomorphisms(
        source, target, pin=pin, candidates=candidates
    )


def find_homomorphism(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> Assignment | None:
    """One homomorphism from ``source`` to ``target``, or ``None``."""
    return default_engine().find_homomorphism(
        source, target, pin=pin, candidates=candidates
    )


def homomorphism_exists(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> bool:
    """Whether ``source → target`` holds."""
    return default_engine().homomorphism_exists(
        source, target, pin=pin, candidates=candidates
    )


def count_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    candidates: Mapping[Element, Iterable[Element]] | None = None,
) -> int:
    """Number of homomorphisms from ``source`` to ``target``."""
    return default_engine().count_homomorphisms(
        source, target, pin=pin, candidates=candidates
    )


def image(source: Structure, hom: Mapping[Element, Element]) -> Structure:
    """The homomorphic image ``Im(h)`` of ``source`` under ``hom``."""
    return source.rename(dict(hom))


def is_homomorphism(
    source: Structure, target: Structure, mapping: Mapping[Element, Element]
) -> bool:
    """Verify that ``mapping`` is a homomorphism from ``source`` to ``target``."""
    if any(element not in mapping for element in source.domain):
        return False
    if any(mapping[element] not in target.domain for element in source.domain):
        return False
    for name, row in source.facts():
        mapped = tuple(mapping[value] for value in row)
        if mapped not in target.tuples(name):
            return False
    return True
