"""The indexed, memoizing homomorphism engine.

Every operation of the library — CQ containment, cores, the approximation
frontier of Theorem 4.1, query evaluation — reduces to homomorphism search,
and the exact algorithm of Corollary 4.3 issues Bell-many of those searches
per query.  :class:`HomEngine` centralizes the machinery that makes this
feasible:

* **Inverted target indexes.**  Each target structure is indexed once:
  tuples bucketed by ``(relation, position, value)``.  Support computation
  during propagation reads the bucket of the most constrained position
  instead of rescanning whole relations.  Indexes live in a bounded LRU
  cache (``index_cache_size``), so — unlike the unbounded ``lru_cache`` it
  replaces — the engine never keeps strong references to more than a fixed
  number of structures.

* **Trailing propagation.**  The backtracker shrinks candidate domains in
  place and records removed values on a trail, undoing them on backtrack,
  instead of deep-copying every domain dict at every branch.

* **Signature fast paths.**  Cheap necessary conditions (fact counts,
  equality patterns, slot profiles — see
  :mod:`repro.homomorphism.signatures`) refute most non-homomorphisms
  without any search.

* **Memoized ``hom_le``.**  Order queries between tableaux are cached under
  canonical (isomorphism-invariant) keys, so the frontier construction of
  ``approximation_frontier`` never re-decides an order between isomorphic
  candidates; equal canonical keys short-circuit to ``True`` outright.

The module-level functions in :mod:`repro.homomorphism.search`,
``.orders`` and ``.cores`` are thin wrappers over :data:`DEFAULT_ENGINE`,
so the public API is unchanged.  Construct a private ``HomEngine`` to
isolate cache behavior (e.g. in benchmarks).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Hashable, Iterable, Iterator, Mapping

from repro.cq.structure import Structure
from repro.cq.tableau import Tableau, pin_for
from repro.homomorphism.signatures import (
    StructureSignature,
    canonical_key,
    refutes_hom,
    structure_signature,
)

Element = Hashable
Assignment = dict[Element, Element]


class _BoundedCache(OrderedDict):
    """A tiny LRU: reads refresh recency, writes evict the oldest entry."""

    def __init__(self, maxsize: int) -> None:
        super().__init__()
        self.maxsize = maxsize

    def lookup(self, key, default=None):
        try:
            self.move_to_end(key)
        except KeyError:
            return default
        return self[key]

    def store(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


class _TargetIndex:
    """Per-target access structures, built once and cached."""

    __slots__ = ("rows", "buckets", "domain", "value_rank")

    def __init__(self, target: Structure) -> None:
        self.rows: dict[str, tuple[tuple, ...]] = {
            name: tuple(rows) for name, rows in target.relations.items()
        }
        buckets: dict[tuple[str, int, Element], list[tuple]] = {}
        for name, rows in self.rows.items():
            for row in rows:
                for position, value in enumerate(row):
                    buckets.setdefault((name, position, value), []).append(row)
        self.buckets: dict[tuple[str, int, Element], tuple[tuple, ...]] = {
            key: tuple(rows) for key, rows in buckets.items()
        }
        self.domain = target.domain
        # Deterministic branching order, precomputed so the backtracker sorts
        # candidate values by integer rank instead of calling repr per value.
        self.value_rank: dict[Element, int] = {
            value: rank
            for rank, value in enumerate(sorted(target.domain, key=repr))
        }


class _SourcePlan:
    """Per-source search plan (facts, incidence), built once and cached."""

    __slots__ = ("facts", "facts_of", "variable_order")

    def __init__(self, source: Structure) -> None:
        self.facts: list[tuple[str, tuple]] = list(source.facts())
        self.facts_of: dict[Element, list[int]] = {}
        for fact_index, (_, row) in enumerate(self.facts):
            for value in set(row):
                self.facts_of.setdefault(value, []).append(fact_index)
        self.variable_order: list[Element] = sorted(source.domain, key=repr)


class HomEngine:
    """Indexed, memoizing homomorphism search (see module docstring).

    Parameters
    ----------
    index_cache_size:
        Bound on cached target indexes (the fix for the unbounded
        ``_target_index`` cache: eviction is LRU, memory is O(bound)).
    signature_cache_size:
        Bound on cached refutation signatures.
    memo_size:
        Bound on memoized ``hom_le`` verdicts.
    canon_max_domain / canon_branch_budget:
        Size/effort caps of canonical-form computation; structures beyond
        them skip canonical memoization (still correct, just uncached
        across isomorphic — not identical — arguments).
    """

    def __init__(
        self,
        *,
        index_cache_size: int = 256,
        signature_cache_size: int = 1024,
        memo_size: int = 16384,
        canon_max_domain: int = 16,
        canon_branch_budget: int = 3000,
    ) -> None:
        self._indexes: _BoundedCache = _BoundedCache(index_cache_size)
        self._plans: _BoundedCache = _BoundedCache(index_cache_size)
        self._signatures: _BoundedCache = _BoundedCache(signature_cache_size)
        self._canon_keys: _BoundedCache = _BoundedCache(memo_size)
        self._hom_le_memo: _BoundedCache = _BoundedCache(memo_size)
        self.canon_max_domain = canon_max_domain
        self.canon_branch_budget = canon_branch_budget
        self.stats = {
            "searches": 0,
            "refuted": 0,
            "memo_hits": 0,
            "iso_fast_paths": 0,
        }

    # ------------------------------------------------------------- caches

    def clear_caches(self) -> None:
        for cache in (
            self._indexes,
            self._plans,
            self._signatures,
            self._canon_keys,
            self._hom_le_memo,
        ):
            cache.clear()

    def _index_for(self, target: Structure) -> _TargetIndex:
        index = self._indexes.lookup(target)
        if index is None:
            index = _TargetIndex(target)
            self._indexes.store(target, index)
        return index

    def _plan_for(self, source: Structure) -> _SourcePlan:
        plan = self._plans.lookup(source)
        if plan is None:
            plan = _SourcePlan(source)
            self._plans.store(source, plan)
        return plan

    def signature(self, structure: Structure) -> StructureSignature:
        sig = self._signatures.lookup(structure)
        if sig is None:
            sig = structure_signature(structure)
            self._signatures.store(structure, sig)
        return sig

    def canonical_key(self, tableau: Tableau) -> tuple | None:
        """The tableau's canonical form (``None`` beyond the effort caps)."""
        cache_key = (tableau.structure, tableau.distinguished)
        key = self._canon_keys.lookup(cache_key, default=False)
        if key is False:
            key = canonical_key(
                tableau.structure,
                tableau.distinguished,
                max_domain=self.canon_max_domain,
                branch_budget=self.canon_branch_budget,
            )
            self._canon_keys.store(cache_key, key)
        return key

    def canonical_key_many(
        self, tableaux: Iterable[Tableau]
    ) -> list[tuple | None]:
        """Batched :meth:`canonical_key`: one request for many tableaux.

        The cache probe is hoisted out of the per-tableau path (one local
        lookup pair instead of a method dispatch per key), and every
        computed key lands in the shared cache before the next request —
        so a batch with repeated or isomorphic-by-identity entries pays
        one canonization per distinct tableau.  The frontier's ``merge``
        uses this for shard results, where repeats across shards are the
        common case; raw-mode streams route their rare key requests (a
        collision needing an isomorphism-level verdict) through the same
        entry.
        """
        lookup = self._canon_keys.lookup
        store = self._canon_keys.store
        keys: list[tuple | None] = []
        for tableau in tableaux:
            cache_key = (tableau.structure, tableau.distinguished)
            key = lookup(cache_key, default=False)
            if key is False:
                key = canonical_key(
                    tableau.structure,
                    tableau.distinguished,
                    max_domain=self.canon_max_domain,
                    branch_budget=self.canon_branch_budget,
                )
                store(cache_key, key)
            keys.append(key)
        return keys

    # ------------------------------------------------------------- search

    def iter_homomorphisms(
        self,
        source: Structure,
        target: Structure,
        *,
        pin: Mapping[Element, Element] | None = None,
        candidates: Mapping[Element, Iterable[Element]] | None = None,
    ) -> Iterator[Assignment]:
        """Yield every homomorphism from ``source`` to ``target``.

        Semantics match the original ad-hoc search exactly: ``pin`` forces
        images (unknown pinned elements raise ``ValueError``), ``candidates``
        restricts candidate sets.
        """
        index = self._index_for(target)
        plan = self._plan_for(source)
        facts = plan.facts
        facts_of = plan.facts_of

        domains: dict[Element, set[Element]] = {}
        for element in source.domain:
            if candidates is not None and element in candidates:
                domains[element] = set(candidates[element]) & set(index.domain)
            else:
                domains[element] = set(index.domain)
        if pin:
            for element, image in pin.items():
                if element not in domains:
                    raise ValueError(
                        f"pinned element {element!r} not in source domain"
                    )
                domains[element] &= {image}
        if any(not values for values in domains.values()):
            return
        if refutes_hom(self.signature(source), self.signature(target), pin):
            self.stats["refuted"] += 1
            return
        self.stats["searches"] += 1
        if not self._propagate(
            facts, index, domains, set(range(len(facts))), facts_of, None
        ):
            return

        order_hint = plan.variable_order
        value_rank = index.value_rank

        def search() -> Iterator[Assignment]:
            unassigned = [v for v in order_hint if len(domains[v]) > 1]
            if not unassigned:
                yield {v: next(iter(values)) for v, values in domains.items()}
                return
            variable = min(unassigned, key=lambda v: len(domains[v]))
            for value in sorted(domains[variable], key=value_rank.__getitem__):
                trail: list[tuple[Element, Element]] = [
                    (variable, other)
                    for other in domains[variable]
                    if other != value
                ]
                domains[variable].intersection_update((value,))
                queue = set(facts_of.get(variable, ()))
                if self._propagate(facts, index, domains, queue, facts_of, trail):
                    yield from search()
                for trailed_variable, removed in trail:
                    domains[trailed_variable].add(removed)

        yield from search()

    def _candidate_rows(
        self,
        index: _TargetIndex,
        name: str,
        row: tuple,
        domains: Mapping[Element, set[Element]],
    ) -> Iterable[tuple]:
        """Rows worth checking as supports: read the tightest bucket."""
        rows = index.rows.get(name, ())
        if not rows:
            return ()
        position, variable = min(
            enumerate(row), key=lambda pv: len(domains[pv[1]])
        )
        domain = domains[variable]
        if len(domain) == 1:
            (value,) = domain
            return index.buckets.get((name, position, value), ())
        if len(domain) >= len(rows):
            return rows
        out: list[tuple] = []
        for value in domain:
            out.extend(index.buckets.get((name, position, value), ()))
        return out

    def _propagate(
        self,
        facts: list[tuple[str, tuple]],
        index: _TargetIndex,
        domains: dict[Element, set[Element]],
        queue: set[int],
        facts_of: Mapping[Element, list[int]],
        trail: list[tuple[Element, Element]] | None,
    ) -> bool:
        """Generalized arc consistency; trail-recorded, undoable shrinking."""
        while queue:
            fact_index = queue.pop()
            name, row = facts[fact_index]
            support = []
            for candidate in self._candidate_rows(index, name, row, domains):
                seen: dict[Element, Element] = {}
                for src, dst in zip(row, candidate):
                    if dst not in domains[src]:
                        break
                    if seen.setdefault(src, dst) != dst:
                        break
                else:
                    support.append(candidate)
            if not support:
                return False
            for position, variable in enumerate(row):
                domain = domains[variable]
                projected = {candidate[position] for candidate in support}
                if not domain <= projected:
                    removed = domain - projected
                    domain &= projected
                    if trail is not None:
                        trail.extend((variable, value) for value in removed)
                    if not domain:
                        return False
                    queue.update(facts_of.get(variable, ()))
        return True

    def find_homomorphism(
        self,
        source: Structure,
        target: Structure,
        *,
        pin: Mapping[Element, Element] | None = None,
        candidates: Mapping[Element, Iterable[Element]] | None = None,
    ) -> Assignment | None:
        for hom in self.iter_homomorphisms(
            source, target, pin=pin, candidates=candidates
        ):
            return hom
        return None

    def homomorphism_exists(
        self,
        source: Structure,
        target: Structure,
        *,
        pin: Mapping[Element, Element] | None = None,
        candidates: Mapping[Element, Iterable[Element]] | None = None,
    ) -> bool:
        return (
            self.find_homomorphism(source, target, pin=pin, candidates=candidates)
            is not None
        )

    def count_homomorphisms(
        self,
        source: Structure,
        target: Structure,
        *,
        pin: Mapping[Element, Element] | None = None,
        candidates: Mapping[Element, Iterable[Element]] | None = None,
    ) -> int:
        return sum(
            1
            for _ in self.iter_homomorphisms(
                source, target, pin=pin, candidates=candidates
            )
        )

    # ------------------------------------------------- the tableau preorder

    def _memo_key(self, source: Tableau, target: Tableau) -> tuple:
        source_key = self.canonical_key(source)
        target_key = self.canonical_key(target)
        if source_key is not None and target_key is not None:
            return ("canon", source_key, target_key)
        return ("exact", source, target)

    def hom_le(self, source: Tableau, target: Tableau, *, memo: bool = True) -> bool:
        """Memoized ``source → target`` with signature/isomorphism fast paths.

        ``memo=False`` skips the canonical-key memo entirely — no key
        computation, no lookup, no store.  The verdict is identical; the
        point is cost: building the memo key canonizes both tableaux, which
        outweighs the search itself when a pair is only ever compared once.
        The pipeline's frontier uses this for its candidate-stream dominance
        tests (each streamed candidate meets the frontier exactly once),
        while repeat-heavy callers (greedy descent, equivalence sweeps) keep
        the default.
        """
        pin = pin_for(source, target)
        if pin is None:
            return False
        if (
            source.structure == target.structure
            and source.distinguished == target.distinguished
        ):
            return True
        if refutes_hom(
            self.signature(source.structure), self.signature(target.structure), pin
        ):
            self.stats["refuted"] += 1
            return False
        if not memo:
            return (
                self.find_homomorphism(source.structure, target.structure, pin=pin)
                is not None
            )
        key = self._memo_key(source, target)
        cached = self._hom_le_memo.lookup(key)
        if cached is not None:
            self.stats["memo_hits"] += 1
            return cached
        if key[0] == "canon" and key[1] == key[2]:
            self.stats["iso_fast_paths"] += 1
            result = True  # isomorphic tableaux: the isomorphism is a hom
        else:
            result = (
                self.find_homomorphism(source.structure, target.structure, pin=pin)
                is not None
            )
        self._hom_le_memo.store(key, result)
        return result

    def hom_le_many(
        self,
        source: Tableau,
        targets: Iterable[Tableau],
        *,
        memo: bool = False,
    ) -> list[bool]:
        """Batched ``hom_le``: one source against many targets.

        Source-side work is shared across the batch — the refutation
        signature is computed once up front (instead of once per pair), and
        the search plan behind :meth:`find_homomorphism` is a single cache
        entry the whole batch reuses.  Verdicts match per-pair
        :meth:`hom_le` exactly.  The frontier's eviction scan and the
        representative-repair step of the approximation pipeline call this
        with ``memo=False`` (their pairs never repeat, matching the
        rationale documented on :meth:`hom_le`); repeat-heavy callers can
        opt back into the canonical-key memo with ``memo=True``.
        """
        source_signature = self.signature(source.structure)
        verdicts: list[bool] = []
        for target in targets:
            if memo:
                verdicts.append(self.hom_le(source, target))
                continue
            pin = pin_for(source, target)
            if pin is None:
                verdicts.append(False)
                continue
            if (
                source.structure == target.structure
                and source.distinguished == target.distinguished
            ):
                verdicts.append(True)
                continue
            if refutes_hom(
                source_signature, self.signature(target.structure), pin
            ):
                self.stats["refuted"] += 1
                verdicts.append(False)
                continue
            verdicts.append(
                self.find_homomorphism(
                    source.structure, target.structure, pin=pin
                )
                is not None
            )
        return verdicts

    def tableau_hom(self, source: Tableau, target: Tableau) -> Assignment | None:
        """An actual tableau homomorphism (not just the memoized verdict)."""
        pin = pin_for(source, target)
        if pin is None:
            return None
        if self._hom_le_memo.lookup(self._memo_key(source, target)) is False:
            self.stats["memo_hits"] += 1
            return None
        hom = self.find_homomorphism(source.structure, target.structure, pin=pin)
        self._hom_le_memo.store(self._memo_key(source, target), hom is not None)
        return hom

    def hom_equivalent(self, a: Tableau, b: Tableau) -> bool:
        return self.hom_le(a, b) and self.hom_le(b, a)

    def strictly_below(self, a: Tableau, b: Tableau) -> bool:
        """``a → b`` but not ``b → a`` (the paper's strict order ``⥮``)."""
        return self.hom_le(a, b) and not self.hom_le(b, a)

    # --------------------------------------------------------------- cores

    def core(
        self, structure: Structure, *, pinned: tuple[Element, ...] = ()
    ) -> tuple[Structure, dict[Element, Element]]:
        """The core of ``structure`` and a retraction onto it.

        Same contract as :func:`repro.homomorphism.cores.core`; every
        endomorphism search runs through the engine's indexed backtracker.
        """
        pin = {element: element for element in pinned}
        current = structure
        retraction: dict[Element, Element] = {
            value: value for value in structure.domain
        }
        shrunk = True
        while shrunk:
            shrunk = False
            removable = sorted(current.domain - set(pinned), key=repr)
            for element in removable:
                endo = self.find_homomorphism(
                    current, current.without(element), pin=pin
                )
                if endo is None:
                    continue
                current = current.rename(dict(endo))
                retraction = {
                    origin: endo[target] for origin, target in retraction.items()
                }
                shrunk = True
                break
        return current, retraction

    def is_core(
        self, structure: Structure, *, pinned: tuple[Element, ...] = ()
    ) -> bool:
        pin = {element: element for element in pinned}
        for element in sorted(structure.domain - set(pinned), key=repr):
            if self.find_homomorphism(structure, structure.without(element), pin=pin):
                return False
        return True

    def core_tableau(self, tableau: Tableau) -> Tableau:
        cored, retraction = self.core(
            tableau.structure, pinned=tuple(dict.fromkeys(tableau.distinguished))
        )
        return Tableau(cored, tuple(retraction[x] for x in tableau.distinguished))


#: The process-wide engine behind the module-level wrapper functions.
DEFAULT_ENGINE = HomEngine()

#: Owner of :data:`DEFAULT_ENGINE` — engines are per-process handles.
_ENGINE_PID = os.getpid()


def default_engine() -> HomEngine:
    """The shared engine instance used by the thin module-level wrappers.

    Engine handles are per-process: a forked pipeline worker that inherits
    the parent's engine would start from a snapshot of the parent's caches
    (stale recency order, memory already near the bounds) and the two copies
    would silently diverge.  The pid check rebuilds a fresh engine the first
    time a new process asks for one, which is also what keeps engines out of
    pickled task payloads — workers never receive an engine, they construct
    their own.
    """
    global DEFAULT_ENGINE, _ENGINE_PID
    pid = os.getpid()
    if pid != _ENGINE_PID:
        DEFAULT_ENGINE = HomEngine()
        _ENGINE_PID = pid
    return DEFAULT_ENGINE
