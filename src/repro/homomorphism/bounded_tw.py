"""Homomorphisms from bounded-treewidth sources in polynomial time.

When the source structure has treewidth ``k``, the homomorphism problem is
solvable in time ``O(#bags · |T|^{k+1})`` by dynamic programming over a tree
decomposition (Dechter/Freuder; Chekuri–Rajaraman).  The paper relies on
this inside its DP-membership argument for the identification problem:
"since both T_Q'' and T_Q' have treewidth at most k, checking
T_Q' → T_Q'' can be done in polynomial time."

This module implements that DP.  It agrees with the general backtracking
engine (property-tested) and is exposed both directly and as a fast path
for CQ containment when the *containing* side has small treewidth.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Mapping

import networkx as nx

from repro.cq.structure import Structure
from repro.hypergraphs.treedecomp import TreeDecomposition
from repro.hypergraphs.treewidth import tree_decomposition, treewidth_exact

Element = Hashable
Assignment = dict[Element, Element]


def _primal_graph(structure: Structure) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(structure.domain)
    for _, row in structure.facts():
        distinct = sorted(set(row), key=repr)
        for i, u in enumerate(distinct):
            for v in distinct[i + 1 :]:
                graph.add_edge(u, v)
    return graph


def _bag_assignments(
    bag: tuple[Element, ...],
    facts: list[tuple[str, tuple]],
    target: Structure,
    candidates: Mapping[Element, set[Element]],
):
    """All maps of one bag into the target satisfying the bag's facts."""
    target_rows = {name: target.tuples(name) for name, _ in facts}
    pools = [sorted(candidates[v], key=repr) for v in bag]
    for values in itertools.product(*pools):
        assignment = dict(zip(bag, values))
        ok = True
        for name, row in facts:
            mapped = tuple(assignment[v] for v in row)
            if mapped not in target_rows[name]:
                ok = False
                break
        if ok:
            yield tuple(values)


def bounded_treewidth_homomorphism(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    decomposition: TreeDecomposition | None = None,
    k: int | None = None,
) -> Assignment | None:
    """A homomorphism computed by DP over a source tree decomposition.

    ``decomposition`` may be supplied; otherwise one of width ``k`` (or of
    the exact treewidth when ``k`` is ``None``) is computed.  Polynomial in
    ``|target|`` for fixed width.
    """
    primal = _primal_graph(source)
    if decomposition is None:
        width = k if k is not None else max(treewidth_exact(primal), 0)
        decomposition = tree_decomposition(primal, width)
        if decomposition is None:
            raise ValueError(f"source treewidth exceeds {width}")
    if not source.domain:
        return {}

    # Unary candidate sets (pins plus a cheap per-fact projection filter).
    candidates: dict[Element, set[Element]] = {
        v: set(target.domain) for v in source.domain
    }
    if pin:
        for element, image in pin.items():
            if element not in candidates:
                raise ValueError(f"pinned element {element!r} not in source")
            candidates[element] &= {image}
    for name, row in source.facts():
        rows = target.tuples(name)
        for position, variable in enumerate(row):
            candidates[variable] &= {t[position] for t in rows}
    if any(not values for values in candidates.values()):
        return None

    # Assign each source fact to one bag containing its elements.
    tree = decomposition.tree
    nodes = list(tree.nodes)
    root = nodes[0]
    bag_of: dict = {node: tuple(sorted(decomposition.bags[node], key=repr)) for node in nodes}
    facts_of: dict = {node: [] for node in nodes}
    for name, row in source.facts():
        needed = set(row)
        holder = next(
            node for node in nodes if needed <= set(bag_of[node])
        )
        facts_of[holder].append((name, row))

    order = list(nx.dfs_postorder_nodes(tree, source=root))
    parent = {child: par for par, child in nx.bfs_edges(tree, source=root)}

    # Bottom-up DP: per node, the set of bag assignments extendible below.
    feasible: dict = {}
    child_choice: dict = {}
    for node in order:
        bag = bag_of[node]
        children = [c for c in tree.neighbors(node) if parent.get(c) == node]
        surviving: list[tuple] = []
        for values in _bag_assignments(bag, facts_of[node], target, candidates):
            assignment = dict(zip(bag, values))
            picks = []
            ok = True
            for child in children:
                shared = [v for v in bag_of[child] if v in assignment]
                match = None
                for child_values in feasible[child]:
                    child_assignment = dict(zip(bag_of[child], child_values))
                    if all(child_assignment[v] == assignment[v] for v in shared):
                        match = child_values
                        break
                if match is None:
                    ok = False
                    break
                picks.append((child, match))
            if ok:
                surviving.append(values)
                child_choice[(node, values)] = picks
        feasible[node] = surviving
        if not surviving:
            return None

    # Top-down reconstruction.
    result: Assignment = {}
    stack = [(root, feasible[root][0])]
    while stack:
        node, values = stack.pop()
        result.update(zip(bag_of[node], values))
        for child, child_values in child_choice[(node, values)]:
            stack.append((child, child_values))
    return result


def bounded_tw_hom_exists(
    source: Structure,
    target: Structure,
    *,
    pin: Mapping[Element, Element] | None = None,
    k: int | None = None,
) -> bool:
    return (
        bounded_treewidth_homomorphism(source, target, pin=pin, k=k) is not None
    )


def containment_via_treewidth(sub, sup) -> bool:
    """CQ containment with the polynomial fast path.

    ``sub ⊆ sup`` iff ``(T_sup, x̄') → (T_sub, x̄)``; when ``sup`` has small
    treewidth the homomorphism check is polynomial.  Falls back on the exact
    DP at whatever width ``sup`` has (still correct, possibly exponential).
    """
    from repro.cq.tableau import pin_for

    sup_tab, sub_tab = sup.tableau(), sub.tableau()
    pin = pin_for(sup_tab, sub_tab)
    if pin is None:
        return False
    return bounded_tw_hom_exists(sup_tab.structure, sub_tab.structure, pin=pin)
