"""Structural signatures and canonical forms for the homomorphism engine.

Two families of invariants make the engine fast:

* **Refutation signatures** (:func:`structure_signature`, :func:`refutes_hom`)
  are cheap *necessary* conditions for the existence of a homomorphism
  ``D1 → D2``.  If the signature check refutes, no homomorphism exists and the
  backtracking search is skipped entirely.  The conditions are

  - vocabulary fact counts: a relation with facts in the source must have
    facts in the target (every source fact needs an image);
  - equality patterns: the image of a fact equates at least the positions the
    fact equates, so every source equality pattern must be coarsened by some
    target tuple of the same relation;
  - slot profiles: ``h(x)`` must occur in every ``(relation, position)`` slot
    that ``x`` occurs in, so every source profile must be dominated by some
    target element's profile (and pinned pairs are checked point-wise).

  All three are sound under ``pin``/``candidates`` restrictions: they refute
  the existence of *any* homomorphism, a fortiori of a restricted one.

* **Canonical forms** (:func:`canonical_key`) are complete isomorphism
  invariants of tableaux, computed by color refinement with
  individualization (the classical canonical-labelling scheme, practical at
  tableau sizes).  Equal keys mean isomorphic tableaux; the engine uses them
  to memoize ``hom_le`` across isomorphic arguments, and the quotient
  enumerator uses them to emit each isomorphism class once (Theorem 4.1's
  witness space is closed under isomorphism, so deduplication is lossless up
  to equivalence).  Highly symmetric structures whose refinement tree exceeds
  ``branch_budget`` return ``None`` — the budget depends only on the
  isomorphism class, so isomorphic structures agree on whether they canonize,
  and a ``None`` simply disables the optimization for that structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.cq.structure import Structure

Element = Hashable
SlotProfile = frozenset[tuple[str, int]]


def equality_pattern(row: Sequence) -> tuple[int, ...]:
    """The equality type of a tuple: first-occurrence codes, ``(a,b,a) → (0,1,0)``."""
    codes: dict = {}
    return tuple(codes.setdefault(value, len(codes)) for value in row)


def pattern_coarsens(fine: Sequence[int], coarse: Sequence[int]) -> bool:
    """Whether every equality of ``fine`` also holds in ``coarse``.

    A homomorphism maps a fact with pattern ``fine`` onto a fact whose pattern
    must equate at least the positions ``fine`` equates (repeated variables
    have one image).
    """
    image: dict[int, int] = {}
    for f, c in zip(fine, coarse):
        if image.setdefault(f, c) != c:
            return False
    return True


@dataclass(frozen=True)
class StructureSignature:
    """The refutation invariants of one structure (see module docstring)."""

    fact_counts: Mapping[str, int]
    patterns: Mapping[str, frozenset[tuple[int, ...]]]
    profiles: Mapping[Element, SlotProfile]
    profile_set: frozenset[SlotProfile]


def structure_signature(structure: Structure) -> StructureSignature:
    """Compute the signature of ``structure`` in one pass over its facts."""
    counts: dict[str, int] = {}
    patterns: dict[str, frozenset[tuple[int, ...]]] = {}
    profiles: dict[Element, set[tuple[str, int]]] = {
        element: set() for element in structure.domain
    }
    for name, rows in structure.relations.items():
        if not rows:
            continue
        counts[name] = len(rows)
        pats = set()
        for row in rows:
            pats.add(equality_pattern(row))
            for position, value in enumerate(row):
                profiles[value].add((name, position))
        patterns[name] = frozenset(pats)
    frozen = {element: frozenset(slots) for element, slots in profiles.items()}
    return StructureSignature(counts, patterns, frozen, frozenset(frozen.values()))


def refutes_hom(
    source: StructureSignature,
    target: StructureSignature,
    pin: Mapping[Element, Element] | None = None,
) -> bool:
    """``True`` only if **no** homomorphism source → target can exist."""
    if source.profiles and not target.profiles:
        return True
    for name, source_patterns in source.patterns.items():
        target_patterns = target.patterns.get(name)
        if not target_patterns:
            return True
        for pattern in source_patterns:
            if not any(pattern_coarsens(pattern, t) for t in target_patterns):
                return True
    for profile in source.profile_set:
        if profile and not any(profile <= t for t in target.profile_set):
            return True
    if pin:
        for element, image in pin.items():
            source_profile = source.profiles.get(element)
            if source_profile is None:
                continue  # unknown pinned element; the search raises on it
            target_profile = target.profiles.get(image)
            if target_profile is None or not source_profile <= target_profile:
                return True
    return False


def canonical_key_indexed(
    n: int,
    facts: Sequence[tuple[int, tuple[int, ...]]],
    distinguished: tuple[int, ...],
    *,
    branch_budget: int = 3000,
) -> tuple | None:
    """Canonical form of an integer-labelled tableau (the hot inner core).

    ``n`` elements named ``0..n-1``; ``facts`` are ``(relation_id, row)``
    pairs (relation ids must be assigned consistently by the caller — e.g.
    by sorted relation name — for keys to be comparable across structures);
    ``distinguished`` is a tuple of element indices.  Color refinement with
    individualization: the encode step serializes the full structure under a
    discrete coloring, so equal keys imply isomorphic tableaux regardless of
    refinement strength.  Returns ``None`` if the individualization tree
    exceeds ``branch_budget`` refinement steps (an isomorphism-invariant
    condition, so isomorphic inputs agree on whether they canonize).
    """
    budget = branch_budget

    # Position-wise incidence, computed once: element -> [(fact_id, position)].
    incidence: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for fact_id, (_, row) in enumerate(facts):
        for position, element in enumerate(row):
            incidence[element].append((fact_id, position))

    rows_by_relation: dict[int, list[tuple[int, ...]]] = {}
    for relation, row in facts:
        rows_by_relation.setdefault(relation, []).append(row)
    relation_groups = sorted(rows_by_relation.items())

    def refine(colors: list[int], classes: int) -> tuple[list[int], int] | None:
        nonlocal budget
        while classes < n:
            if budget <= 0:
                return None
            budget -= 1
            fact_keys = [
                (relation, tuple(colors[v] for v in row)) for relation, row in facts
            ]
            # Interning fact keys as sorted ranks (an isomorphism-invariant
            # order, since the keys are built from canonical colors) keeps
            # the per-element sort below on small integer tuples.
            fact_ranks = {
                key: rank for rank, key in enumerate(sorted(set(fact_keys)))
            }
            keys = [
                (
                    colors[element],
                    tuple(
                        sorted(
                            (fact_ranks[fact_keys[fact_id]], position)
                            for fact_id, position in incidence[element]
                        )
                    ),
                )
                for element in range(n)
            ]
            ranks = {key: rank for rank, key in enumerate(sorted(set(keys)))}
            if len(ranks) == classes:
                break
            colors = [ranks[key] for key in keys]
            classes = len(ranks)
        return colors, classes

    def encode(colors: list[int]) -> tuple:
        return (
            n,
            tuple(
                (relation, tuple(sorted(tuple(colors[v] for v in row) for row in rows)))
                for relation, rows in relation_groups
            ),
            tuple(colors[d] for d in distinguished),
        )

    def search(colors: list[int], classes: int) -> tuple | None:
        refined = refine(colors, classes)
        if refined is None:
            return None
        colors, classes = refined
        if classes == n:
            return encode(colors)
        cells: dict[int, list[int]] = {}
        for element in range(n):
            cells.setdefault(colors[element], []).append(element)
        cell = cells[min(c for c, members in cells.items() if len(members) > 1)]
        best: tuple | None = None
        for element in cell:
            branched = list(colors)
            branched[element] = n  # a color no refined class uses
            candidate = search(branched, classes + 1)
            if candidate is None:
                return None
            if best is None or candidate < best:
                best = candidate
        return best

    if n == 0:
        return (0, (), ())
    dist_positions: list[tuple[int, ...]] = [() for _ in range(n)]
    for position, element in enumerate(distinguished):
        dist_positions[element] += (position,)
    # Initial colors: distinguished positions plus the slot profile (which
    # (relation, position) pairs the element occupies, with multiplicity) —
    # an isomorphism-invariant start that usually leaves refinement little
    # to do on asymmetric structures.
    initial_keys = [
        (
            dist_positions[element],
            tuple(
                sorted(
                    (facts[fact_id][0], position)
                    for fact_id, position in incidence[element]
                )
            ),
        )
        for element in range(n)
    ]
    initial_ranks = {key: rank for rank, key in enumerate(sorted(set(initial_keys)))}
    return search(
        [initial_ranks[key] for key in initial_keys], len(initial_ranks)
    )


def canonical_key(
    structure: Structure,
    distinguished: tuple[Element, ...] = (),
    *,
    max_domain: int = 16,
    branch_budget: int = 3000,
) -> tuple | None:
    """A canonical encoding of ``(structure, distinguished)`` up to isomorphism.

    Equal keys ⇔ isomorphic tableaux (an isomorphism must match distinguished
    tuples position-wise).  Returns ``None`` when the domain exceeds
    ``max_domain`` or the individualization tree exceeds ``branch_budget``
    refinement steps — both conditions are isomorphism-invariant, so ``None``
    is consistent across an isomorphism class and callers can safely treat it
    as "no key available".

    Elements with no incident fact and no distinguished position are
    interchangeable, so they are left out of the refinement (their count is
    part of the key); everything else is relabelled to integers and handed to
    :func:`canonical_key_indexed`.
    """
    if len(structure.domain) > max_domain:
        return None

    names = sorted(name for name, rows in structure.relations.items() if rows)
    relation_ids = {name: index for index, name in enumerate(names)}
    active: dict[Element, int] = {}
    for element in distinguished:
        active.setdefault(element, len(active))
    for name in names:
        for row in structure.relations[name]:
            for element in row:
                active.setdefault(element, len(active))
    free_count = len(structure.domain) - len(active)

    facts = [
        (relation_ids[name], tuple(active[element] for element in row))
        for name in names
        for row in structure.relations[name]
    ]
    key = canonical_key_indexed(
        len(active),
        facts,
        tuple(active[element] for element in distinguished),
        branch_budget=branch_budget,
    )
    if key is None:
        return None
    # Tie the integer relation ids back to names so keys are comparable
    # across structures with different vocabularies.
    n, relations, dist = key
    return (
        n,
        free_count,
        tuple((names[relation], rows) for relation, rows in relations),
        dist,
    )
