"""Homomorphisms, cores and the homomorphism preorder."""

from repro.homomorphism.engine import DEFAULT_ENGINE, HomEngine, default_engine
from repro.homomorphism.signatures import (
    canonical_key,
    refutes_hom,
    structure_signature,
)
from repro.homomorphism.search import (
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    image,
    is_homomorphism,
    iter_homomorphisms,
)
from repro.homomorphism.bounded_tw import (
    bounded_treewidth_homomorphism,
    bounded_tw_hom_exists,
    containment_via_treewidth,
)
from repro.homomorphism.cores import core, core_tableau, is_core, retract_exists
from repro.homomorphism.pebble import k_consistency, pebble_refutes
from repro.homomorphism.orders import (
    hom_equivalent,
    hom_le,
    strictly_below,
    tableau_hom,
)

__all__ = [
    "DEFAULT_ENGINE",
    "HomEngine",
    "bounded_treewidth_homomorphism",
    "bounded_tw_hom_exists",
    "canonical_key",
    "containment_via_treewidth",
    "core",
    "default_engine",
    "refutes_hom",
    "structure_signature",
    "core_tableau",
    "count_homomorphisms",
    "find_homomorphism",
    "hom_equivalent",
    "hom_le",
    "homomorphism_exists",
    "image",
    "is_core",
    "is_homomorphism",
    "iter_homomorphisms",
    "k_consistency",
    "pebble_refutes",
    "retract_exists",
    "strictly_below",
    "tableau_hom",
]
