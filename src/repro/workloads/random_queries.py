"""Random conjunctive-query generators.

Benchmarks and property-based tests use these: random Boolean graph queries
(tableaux are random digraphs), random higher-arity CQs, and structured
families (cycles with chords, grids) that land on interesting points of the
trichotomy of Theorem 5.1.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.vocabulary import Vocabulary


def random_graph_query(
    num_variables: int,
    num_atoms: int,
    *,
    seed: int | None = None,
    allow_loops: bool = False,
    head_size: int = 0,
) -> ConjunctiveQuery:
    """A random CQ over the graph vocabulary with a connected tableau.

    The first ``num_variables - 1`` atoms form a random spanning tree-ish
    skeleton (guaranteeing every variable occurs), the rest are random edges.
    """
    if num_variables < 2:
        raise ValueError("need at least two variables")
    if num_atoms < num_variables - 1:
        raise ValueError("need at least num_variables - 1 atoms for connectivity")
    rng = random.Random(seed)
    variables = [f"x{i}" for i in range(num_variables)]

    atoms: list[Atom] = []
    seen_pairs: set[tuple[str, str]] = set()
    for i in range(1, num_variables):
        other = variables[rng.randrange(i)]
        pair = (variables[i], other) if rng.random() < 0.5 else (other, variables[i])
        atoms.append(Atom("E", pair))
        seen_pairs.add(pair)
    while len(atoms) < num_atoms:
        u = rng.choice(variables)
        v = rng.choice(variables)
        if u == v and not allow_loops:
            continue
        if (u, v) in seen_pairs:
            continue
        seen_pairs.add((u, v))
        atoms.append(Atom("E", (u, v)))
    head = tuple(rng.sample(variables, head_size)) if head_size else ()
    return ConjunctiveQuery(head, atoms)


def random_cq(
    vocabulary: Vocabulary | dict[str, int],
    num_variables: int,
    num_atoms: int,
    *,
    seed: int | None = None,
    head_size: int = 0,
) -> ConjunctiveQuery:
    """A random CQ over an arbitrary vocabulary (every variable used)."""
    vocabulary = Vocabulary(vocabulary)
    if num_atoms < 1:
        raise ValueError("need at least one atom")
    rng = random.Random(seed)
    variables = [f"x{i}" for i in range(num_variables)]
    names = sorted(vocabulary)

    atoms: list[Atom] = []
    unused = list(variables)
    rng.shuffle(unused)
    widest = max(vocabulary.values())
    wide_names = [n for n in names if vocabulary[n] == widest]
    while len(atoms) < num_atoms:
        # While variables remain unused, prefer the widest relations so that
        # the atom budget always suffices to cover every variable.
        name = rng.choice(wide_names if unused else names)
        arity = vocabulary[name]
        args = []
        for _ in range(arity):
            if unused:
                args.append(unused.pop())
            else:
                args.append(rng.choice(variables))
        atoms.append(Atom(name, tuple(args)))
    if unused:
        raise ValueError(
            f"{num_atoms} atoms cannot use {num_variables} variables "
            f"(max arity {vocabulary.max_arity})"
        )
    head = tuple(rng.sample(variables, head_size)) if head_size else ()
    return ConjunctiveQuery(head, atoms)


def cycle_with_chords(
    length: int, chords: Sequence[tuple[int, int]] = (), *, head_size: int = 0
) -> ConjunctiveQuery:
    """A directed cycle of the given length plus chord edges ``(i, j)``."""
    if length < 3:
        raise ValueError("cycle length must be at least 3")
    atoms = [Atom("E", (f"x{i}", f"x{(i + 1) % length}")) for i in range(length)]
    for i, j in chords:
        atoms.append(Atom("E", (f"x{i % length}", f"x{j % length}")))
    head = tuple(f"x{i}" for i in range(head_size))
    return ConjunctiveQuery(head, atoms)


def grid_query(rows: int, cols: int) -> ConjunctiveQuery:
    """A Boolean query whose tableau is the directed grid (right/down edges).

    Grids are balanced and bipartite: by Theorem 5.1 they sit in the
    interesting region of the trichotomy.  Treewidth is ``min(rows, cols)``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be non-empty")
    if rows * cols < 2:
        raise ValueError("grid needs at least two variables")
    atoms = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                atoms.append(Atom("E", (f"g{r}_{c}", f"g{r}_{c + 1}")))
            if r + 1 < rows:
                atoms.append(Atom("E", (f"g{r}_{c}", f"g{r + 1}_{c}")))
    return ConjunctiveQuery((), atoms)
