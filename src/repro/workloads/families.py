"""The paper's query families, gathered under one roof.

Everything here re-exports or assembles constructions defined next to their
theory modules, so examples and benchmarks have a single import point.
"""

from __future__ import annotations

from repro.cq.query import ConjunctiveQuery
from repro.cq.parser import parse_query
from repro.graphs.gadgets import (
    gadget_d,
    gadget_d_ac,
    gadget_d_bd,
    gadget_g_n,
    gadget_g_n_s,
    intro_q1,
    intro_q2,
    intro_ternary_approx,
    intro_ternary_q,
    q_n,
    q_n_s,
    tight_g_k,
)
from repro.core.strong_tw import prop_513_query, prop_514_pair, prop_515_pair
from repro.core.tight import tight_pair


def example_66_query() -> ConjunctiveQuery:
    """Example 6.6's ternary query."""
    return parse_query("Q() :- R(x1, x2, x3), R(x3, x4, x5), R(x5, x6, x1)")


def example_66_approximations() -> list[ConjunctiveQuery]:
    """The three acyclic approximations listed in Example 6.6."""
    return [
        parse_query("Q() :- R(x, y, x)"),
        parse_query("Q() :- R(x1, x2, x3), R(x3, x4, x2), R(x2, x6, x1)"),
        parse_query(
            "Q() :- R(x1, x2, x3), R(x3, x4, x5), R(x5, x6, x1), R(x1, x3, x5)"
        ),
    ]


def proposition_59_query() -> ConjunctiveQuery:
    """The 4-cycle with three free variables of Proposition 5.9."""
    return parse_query(
        "Q(x1, x2, x3) :- E(x1, x2), E(x2, x3), E(x3, x4), E(x4, x1)"
    )


def theorem_51_examples() -> dict[str, ConjunctiveQuery]:
    """One Boolean graph query per trichotomy case of Theorem 5.1."""
    return {
        "not_bipartite": intro_q1(),
        "bipartite_unbalanced": parse_query(
            "Q() :- E(x, y), E(y, z), E(z, u), E(x, u)"
        ),
        "bipartite_balanced": intro_q2(),
    }


def prop_44_query(n: int) -> ConjunctiveQuery:
    """``Q_n`` of Proposition 4.4 (tableau ``G_n``)."""
    return q_n(n)


def prop_44_approximations(n: int) -> list[ConjunctiveQuery]:
    """The ``2^n`` approximations ``Q_n^s`` of Proposition 4.4."""
    queries = []
    for index in range(2 ** n):
        s = "".join("V" if (index >> bit) & 1 else "H" for bit in range(n))
        queries.append(q_n_s(s))
    return queries


__all__ = [
    "example_66_approximations",
    "example_66_query",
    "gadget_d",
    "gadget_d_ac",
    "gadget_d_bd",
    "gadget_g_n",
    "gadget_g_n_s",
    "intro_q1",
    "intro_q2",
    "intro_ternary_approx",
    "intro_ternary_q",
    "prop_44_approximations",
    "prop_44_query",
    "prop_513_query",
    "prop_514_pair",
    "prop_515_pair",
    "proposition_59_query",
    "q_n",
    "q_n_s",
    "theorem_51_examples",
    "tight_g_k",
    "tight_pair",
]
