"""Workload generators: random queries, random data, paper families."""

from repro.workloads.random_queries import (
    cycle_with_chords,
    grid_query,
    random_cq,
    random_graph_query,
)
from repro.workloads.random_data import (
    chain_join_db,
    chain_join_query,
    path_heavy_db,
    random_database,
    random_digraph_db,
    scaled_database,
    scaled_digraph_db,
    social_network_db,
    stream_tuples,
    union_with_pattern,
)

__all__ = [
    "chain_join_db",
    "chain_join_query",
    "cycle_with_chords",
    "grid_query",
    "path_heavy_db",
    "random_cq",
    "random_database",
    "random_digraph_db",
    "random_graph_query",
    "scaled_database",
    "scaled_digraph_db",
    "social_network_db",
    "stream_tuples",
    "union_with_pattern",
]
