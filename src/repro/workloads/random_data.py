"""Random database generators for the evaluation benchmarks.

The small generators (``random_digraph_db``, ``random_database``) build the
tuple sets eagerly — fine for unit-test sizes.  The ``scaled_*`` family
targets the multi-million-tuple instances of the columnar benchmarks: rows
are produced by *streaming* generators (``random.choices`` in batches) that
:class:`~repro.cq.structure.Structure` consumes one relation at a time, so
the database is never materialized as an intermediate list or JSON blob,
and a ``skew`` knob draws values Zipfian-distributed (rank ``r`` has weight
``1/r^skew``) to model the heavy-hitter joins where hash kernels matter.
"""

from __future__ import annotations

import random
from itertools import accumulate
from typing import Iterable, Iterator

from repro.cq.structure import Structure
from repro.cq.vocabulary import Vocabulary

#: Rows drawn per ``random.choices`` call in the streaming generators.
_STREAM_BATCH = 1 << 14


def _zipf_cum_weights(domain_size: int, skew: float) -> list[float] | None:
    """Cumulative Zipf(``skew``) weights over ``range(domain_size)``.

    ``skew <= 0`` means uniform — signalled as ``None`` so ``choices`` can
    take its faster uniform path.
    """
    if skew <= 0:
        return None
    weights = (1.0 / rank**skew for rank in range(1, domain_size + 1))
    return list(accumulate(weights))


def stream_tuples(
    arity: int,
    count: int,
    domain_size: int,
    *,
    skew: float = 0.0,
    rng: random.Random,
    batch: int = _STREAM_BATCH,
) -> Iterator[tuple]:
    """Yield up to ``count`` random tuples without materializing them.

    Duplicates may repeat in the stream (the consuming ``Structure``
    collapses them), so the resulting relation holds *up to* ``count``
    distinct rows — the right trade for benchmark-scale instances, where an
    exact count is irrelevant but a rejection loop is not affordable.
    """
    population = range(domain_size)
    cum_weights = _zipf_cum_weights(domain_size, skew)
    remaining = count
    while remaining > 0:
        take = min(batch, remaining)
        columns = [
            rng.choices(population, cum_weights=cum_weights, k=take)
            for _ in range(arity)
        ]
        yield from zip(*columns)
        remaining -= take


def chain_join_query(num_relations: int, *, head_size: int = 1):
    """The acyclic chain ``Q(x0) :- R0(x0,x1), ..., R{n-1}(x{n-1},x{n})``.

    ``head_size`` keeps the first ``head_size`` chain variables in the head
    (1 by default: answers stay linear in the data, the Yannakakis regime).
    """
    from repro.cq import parse_query

    head = ", ".join(f"x{i}" for i in range(head_size))
    body = ", ".join(
        f"R{i}(x{i}, x{i + 1})" for i in range(num_relations)
    )
    return parse_query(f"Q({head}) :- {body}")


def chain_join_db(
    num_relations: int,
    tuples_per_relation: int,
    domain_size: int,
    *,
    skew: float = 0.0,
    seed: int | None = None,
) -> Structure:
    """A streamed instance for :func:`chain_join_query` at benchmark scale."""
    rng = random.Random(seed)
    vocabulary = {f"R{i}": 2 for i in range(num_relations)}
    relations = {
        name: stream_tuples(
            2, tuples_per_relation, domain_size, skew=skew, rng=rng
        )
        for name in vocabulary
    }
    return Structure(relations, vocabulary=vocabulary, domain=range(domain_size))


def scaled_database(
    vocabulary: Vocabulary | dict[str, int],
    domain_size: int,
    tuples_per_relation: int,
    *,
    skew: float = 0.0,
    seed: int | None = None,
) -> Structure:
    """Streaming, skew-aware counterpart of :func:`random_database`."""
    vocabulary = Vocabulary(vocabulary)
    rng = random.Random(seed)
    relations = {
        name: stream_tuples(
            vocabulary[name],
            tuples_per_relation,
            domain_size,
            skew=skew,
            rng=rng,
        )
        for name in sorted(vocabulary)
    }
    return Structure(relations, vocabulary=vocabulary, domain=range(domain_size))


def scaled_digraph_db(
    num_nodes: int,
    num_edges: int,
    *,
    skew: float = 0.0,
    seed: int | None = None,
) -> Structure:
    """Streaming, skew-aware counterpart of :func:`random_digraph_db`."""
    rng = random.Random(seed)
    return Structure(
        {"E": stream_tuples(2, num_edges, num_nodes, skew=skew, rng=rng)},
        vocabulary={"E": 2},
        domain=range(num_nodes),
    )


def random_digraph_db(
    num_nodes: int, num_edges: int, *, seed: int | None = None, loops: bool = False
) -> Structure:
    """A random directed graph database over relation ``E``."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v and not loops:
            continue
        edges.add((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_nodes))


def random_database(
    vocabulary: Vocabulary | dict[str, int],
    domain_size: int,
    tuples_per_relation: int,
    *,
    seed: int | None = None,
) -> Structure:
    """A random database over an arbitrary vocabulary."""
    vocabulary = Vocabulary(vocabulary)
    rng = random.Random(seed)
    relations: dict[str, set[tuple]] = {}
    for name in sorted(vocabulary):
        arity = vocabulary[name]
        rows: set[tuple] = set()
        attempts = 0
        while len(rows) < tuples_per_relation and attempts < 50 * tuples_per_relation + 100:
            attempts += 1
            rows.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
        relations[name] = rows
    return Structure(relations, vocabulary=vocabulary, domain=range(domain_size))


def social_network_db(
    num_people: int,
    avg_degree: float = 4.0,
    *,
    seed: int | None = None,
    communities: int = 4,
) -> Structure:
    """A community-structured "follows" graph (the intro's motivating shape).

    People mostly follow within their community with a few cross links —
    producing the skewed, locally dense graphs on which cyclic pattern
    queries are expensive and acyclic approximations shine.
    """
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    target = int(num_people * avg_degree)
    membership = [rng.randrange(communities) for _ in range(num_people)]
    by_community: dict[int, list[int]] = {}
    for person, community in enumerate(membership):
        by_community.setdefault(community, []).append(person)
    attempts = 0
    while len(edges) < target and attempts < 50 * target + 100:
        attempts += 1
        u = rng.randrange(num_people)
        if rng.random() < 0.85:
            pool = by_community[membership[u]]
            v = rng.choice(pool)
        else:
            v = rng.randrange(num_people)
        if u != v:
            edges.add((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_people))


def path_heavy_db(
    num_nodes: int, *, branches: int = 3, seed: int | None = None
) -> Structure:
    """Long chains with light branching: many paths, few cycles."""
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(num_nodes - 1)]
    for _ in range(branches * max(num_nodes // 10, 1)):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            edges.append((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_nodes))


def union_with_pattern(db: Structure, pattern: Structure, *, tag: str = "w") -> Structure:
    """Plant a disjoint copy of ``pattern`` into ``db`` (a witness)."""
    renamed = pattern.rename({v: (tag, v) for v in pattern.domain})
    return db.union(renamed)


def domain_values(db: Structure) -> Iterable:
    return sorted(db.domain, key=repr)
