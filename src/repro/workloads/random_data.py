"""Random database generators for the evaluation benchmarks."""

from __future__ import annotations

import random
from typing import Iterable

from repro.cq.structure import Structure
from repro.cq.vocabulary import Vocabulary


def random_digraph_db(
    num_nodes: int, num_edges: int, *, seed: int | None = None, loops: bool = False
) -> Structure:
    """A random directed graph database over relation ``E``."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v and not loops:
            continue
        edges.add((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_nodes))


def random_database(
    vocabulary: Vocabulary | dict[str, int],
    domain_size: int,
    tuples_per_relation: int,
    *,
    seed: int | None = None,
) -> Structure:
    """A random database over an arbitrary vocabulary."""
    vocabulary = Vocabulary(vocabulary)
    rng = random.Random(seed)
    relations: dict[str, set[tuple]] = {}
    for name in sorted(vocabulary):
        arity = vocabulary[name]
        rows: set[tuple] = set()
        attempts = 0
        while len(rows) < tuples_per_relation and attempts < 50 * tuples_per_relation + 100:
            attempts += 1
            rows.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
        relations[name] = rows
    return Structure(relations, vocabulary=vocabulary, domain=range(domain_size))


def social_network_db(
    num_people: int,
    avg_degree: float = 4.0,
    *,
    seed: int | None = None,
    communities: int = 4,
) -> Structure:
    """A community-structured "follows" graph (the intro's motivating shape).

    People mostly follow within their community with a few cross links —
    producing the skewed, locally dense graphs on which cyclic pattern
    queries are expensive and acyclic approximations shine.
    """
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    target = int(num_people * avg_degree)
    membership = [rng.randrange(communities) for _ in range(num_people)]
    by_community: dict[int, list[int]] = {}
    for person, community in enumerate(membership):
        by_community.setdefault(community, []).append(person)
    attempts = 0
    while len(edges) < target and attempts < 50 * target + 100:
        attempts += 1
        u = rng.randrange(num_people)
        if rng.random() < 0.85:
            pool = by_community[membership[u]]
            v = rng.choice(pool)
        else:
            v = rng.randrange(num_people)
        if u != v:
            edges.add((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_people))


def path_heavy_db(
    num_nodes: int, *, branches: int = 3, seed: int | None = None
) -> Structure:
    """Long chains with light branching: many paths, few cycles."""
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(num_nodes - 1)]
    for _ in range(branches * max(num_nodes // 10, 1)):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            edges.append((u, v))
    return Structure({"E": edges}, vocabulary={"E": 2}, domain=range(num_nodes))


def union_with_pattern(db: Structure, pattern: Structure, *, tag: str = "w") -> Structure:
    """Plant a disjoint copy of ``pattern`` into ``db`` (a witness)."""
    renamed = pattern.rename({v: (tag, v) for v in pattern.domain})
    return db.union(renamed)


def domain_values(db: Structure) -> Iterable:
    return sorted(db.domain, key=repr)
