"""Run budgets: wall-clock deadlines, memory ceilings, and count caps.

A :class:`RunBudget` is consulted once per candidate on the pipeline's hot
loops, so the check has to be nearly free: one monotonic-clock read per
call, counter comparisons against the pipeline's own
:class:`~repro.core.pipeline.PipelineStats` counters (no duplicate
bookkeeping), and a memory probe only every
:data:`MEMORY_PROBE_INTERVAL` calls.  The verdict is *sticky*: once any
budget trips, :meth:`RunBudget.exceeded` keeps returning the same reason,
so callers at different pipeline seams (stage-1 generation, stage-3
admission, the pooled intake loop) all observe one consistent exhaustion
event.

The memory ceiling combines two signals:

* an ``rss`` probe — ``/proc/self/statm`` where available, falling back to
  ``resource.getrusage``'s high-water mark — which sees the process as the
  OS does, and
* registered *tracked-entry* probes (frontier members, memo entries,
  refinement-trie nodes) scaled by a conservative per-entry byte estimate,
  which see the pipeline's own growth even when the allocator has not yet
  returned pages or ``ru_maxrss`` has gone stale.

Both the clock and the rss probe are injectable, which is what makes
deadline and simulated-OOM behavior deterministically testable (see
:mod:`repro.testing.faults`).
"""

from __future__ import annotations

import os
import time
from typing import Callable

__all__ = ["RunBudget", "read_rss", "MEMORY_PROBE_INTERVAL"]

#: Consult the (comparatively expensive) memory probes once per this many
#: ``exceeded()`` calls.  At 256 the probe cost is amortized well below the
#: per-candidate work it guards.
MEMORY_PROBE_INTERVAL = 256

#: Conservative per-tracked-entry size estimate (bytes).  Frontier members,
#: memo entries, and trie nodes are small tuples/dicts of ints; 512 bytes
#: per entry overestimates all of them, which is the safe direction for a
#: ceiling.
TRACKED_ENTRY_BYTES = 512

_PAGE_SIZE = None


def read_rss() -> int:
    """Best-effort resident-set size of this process, in bytes.

    Prefers ``/proc/self/statm`` (current RSS, cheap, Linux); falls back to
    ``resource.getrusage`` (high-water mark, POSIX); returns 0 when neither
    is available so the tracked-entry probes carry the ceiling alone.
    """
    global _PAGE_SIZE
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        if _PAGE_SIZE is None:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


class RunBudget:
    """Budget monitor for one pipeline run.

    Parameters
    ----------
    deadline:
        Wall-clock allowance in seconds, measured from :meth:`start` (which
        :meth:`exceeded` calls implicitly on first use).  ``None`` disables.
    memory_limit:
        Ceiling in bytes on ``max(rss probe, tracked-entry estimate)``.
        ``None`` disables.
    max_candidates / max_checks:
        Caps on ``stats.generated`` / ``stats.checks_run``.  ``None``
        disables.
    clock / rss_probe:
        Injectable time and memory sources for deterministic tests; default
        to :func:`time.monotonic` and :func:`read_rss`.
    """

    __slots__ = (
        "deadline",
        "memory_limit",
        "max_candidates",
        "max_checks",
        "_clock",
        "_rss_probe",
        "_entry_probes",
        "_started_at",
        "_calls",
        "_reason",
    )

    def __init__(
        self,
        *,
        deadline: float | None = None,
        memory_limit: int | None = None,
        max_candidates: int | None = None,
        max_checks: int | None = None,
        clock: Callable[[], float] | None = None,
        rss_probe: Callable[[], int] | None = None,
    ) -> None:
        for name, value in (
            ("deadline", deadline),
            ("memory_limit", memory_limit),
            ("max_candidates", max_candidates),
            ("max_checks", max_checks),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        self.deadline = deadline
        self.memory_limit = memory_limit
        self.max_candidates = max_candidates
        self.max_checks = max_checks
        self._clock = clock if clock is not None else time.monotonic
        self._rss_probe = rss_probe if rss_probe is not None else read_rss
        self._entry_probes: list[Callable[[], int]] = []
        self._started_at: float | None = None
        self._calls = 0
        self._reason: str | None = None

    @property
    def active(self) -> bool:
        """Whether any budget dimension is actually set."""
        return (
            self.deadline is not None
            or self.memory_limit is not None
            or self.max_candidates is not None
            or self.max_checks is not None
        )

    @property
    def reason(self) -> str | None:
        """The sticky exhaustion reason, or ``None`` while within budget."""
        return self._reason

    def start(self) -> None:
        """Anchor the deadline clock (idempotent)."""
        if self._started_at is None:
            self._started_at = self._clock()

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_deadline(self) -> float | None:
        """Seconds left on the deadline, floored at 0 (``None`` if unset)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def register_probe(self, probe: Callable[[], int]) -> None:
        """Register a tracked-entry counter (e.g. frontier/memo sizes).

        The sum of all registered probes, times a conservative per-entry
        byte estimate, is compared against ``memory_limit`` alongside the
        rss probe.
        """
        self._entry_probes.append(probe)

    def tracked_bytes(self) -> int:
        """Estimated bytes held by registered tracked-entry structures."""
        if not self._entry_probes:
            return 0
        return sum(probe() for probe in self._entry_probes) * TRACKED_ENTRY_BYTES

    def exceeded(self, stats=None) -> str | None:
        """Return the exhaustion reason, or ``None`` while within budget.

        The verdict is sticky: the first tripped dimension is remembered
        and returned on every subsequent call.  ``stats`` supplies the
        candidate/check counters; passing ``None`` skips the count caps for
        call sites that have no stats handle.
        """
        if self._reason is not None:
            return self._reason
        self._calls += 1
        if self.deadline is not None:
            if self._started_at is None:
                self._started_at = self._clock()
            elif self._clock() - self._started_at >= self.deadline:
                self._reason = f"deadline ({self.deadline:g}s) exceeded"
                return self._reason
        if stats is not None:
            if (
                self.max_candidates is not None
                and stats.generated >= self.max_candidates
            ):
                self._reason = f"candidate budget ({self.max_candidates}) exhausted"
                return self._reason
            if self.max_checks is not None and stats.checks_run >= self.max_checks:
                self._reason = f"check budget ({self.max_checks}) exhausted"
                return self._reason
        if self.memory_limit is not None and (
            self._calls == 1 or self._calls % MEMORY_PROBE_INTERVAL == 0
        ):
            usage = max(self._rss_probe(), self.tracked_bytes())
            if usage >= self.memory_limit:
                self._reason = (
                    f"memory ceiling ({self.memory_limit} bytes) reached "
                    f"at {usage} bytes"
                )
                return self._reason
        return None
