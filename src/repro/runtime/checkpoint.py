"""Checkpoint/resume for long enumeration runs.

A :class:`CheckpointManager` periodically snapshots the pipeline's
resumable state — the partition-stream cursor, the frontier (members in
admission order with their refinement codes and generation stamps), and
the stats counters — to a single file, written atomically (temp file +
``os.replace``) so a crash mid-write can never corrupt an existing
snapshot.

Snapshots are pickled, not JSON: the frontier serialization reuses the
pipeline's ``encode_tableau`` integer form, whose nested tuples must
round-trip exactly (JSON would silently turn them into lists).

Every snapshot embeds a *run key* — the encoded base tableau, target
class, and the stream-shaping knobs (``max_extra_atoms``, ``allow_fresh``,
admission order, generation regime).  :meth:`CheckpointManager.load`
refuses a snapshot whose run key differs from the current run's
(:class:`CheckpointMismatch`), because resuming a cursor into a different
stream would silently skip or duplicate candidates.

Resume soundness rests on the generation regime being *stateless per
partition*: the ``"orbit"`` and ``"raw"`` regimes emit a candidate (or
not) based only on the partition itself, so "skip the first *k* emitted
candidates" reproduces the exact suffix of the original stream.  The
pipeline therefore forces the timing-dependent regimes (``"adaptive"``,
``"model"``) down to ``"orbit"`` whenever checkpointing is on, and
:func:`repro.core.quotients.iter_quotient_candidates` rejects a nonzero
cursor under the stateful ``"canonical"`` regime.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from repro.runtime.persist import PersistError, atomic_pickle, load_pickle

__all__ = ["CheckpointManager", "CheckpointMismatch", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1

#: Default snapshot cadence: at most once per this many admitted/seen
#: candidates, and at most once per this many seconds — whichever trips
#: first.  Both are coarse enough that snapshot cost disappears next to
#: the membership checks between snapshots.
DEFAULT_EVERY_CANDIDATES = 512
DEFAULT_EVERY_SECONDS = 5.0


class CheckpointMismatch(RuntimeError):
    """A snapshot on disk belongs to a different run configuration."""


class CheckpointManager:
    """Atomic periodic snapshots of resumable pipeline state.

    Parameters
    ----------
    path:
        Snapshot file location.  The manager owns this path: it overwrites
        it on :meth:`save` and deletes it on :meth:`finalize`.
    every_candidates / every_seconds:
        Snapshot cadence for :meth:`maybe_save`; either trips a save.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        every_candidates: int = DEFAULT_EVERY_CANDIDATES,
        every_seconds: float = DEFAULT_EVERY_SECONDS,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if every_candidates < 1:
            raise ValueError("every_candidates must be >= 1")
        if every_seconds <= 0:
            raise ValueError("every_seconds must be positive")
        self.path = os.fspath(path)
        self.every_candidates = every_candidates
        self.every_seconds = every_seconds
        self._clock = clock if clock is not None else time.monotonic
        self._since_save = 0
        self._last_save_at: float | None = None
        self.saves = 0

    # ------------------------------------------------------------------ load

    def load(self, run_key: tuple) -> dict[str, Any] | None:
        """Return the snapshot payload for ``run_key``, or ``None``.

        ``None`` means "no usable snapshot": the file is absent.  A present
        but unreadable/corrupt file raises ``CheckpointMismatch`` (the run
        should not silently restart from scratch while clobbering a file
        the operator pointed at), as does a snapshot from a different run
        configuration.
        """
        if not os.path.exists(self.path):
            return None
        try:
            payload = load_pickle(self.path)
        except PersistError as exc:
            raise CheckpointMismatch(
                f"checkpoint file {self.path!r} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatch(
                f"checkpoint file {self.path!r} has unsupported version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'!r}"
            )
        if payload.get("run_key") != run_key:
            raise CheckpointMismatch(
                f"checkpoint file {self.path!r} belongs to a different run "
                "configuration (base tableau, class, or stream knobs differ); "
                "delete it or point --checkpoint elsewhere"
            )
        return payload

    # ------------------------------------------------------------------ save

    def maybe_save(self, run_key: tuple, payload_fn: Callable[[], dict]) -> bool:
        """Save if the cadence says so; returns whether a save happened.

        ``payload_fn`` is only invoked when a save is due, so building the
        (comparatively expensive) frontier snapshot is skipped on the vast
        majority of calls.
        """
        self._since_save += 1
        now = self._clock()
        if self._last_save_at is None:
            self._last_save_at = now
        due = (
            self._since_save >= self.every_candidates
            or now - self._last_save_at >= self.every_seconds
        )
        if not due:
            return False
        self.save(run_key, payload_fn())
        return True

    def save(self, run_key: tuple, payload: dict[str, Any]) -> None:
        """Atomically write a snapshot (temp file + ``os.replace``)."""
        record = {"version": CHECKPOINT_VERSION, "run_key": run_key}
        record.update(payload)
        atomic_pickle(self.path, record)
        self._since_save = 0
        self._last_save_at = self._clock()
        self.saves += 1

    def finalize(self) -> None:
        """Remove the snapshot after a successful, complete run."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
